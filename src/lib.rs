//! # ConZone
//!
//! A zoned flash storage emulator for consumer devices — a from-scratch
//! Rust reproduction of *ConZone: A Zoned Flash Storage Emulator for
//! Consumer Devices* (DATE 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ConZone`] — the paper's device model: limited write buffers, SLC
//!   secondary buffering, hybrid page/chunk/zone mapping with a small L2P
//!   cache, and composite garbage collection;
//! * [`LegacyDevice`] — the traditional page-mapped consumer flash
//!   baseline with device-side GC and a prefetching L2P cache;
//! * [`FemuZns`] — the FEMU-like ZNS baseline reproducing the modelling
//!   gaps the paper identifies (VM jitter, no channel bandwidth, no FTL);
//! * [`host`] — fio-like workload generation, the multi-thread runner and
//!   the F2FS-like six-log allocator;
//! * [`flash`], [`ftl`], [`sim`], [`types`] — the substrates.
//!
//! ## Quickstart
//!
//! ```
//! use conzone::host::{run_job, AccessPattern, FioJob};
//! use conzone::types::{DeviceConfig, StorageDevice};
//! use conzone::ConZone;
//!
//! let mut device = ConZone::new(DeviceConfig::tiny_for_tests());
//! let job = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
//!     .zone_bytes(device.config().zone_size_bytes())
//!     .bytes_per_thread(2 * 1024 * 1024);
//! let report = run_job(&mut device, &job)?;
//! assert!(report.bandwidth_mibs() > 0.0);
//! # Ok::<(), conzone::host::HostError>(())
//! ```
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use conzone_core::{
    Arbiter, ArbiterKind, BlockHeat, ConZone, HeatmapSnapshot, QueueFrontEnd, RoundRobinArbiter,
    TimeBreakdown, WeightedArbiter, ZoneHeat,
};
pub use conzone_femu::FemuZns;
pub use conzone_legacy::LegacyDevice;

/// Shared vocabulary types: addresses, geometry, configuration, traits.
pub use conzone_types as types;

/// Discrete-event simulation kernel: clock, resources, RNG, histograms.
pub use conzone_sim as sim;

/// NAND flash media model.
pub use conzone_flash as flash;

/// FTL building blocks: mapping table, L2P cache, search strategies.
pub use conzone_ftl as ftl;

/// Host-side harness: fio-like jobs, runner, F2FS-lite.
pub use conzone_host as host;
