//! The `conzone` command-line tool: run workloads, replay traces and
//! inspect device configurations without writing Rust.
//!
//! ```text
//! conzone info  [--config paper|tiny]
//! conzone run   [--device conzone|legacy|femu] [--pattern seqwrite|seqread|randread|randwrite]
//!               [--bs 512k] [--threads 4] [--size 256m] [--region 1g]
//!               [--strategy bitmap|multiple|pinned] [--aggregation page|chunk|zone]
//!               [--cache 12k] [--buffers 2] [--seed N]
//!               [--qd 8] [--tenants 2] [--tenant-weights 3,1] [--arbiter rr|wrr]
//! conzone scenario <qd-sweep|interference|mixed|flash-cache>
//! conzone replay <trace-file> [--device ...] [--open-loop]
//! conzone gen-trace [--bursts 8] [--burst-bytes 8m] [--reads 5000] [--out trace.txt]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use conzone::host::{
    parse_fio_jobs, power_cycle_and_verify, replay_trace, run_job, run_job_sampled, run_job_until,
    run_tenants, AccessPattern, FioJob, JobReport, MobileTraceBuilder, MultiReport, QdOptions,
    TenantReport, TenantSpec, Trace, WorkloadPreset,
};
use conzone::sim::json::Json;
use conzone::sim::{
    attribute_spans, breakdown_from_spans, export, MetricsSample, RingBufferSink, SpanBuffer,
};
use conzone::types::{
    DeviceConfig, FaultConfig, Geometry, MapGranularity, Probe, SearchStrategy, SimDuration,
    SimTime, SpanRecord, SpanSink, StorageDevice, ZoneId, ZonedDevice,
};
use conzone::{ArbiterKind, ConZone, FemuZns, LegacyDevice};

/// Parses "4k", "512K", "16m", "1g" or plain bytes.
fn parse_size(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024u64),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024 * 1024),
        Some('g') | Some('G') => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|e| format!("bad size '{s}': {e}"))
}

/// Parses "100ms", "1s", "50us", "7500ns" or plain nanoseconds.
fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (digits, unit) = match s {
        _ if s.ends_with("ns") => (&s[..s.len() - 2], 1u64),
        _ if s.ends_with("us") => (&s[..s.len() - 2], 1_000),
        _ if s.ends_with("ms") => (&s[..s.len() - 2], 1_000_000),
        _ if s.ends_with('s') => (&s[..s.len() - 1], 1_000_000_000),
        _ => (s, 1),
    };
    let v: u64 = digits
        .trim()
        .parse()
        .map_err(|e| format!("bad duration '{s}': {e}"))?;
    if v == 0 {
        return Err(format!("bad duration '{s}': must be > 0"));
    }
    Ok(SimDuration::from_nanos(v * unit))
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default, Clone)]
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        args.flags
                            .push((key.to_string(), it.next().unwrap().clone()));
                    }
                    _ => args.switches.push(key.to_string()),
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn size(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            Some(v) => parse_size(v),
            None => Ok(default),
        }
    }

    fn num(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
            None => Ok(default),
        }
    }
}

fn build_config(args: &Args) -> Result<DeviceConfig, String> {
    let geometry = match args.get("config").unwrap_or("paper") {
        "paper" => Geometry::consumer_1p5gb(),
        "tiny" => Geometry::tiny(),
        other => return Err(format!("unknown --config '{other}' (paper|tiny)")),
    };
    let strategy = match args.get("strategy").unwrap_or("bitmap") {
        "bitmap" => SearchStrategy::Bitmap,
        "multiple" => SearchStrategy::Multiple,
        "pinned" => SearchStrategy::Pinned,
        other => return Err(format!("unknown --strategy '{other}'")),
    };
    let aggregation = match args.get("aggregation").unwrap_or("zone") {
        "page" => MapGranularity::Page,
        "chunk" => MapGranularity::Chunk,
        "zone" => MapGranularity::Zone,
        other => return Err(format!("unknown --aggregation '{other}'")),
    };
    let mut builder = DeviceConfig::builder(geometry)
        .search_strategy(strategy)
        .max_aggregation(aggregation)
        .l2p_cache_bytes(args.size("cache", 12 * 1024)?)
        .write_buffers(args.num("buffers", 2)? as usize)
        .seed(args.num("seed", 0x5eed_c0de)?);
    if args.get("config") == Some("tiny") {
        builder = builder.chunk_bytes(256 * 1024);
    }
    if let Some(v) = args.get("l2p-log") {
        builder = builder.l2p_log_entries(parse_size(v)?);
    }
    if let Some(v) = args.get("conventional") {
        builder =
            builder.conventional_zones(v.parse().map_err(|e| format!("bad --conventional: {e}"))?);
    }
    if let Some(fault) = parse_fault(args)? {
        builder = builder.fault(fault);
    }
    builder.build().map_err(|e| e.to_string())
}

/// Builds the fault-plane configuration from `--fault-rates P,E,R`
/// (program-fail, erase-fail, read-retry probabilities) and
/// `--fault-seed N`. Returns `None` when neither flag is present, so the
/// default zero-rate plane (bit-identical to a fault-free build) is kept.
fn parse_fault(args: &Args) -> Result<Option<FaultConfig>, String> {
    let rates = args.get("fault-rates");
    let seed = args.get("fault-seed");
    if rates.is_none() && seed.is_none() {
        return Ok(None);
    }
    let mut fault = match rates {
        Some(v) => {
            let parts: Vec<&str> = v.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(format!(
                    "bad --fault-rates '{v}': expected program,erase,read-retry"
                ));
            }
            let mut p = [0.0f64; 3];
            for (slot, part) in p.iter_mut().zip(&parts) {
                *slot = part
                    .parse()
                    .map_err(|e| format!("bad --fault-rates '{v}': {e}"))?;
            }
            FaultConfig::with_rates(p[0], p[1], p[2])
        }
        None => FaultConfig::default(),
    };
    if let Some(v) = seed {
        fault.seed = v.parse().map_err(|e| format!("bad --fault-seed: {e}"))?;
    }
    Ok(Some(fault))
}

/// Parses `--pattern` (shared by the synchronous and queue-pair run paths).
fn parse_pattern(args: &Args) -> Result<AccessPattern, String> {
    match args.get("pattern").unwrap_or("seqwrite") {
        "seqwrite" => Ok(AccessPattern::SeqWrite),
        "seqread" => Ok(AccessPattern::SeqRead),
        "randread" => Ok(AccessPattern::RandRead),
        "randwrite" => Ok(AccessPattern::RandWrite),
        other => match other.strip_prefix("mixed") {
            // e.g. --pattern mixed70 = 70 % reads (fio rwmixread=70).
            Some(pct) => Ok(AccessPattern::Mixed {
                read_percent: pct
                    .parse::<u8>()
                    .ok()
                    .filter(|p| *p <= 100)
                    .ok_or_else(|| format!("bad mixed percentage in '{other}'"))?,
            }),
            None => Err(format!("unknown --pattern '{other}'")),
        },
    }
}

/// Parses `--arbiter rr|wrr` into the queue front-end policy.
fn parse_arbiter(args: &Args) -> Result<ArbiterKind, String> {
    match args.get("arbiter").unwrap_or("rr") {
        "rr" | "round-robin" => Ok(ArbiterKind::RoundRobin),
        "wrr" | "weighted" => Ok(ArbiterKind::Weighted),
        other => Err(format!("unknown --arbiter '{other}' (rr|wrr)")),
    }
}

/// Parses `--tenant-weights 3,1` into exactly one weight per tenant;
/// every tenant weighs 1 when the flag is absent.
fn parse_tenant_weights(args: &Args, tenants: usize) -> Result<Vec<u32>, String> {
    let Some(v) = args.get("tenant-weights") else {
        return Ok(vec![1; tenants]);
    };
    let weights = v
        .split(',')
        .map(|p| p.trim().parse::<u32>())
        .collect::<Result<Vec<u32>, _>>()
        .map_err(|e| format!("bad --tenant-weights '{v}': {e}"))?;
    if weights.len() != tenants {
        return Err(format!(
            "--tenant-weights lists {} weights for {tenants} tenants",
            weights.len()
        ));
    }
    Ok(weights)
}

/// `--fetch-cost 25us`, defaulting to a transparent (zero-cost) fetch
/// stage when absent.
fn parse_fetch_cost(args: &Args) -> Result<SimDuration, String> {
    match args.get("fetch-cost") {
        Some(v) => parse_duration(v),
        None => Ok(SimDuration::ZERO),
    }
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let g = &cfg.geometry;
    println!(
        "geometry : {} ch x {} chips, {} blocks/chip ({} SLC), {} pages/block",
        g.channels,
        g.chips_per_channel,
        g.blocks_per_chip,
        g.slc_blocks_per_chip,
        g.pages_per_block
    );
    println!(
        "media    : {} normal region, {} mapping media, {} MiB/s per channel",
        cfg.normal_cell,
        cfg.mapping_media,
        cfg.channel_bytes_per_sec >> 20
    );
    println!(
        "zones    : {} x {} MiB (backing {} MiB, patch {} KiB)",
        cfg.zone_count(),
        cfg.zone_size_bytes() >> 20,
        cfg.zone_backing_bytes() >> 20,
        cfg.zone_patch_slices() * 4
    );
    println!(
        "buffers  : {} x {} KiB superpage write buffers",
        cfg.write_buffers,
        g.superpage_bytes() >> 10
    );
    println!(
        "l2p      : {} entry cache ({} KiB), {} strategy, {} max aggregation",
        cfg.l2p_cache_entries(),
        cfg.l2p_cache_bytes >> 10,
        cfg.search_strategy,
        cfg.max_aggregation
    );
    println!("capacity : {} MiB logical", cfg.capacity_bytes() >> 20);
    if cfg.conventional_zones > 0 {
        println!("conv     : {} conventional zones", cfg.conventional_zones);
    }
    if cfg.l2p_log_entries > 0 {
        println!("l2p log  : flush every {} updates", cfg.l2p_log_entries);
    }
    Ok(())
}

/// Observability options of the `run` command: where to put the event
/// trace, the interval metrics and whether to emit machine-readable stats.
struct ObsOpts {
    trace_out: Option<String>,
    span_out: Option<String>,
    metrics_out: Option<String>,
    metrics_interval: SimDuration,
    stats_json: bool,
    heatmap: bool,
}

impl ObsOpts {
    fn from_args(args: &Args) -> Result<ObsOpts, String> {
        Ok(ObsOpts {
            trace_out: args.get("trace-out").map(str::to_string),
            span_out: args.get("span-out").map(str::to_string),
            metrics_out: args.get("metrics-out").map(str::to_string),
            metrics_interval: match args.get("metrics-interval") {
                Some(v) => parse_duration(v)?,
                None => SimDuration::from_millis(100),
            },
            stats_json: args.has("stats-json"),
            heatmap: args.has("heatmap"),
        })
    }

    /// The event sink to attach to the device, when tracing was requested.
    fn make_sink(&self) -> Option<Arc<RingBufferSink>> {
        self.trace_out
            .as_ref()
            .map(|_| Arc::new(RingBufferSink::new()))
    }

    /// The span sink to attach to the device, when `--span-out` was given
    /// (1 Mi spans, ~60 MiB worst case — excess spans are counted, not
    /// kept).
    fn make_span_sink(&self) -> Option<Arc<SpanBuffer>> {
        self.span_out
            .as_ref()
            .map(|_| Arc::new(SpanBuffer::with_capacity(1 << 20)))
    }
}

/// Runs the measured job, collecting interval metrics when requested.
fn run_measured<D: StorageDevice + ?Sized>(
    dev: &mut D,
    job: &FioJob,
    obs: &ObsOpts,
) -> Result<JobReport, String> {
    if obs.metrics_out.is_some() {
        run_job_sampled(dev, job, obs.metrics_interval).map_err(|e| e.to_string())
    } else {
        run_job(dev, job).map_err(|e| e.to_string())
    }
}

/// Writes the Chrome trace-event file (loadable in Perfetto / about:tracing),
/// the span dump and the metrics JSONL, as requested. Span files ending in
/// `.jsonl` get one span per line; any other extension gets a nested Chrome
/// trace. Drops in either ring are surfaced loudly: a truncated dump that
/// looks complete is worse than no dump.
fn write_observability(
    obs: &ObsOpts,
    sink: Option<&RingBufferSink>,
    spans_dropped: Option<u64>,
    span_records: &[SpanRecord],
    samples: &[MetricsSample],
) -> Result<(), String> {
    if let (Some(path), Some(sink)) = (&obs.trace_out, sink) {
        let records = sink.drain();
        std::fs::write(path, export::chrome_trace(&records).to_string())
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "trace    : {} events to {path} ({} dropped)",
            records.len(),
            sink.dropped()
        );
        if sink.dropped() > 0 {
            eprintln!(
                "warning  : the event ring dropped {} records — the trace is \
                 truncated; trace a shorter phase",
                sink.dropped()
            );
        }
    }
    if let (Some(path), Some(dropped)) = (&obs.span_out, spans_dropped) {
        let text = if path.ends_with(".jsonl") {
            export::span_jsonl(span_records)
        } else {
            export::span_chrome_trace(span_records).to_string()
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "spans    : {} spans to {path} ({dropped} dropped)",
            span_records.len()
        );
        if dropped > 0 {
            eprintln!(
                "warning  : the span buffer dropped {dropped} spans — attribution \
                 and the dump are truncated; profile a shorter phase"
            );
        }
    }
    if let Some(path) = &obs.metrics_out {
        std::fs::write(path, export::metrics_jsonl(samples)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics  : {} intervals to {path}", samples.len());
    }
    Ok(())
}

/// The `trace` member of a stats object: how many events the ring sink
/// accepted and how many it had to drop.
fn trace_counts_json(sink: &RingBufferSink) -> Json {
    Json::obj([
        ("recorded", Json::U64(sink.recorded())),
        ("dropped", Json::U64(sink.dropped())),
    ])
}

/// The `spans` member of a stats object: per-kind counts and inclusive /
/// self sim-time, plus the self-time rollup per breakdown category (which
/// reconciles with `breakdown_ns` — see `tests/observability.rs`).
fn span_stats_json(recorded: u64, dropped: u64, records: &[SpanRecord]) -> Json {
    let per_kind = Json::Obj(
        attribute_spans(records)
            .iter()
            .filter(|a| a.count > 0)
            .map(|a| {
                (
                    a.kind.name().to_string(),
                    Json::obj([
                        ("count", Json::U64(a.count)),
                        ("total_ns", Json::U64(a.total.as_nanos())),
                        ("self_ns", Json::U64(a.self_time.as_nanos())),
                    ]),
                )
            })
            .collect(),
    );
    let breakdown = Json::Obj(
        breakdown_from_spans(records)
            .into_iter()
            .map(|(name, d)| (name.to_string(), Json::U64(d.as_nanos())))
            .collect(),
    );
    Json::obj([
        ("recorded", Json::U64(recorded)),
        ("dropped", Json::U64(dropped)),
        ("per_kind", per_kind),
        ("breakdown_ns", breakdown),
    ])
}

/// The `heatmap` member of a stats object: one row per zone and per
/// physical block, plus the SLC / cache pressure gauges.
fn heatmap_json(snap: &conzone::HeatmapSnapshot) -> Json {
    Json::obj([
        (
            "zones",
            Json::Arr(
                snap.zones
                    .iter()
                    .map(|z| {
                        Json::obj([
                            ("zone", Json::U64(z.zone)),
                            ("state", Json::from(z.state)),
                            ("conventional", Json::Bool(z.conventional)),
                            ("wp_slices", Json::U64(z.wp_slices)),
                            ("flushed_slices", Json::U64(z.flushed_slices)),
                            ("staged_slices", Json::U64(z.staged_slices)),
                            ("mapped_slices", Json::U64(z.mapped_slices)),
                            ("utilization", Json::F64(z.utilization)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "blocks",
            Json::Arr(
                snap.blocks
                    .iter()
                    .map(|b| {
                        Json::obj([
                            ("chip", Json::U64(b.chip)),
                            ("block", Json::U64(b.block)),
                            ("cell", Json::from(b.cell)),
                            ("cursor", Json::U64(b.cursor)),
                            ("valid_slices", Json::U64(b.valid_slices)),
                            ("slices", Json::U64(b.slices)),
                            ("wear", Json::U64(b.wear)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("l2p_occupancy", Json::F64(snap.l2p_occupancy)),
        ("slc_free_superblocks", Json::U64(snap.slc_free_superblocks)),
        ("slc_used_superblocks", Json::U64(snap.slc_used_superblocks)),
    ])
}

/// One machine-readable blob per job: throughput, counters, latency
/// summaries (whole-job, per-kind and per-thread) and, for ConZone, the
/// time breakdown with category names.
fn stats_json(report: &JobReport, breakdown: Option<&conzone::TimeBreakdown>) -> Json {
    let mut pairs = vec![
        ("model", Json::from(report.model)),
        ("started_ns", Json::U64(report.started.as_nanos())),
        ("finished_ns", Json::U64(report.finished.as_nanos())),
        ("bytes", Json::U64(report.bytes)),
        ("ops", Json::U64(report.ops)),
        ("bandwidth_mibs", Json::F64(report.bandwidth_mibs())),
        ("kiops", Json::F64(report.kiops())),
        ("counters", export::counters_json(&report.counters)),
        ("latency", export::latency_summary_json(&report.latency)),
        (
            "read_latency",
            export::latency_summary_json(&report.read_latency),
        ),
        (
            "write_latency",
            export::latency_summary_json(&report.write_latency),
        ),
        (
            "thread_latency",
            Json::Arr(
                report
                    .thread_latency
                    .iter()
                    .map(export::latency_summary_json)
                    .collect(),
            ),
        ),
    ];
    if let Some(b) = breakdown {
        pairs.push((
            "breakdown_ns",
            Json::obj(
                b.categories()
                    .into_iter()
                    .map(|(name, d)| (name, Json::U64(d.as_nanos()))),
            ),
        ));
    }
    Json::obj(pairs)
}

fn print_report(report: &conzone::host::JobReport) {
    println!(
        "{}: {:.0} MiB/s, {:.1} KIOPS over {}",
        report.model,
        report.bandwidth_mibs(),
        report.kiops(),
        report.duration()
    );
    println!(
        "latency  : mean {} p50 {} p99 {} p99.9 {}",
        report.latency.mean, report.latency.p50, report.latency.p99, report.latency.p999
    );
    let c = &report.counters;
    println!(
        "device   : waf {:.3}, l2p miss {:.1}%, {} conflicts, {} premature, {} gc runs",
        c.write_amplification(),
        c.l2p_miss_rate() * 100.0,
        c.buffer_conflicts,
        c.premature_flushes,
        c.gc_runs
    );
}

/// One tenant's slice of the machine-readable multi-tenant stats.
fn tenant_json(t: &TenantReport) -> Json {
    Json::obj([
        ("name", Json::from(t.name.as_str())),
        ("weight", Json::U64(u64::from(t.weight))),
        ("bytes", Json::U64(t.bytes)),
        ("ops", Json::U64(t.ops)),
        ("finished_ns", Json::U64(t.finished.as_nanos())),
        ("latency", export::latency_summary_json(&t.latency)),
        (
            "read_latency",
            export::latency_summary_json(&t.read_latency),
        ),
        (
            "write_latency",
            export::latency_summary_json(&t.write_latency),
        ),
        ("queue_wait", export::latency_summary_json(&t.queue_wait)),
        ("counters", export::counters_json(&t.counters)),
    ])
}

/// The machine-readable blob of a queue-pair run: aggregate throughput,
/// the conservation check (per-tenant counters must sum to the device
/// totals) and one entry per tenant.
fn multi_stats_json(m: &MultiReport, breakdown: Option<&conzone::TimeBreakdown>) -> Json {
    let mut pairs = vec![
        ("model", Json::from(m.model)),
        ("arbiter", Json::from(m.arbiter)),
        ("started_ns", Json::U64(m.started.as_nanos())),
        ("finished_ns", Json::U64(m.finished.as_nanos())),
        ("bytes", Json::U64(m.bytes)),
        ("ops", Json::U64(m.ops)),
        ("bandwidth_mibs", Json::F64(m.bandwidth_mibs())),
        ("kiops", Json::F64(m.kiops())),
        (
            "tenants_sum_consistent",
            Json::Bool(m.tenants_sum_consistent()),
        ),
        ("latency", export::latency_summary_json(&m.latency)),
        ("counters", export::counters_json(&m.counters)),
        (
            "tenants",
            Json::Arr(m.tenants.iter().map(tenant_json).collect()),
        ),
    ];
    if let Some(b) = breakdown {
        pairs.push((
            "breakdown_ns",
            Json::obj(
                b.categories()
                    .into_iter()
                    .map(|(name, d)| (name, Json::U64(d.as_nanos()))),
            ),
        ));
    }
    Json::obj(pairs)
}

fn print_multi_report(m: &MultiReport) {
    println!(
        "{}: {:.0} MiB/s, {:.1} KIOPS over {} ({} arbiter, {} tenants)",
        m.model,
        m.bandwidth_mibs(),
        m.kiops(),
        m.duration(),
        m.arbiter,
        m.tenants.len()
    );
    println!(
        "latency  : mean {} p50 {} p99 {} p99.9 {}",
        m.latency.mean, m.latency.p50, m.latency.p99, m.latency.p999
    );
    for t in &m.tenants {
        println!(
            "tenant   : {:<10} w{} {:>7} ops {:>8.1} KIOPS mean {} p99 {} wait-p99 {}",
            t.name,
            t.weight,
            t.ops,
            t.kiops_over(m.duration()),
            t.latency.mean,
            t.latency.p99,
            t.queue_wait.p99
        );
    }
    let c = &m.counters;
    println!(
        "device   : waf {:.3}, l2p miss {:.1}%, {} conflicts, {} premature, {} gc runs",
        c.write_amplification(),
        c.l2p_miss_rate() * 100.0,
        c.buffer_conflicts,
        c.premature_flushes,
        c.gc_runs
    );
    if !m.tenants_sum_consistent() {
        println!("warning  : per-tenant counters do not sum to the device totals");
    }
}

/// Builds one closed-loop job per tenant from the shared `run` flags.
/// Sequential-write tenants get disjoint (zone-aligned, on zoned devices)
/// slices of the region so their streams do not race each other's write
/// pointers; read and random-write tenants share the whole region.
fn build_tenant_specs(
    args: &Args,
    pattern: AccessPattern,
    zoned_zone_bytes: Option<u64>,
    qd: usize,
    tenants_n: usize,
) -> Result<Vec<TenantSpec>, String> {
    let bs = args.size("bs", 512 * 1024)?;
    let size = args.size("size", 256 << 20)?;
    let region = args.size("region", size)?;
    let threads = args.num("threads", 1)? as usize;
    let wl_seed = args.num("seed", 7)?;
    let weights = parse_tenant_weights(args, tenants_n)?;
    let per_tenant_bytes = size / tenants_n as u64 / threads.max(1) as u64;
    let mut specs = Vec::with_capacity(tenants_n);
    for (i, &w) in weights.iter().enumerate() {
        // Distinct streams per tenant, reproducible from the one --seed.
        let seed_i = wl_seed ^ ((i as u64 + 1).wrapping_mul(0x517c_c1b7_2722_0a95));
        let mut job = FioJob::new(pattern, bs)
            .threads(threads)
            .queue_depth(qd)
            .seed(seed_i)
            .bytes_per_thread(per_tenant_bytes);
        if pattern == AccessPattern::SeqWrite && tenants_n > 1 {
            let mut share = region / tenants_n as u64;
            if let Some(zb) = zoned_zone_bytes {
                share = (share / zb) * zb;
                if share == 0 {
                    return Err(format!(
                        "--region {region} too small to give {tenants_n} \
                         sequential writers a zone-aligned share"
                    ));
                }
            }
            job = job.region(i as u64 * share, share);
        } else {
            job = job.region(0, region);
        }
        if let Some(zb) = zoned_zone_bytes {
            job = job.zone_bytes(zb);
        }
        specs.push(TenantSpec::new(format!("t{i}"), job).weight(w));
    }
    Ok(specs)
}

/// The `run` path for queue depths above one or multiple tenants: the
/// NVMe-like queue-pair driver with per-queue arbitration at the device
/// boundary.
fn cmd_run_qd(args: &Args, obs: &ObsOpts, qd: usize, tenants_n: usize) -> Result<(), String> {
    if obs.metrics_out.is_some() {
        return Err(
            "--metrics-out is not supported with --qd/--tenants (no interval sampler on \
             the queue-pair path)"
                .to_string(),
        );
    }
    let cfg = build_config(args)?;
    let pattern = parse_pattern(args)?;
    let region = args.size("region", args.size("size", 256 << 20)?)?;
    let arbiter = parse_arbiter(args)?;
    let fetch_cost = parse_fetch_cost(args)?;
    let device = args.get("device").unwrap_or("conzone");
    if (obs.span_out.is_some() || obs.heatmap) && device != "conzone" {
        return Err("--span-out and --heatmap are only supported for --device conzone".to_string());
    }
    let needs_fill = pattern.is_read();
    let sink = obs.make_sink();
    // Host queue spans land in their own buffer; device spans (ConZone
    // only) keep their own. The dump merges both with disjoint ids.
    let host_spans = obs
        .span_out
        .as_ref()
        .map(|_| Arc::new(SpanBuffer::with_capacity(1 << 20)));
    let qd_opts = QdOptions {
        fetch_cost,
        arbiter,
        probe: match &sink {
            Some(s) => Probe::attached(s.clone()),
            None => Probe::disabled(),
        },
        spans: host_spans
            .clone()
            .map(|s| s as Arc<dyn SpanSink + Send + Sync>),
    };
    let mut span_records: Vec<SpanRecord> = Vec::new();
    let mut span_counts: Option<(u64, u64)> = None;
    let mut heatmap: Option<Json> = None;
    let mut breakdown: Option<conzone::TimeBreakdown> = None;
    let report = match device {
        "conzone" => {
            let zone_bytes = cfg.zone_size_bytes();
            let mut specs = build_tenant_specs(args, pattern, Some(zone_bytes), qd, tenants_n)?;
            let mut dev = ConZone::new(cfg);
            let mut start = SimTime::ZERO;
            if needs_fill {
                let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
                    .zone_bytes(zone_bytes)
                    .region(0, region)
                    .bytes_per_thread(region);
                start = run_job(&mut dev, &fill)
                    .map_err(|e| e.to_string())?
                    .finished;
            }
            for s in &mut specs {
                s.job = s.job.clone().start_at(start);
            }
            if let Some(s) = &sink {
                dev.set_probe(Probe::attached(s.clone()));
            }
            let dev_spans = obs.make_span_sink();
            if let Some(s) = &dev_spans {
                dev.set_span_sink(s.clone());
            }
            let m = run_tenants(&mut dev, &specs, &qd_opts).map_err(|e| e.to_string())?;
            breakdown = Some(dev.time_breakdown());
            if let (Some(db), Some(hb)) = (&dev_spans, &host_spans) {
                span_records = merge_span_dumps(db.drain(), hb.drain());
                span_counts = Some((db.recorded() + hb.recorded(), db.dropped() + hb.dropped()));
            }
            if obs.heatmap {
                heatmap = Some(heatmap_json(&dev.heatmap_snapshot()));
            }
            if !obs.stats_json {
                println!("time     : {}", dev.time_breakdown());
            }
            m
        }
        "legacy" => {
            let mut specs = build_tenant_specs(args, pattern, None, qd, tenants_n)?;
            let mut dev = LegacyDevice::new(cfg);
            let mut start = SimTime::ZERO;
            if needs_fill {
                let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
                    .region(0, region)
                    .bytes_per_thread(region);
                start = run_job(&mut dev, &fill)
                    .map_err(|e| e.to_string())?
                    .finished;
            }
            for s in &mut specs {
                s.job = s.job.clone().start_at(start);
            }
            if let Some(s) = &sink {
                dev.set_probe(Probe::attached(s.clone()));
            }
            run_tenants(&mut dev, &specs, &qd_opts).map_err(|e| e.to_string())?
        }
        other => {
            return Err(format!(
                "--qd/--tenants support --device conzone|legacy, not '{other}'"
            ))
        }
    };
    if obs.stats_json {
        let mut j = multi_stats_json(&report, breakdown.as_ref());
        if let Json::Obj(pairs) = &mut j {
            if let Some(s) = &sink {
                pairs.push(("trace".to_string(), trace_counts_json(s)));
            }
            if let Some((recorded, dropped)) = span_counts {
                pairs.push((
                    "spans".to_string(),
                    span_stats_json(recorded, dropped, &span_records),
                ));
            }
            if let Some(h) = heatmap.take() {
                pairs.push(("heatmap".to_string(), h));
            }
        }
        println!("{j}");
    } else {
        print_multi_report(&report);
    }
    write_observability(
        obs,
        sink.as_deref(),
        span_counts.map(|(_, dropped)| dropped),
        &span_records,
        &[],
    )?;
    Ok(())
}

/// Concatenates the device and host span dumps into one id space.
/// Span ids are 1-based and dense per recorder, and a parent id is always
/// smaller than its children's, so offsetting the host records by the
/// device maxima preserves both invariants.
fn merge_span_dumps(mut dev: Vec<SpanRecord>, host: Vec<SpanRecord>) -> Vec<SpanRecord> {
    let id_base = dev.iter().map(|r| r.id).max().unwrap_or(0);
    let io_base = dev.iter().map(|r| r.io).max().unwrap_or(0);
    dev.extend(host.into_iter().map(|mut r| {
        r.id += id_base;
        if r.parent != 0 {
            r.parent += id_base;
        }
        r.io += io_base;
        r
    }));
    dev
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let obs = ObsOpts::from_args(args)?;
    let power_cut = match args.get("power-cut-at") {
        Some(v) => Some(parse_duration(v)?),
        None => None,
    };
    // Any queue-pair flag routes to the NVMe-like asynchronous driver.
    let qd = args.num("qd", 1)? as usize;
    let tenants_n = args.num("tenants", 1)? as usize;
    let qd_path = qd > 1
        || tenants_n > 1
        || args.get("arbiter").is_some()
        || args.get("fetch-cost").is_some()
        || args.get("tenant-weights").is_some();
    if qd_path {
        if args.get("job").is_some() {
            return Err("--qd/--tenants are not supported with --job".to_string());
        }
        if power_cut.is_some() {
            return Err("--power-cut-at is not supported with --qd/--tenants".to_string());
        }
        if qd == 0 || tenants_n == 0 {
            return Err("--qd and --tenants must be at least 1".to_string());
        }
        return cmd_run_qd(args, &obs, qd, tenants_n);
    }
    // A fio-style INI job file runs every section in order on one device.
    if let Some(path) = args.get("job") {
        if power_cut.is_some() {
            return Err("--power-cut-at is not supported with --job".to_string());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let jobs = parse_fio_jobs(&text).map_err(|e| e.to_string())?;
        let cfg = build_config(args)?;
        let zone_bytes = cfg.zone_size_bytes();
        let mut dev = ConZone::new(cfg);
        let sink = obs.make_sink();
        if let Some(s) = &sink {
            dev.set_probe(Probe::attached(s.clone()));
        }
        let span_buf = obs.make_span_sink();
        if let Some(s) = &span_buf {
            dev.set_span_sink(s.clone());
        }
        let mut t = SimTime::ZERO;
        let mut all_samples: Vec<MetricsSample> = Vec::new();
        let njobs = jobs.len();
        for (i, named) in jobs.into_iter().enumerate() {
            let mut job = named.job.start_at(t);
            if job.pattern == AccessPattern::SeqWrite {
                job = job.zone_bytes(zone_bytes);
            }
            let report = run_measured(&mut dev, &job, &obs)?;
            t = report.finished;
            all_samples.extend_from_slice(&report.metrics);
            if obs.stats_json {
                let mut j = stats_json(&report, Some(&dev.time_breakdown()));
                if let Json::Obj(pairs) = &mut j {
                    pairs.insert(0, ("job".to_string(), Json::from(named.name.as_str())));
                    // Ring-sink health is cumulative over the job file.
                    if let Some(s) = &sink {
                        pairs.push(("trace".to_string(), trace_counts_json(s)));
                    }
                    if obs.heatmap && i + 1 == njobs {
                        pairs.push(("heatmap".to_string(), heatmap_json(&dev.heatmap_snapshot())));
                    }
                }
                println!("{j}");
            } else {
                println!("[{}]", named.name);
                print_report(&report);
            }
        }
        if !obs.stats_json {
            println!("time     : {}", dev.time_breakdown());
        }
        let span_records: Vec<SpanRecord> =
            span_buf.as_ref().map(|b| b.drain()).unwrap_or_default();
        write_observability(
            &obs,
            sink.as_deref(),
            span_buf.as_ref().map(|b| b.dropped()),
            &span_records,
            &all_samples,
        )?;
        return Ok(());
    }
    let mut cfg = build_config(args)?;
    if power_cut.is_some() {
        // The crash verifier byte-compares recovered data, which needs the
        // device to actually store payloads.
        cfg.data_backing = true;
    }
    let pattern = parse_pattern(args)?;
    let bs = args.size("bs", 512 * 1024)?;
    let size = args.size("size", 256 << 20)?;
    let region = args.size("region", size)?;
    let threads = args.num("threads", 1)? as usize;
    let zone_bytes = cfg.zone_size_bytes();

    let wl_seed = args.num("seed", 7)?;
    let mut job = FioJob::new(pattern, bs)
        .threads(threads)
        .region(0, region)
        .bytes_per_thread(size / threads as u64)
        .seed(wl_seed);
    if power_cut.is_some() {
        job = job.verify(true);
    }

    let device = args.get("device").unwrap_or("conzone");
    if power_cut.is_some() && device != "conzone" {
        return Err("--power-cut-at is only supported for --device conzone".to_string());
    }
    if (obs.span_out.is_some() || obs.heatmap) && device != "conzone" {
        return Err("--span-out and --heatmap are only supported for --device conzone".to_string());
    }
    // Reads need data on the device first. The probe and span recorder
    // attach after the fill so trace, spans and metrics cover only the
    // measured job.
    let needs_fill = pattern.is_read();
    let sink = obs.make_sink();
    let span_buf = obs.make_span_sink();
    let mut span_records: Vec<SpanRecord> = Vec::new();
    let mut heatmap: Option<Json> = None;
    let mut breakdown: Option<conzone::TimeBreakdown> = None;
    let report = match device {
        "conzone" => {
            let mut dev = ConZone::new(cfg);
            job = job.zone_bytes(zone_bytes);
            let mut start = SimTime::ZERO;
            if needs_fill {
                let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
                    .zone_bytes(zone_bytes)
                    .region(0, region)
                    .bytes_per_thread(region);
                let f = run_job(&mut dev, &fill).map_err(|e| e.to_string())?;
                start = f.finished;
                job = job.start_at(start);
            }
            if let Some(s) = &sink {
                dev.set_probe(Probe::attached(s.clone()));
            }
            if let Some(s) = &span_buf {
                dev.set_span_sink(s.clone());
            }
            let report = match power_cut {
                Some(after) => {
                    // Cut power mid-workload, remount and audit the
                    // device's recovery claims against regenerated payloads.
                    let cut_at = start + after;
                    let report =
                        run_job_until(&mut dev, &job, cut_at).map_err(|e| e.to_string())?;
                    let verdict = power_cycle_and_verify(&mut dev, wl_seed, cut_at)
                        .map_err(|e| e.to_string())?;
                    eprintln!("recovery : {verdict}");
                    report
                }
                None => run_measured(&mut dev, &job, &obs)?,
            };
            breakdown = Some(dev.time_breakdown());
            if let Some(s) = &span_buf {
                span_records = s.drain();
            }
            if obs.heatmap {
                heatmap = Some(heatmap_json(&dev.heatmap_snapshot()));
            }
            if !obs.stats_json {
                println!("time     : {}", dev.time_breakdown());
            }
            report
        }
        "legacy" => {
            let mut dev = LegacyDevice::new(cfg);
            if needs_fill {
                let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
                    .region(0, region)
                    .bytes_per_thread(region);
                let f = run_job(&mut dev, &fill).map_err(|e| e.to_string())?;
                job = job.start_at(f.finished);
            }
            if let Some(s) = &sink {
                dev.set_probe(Probe::attached(s.clone()));
            }
            run_measured(&mut dev, &job, &obs)?
        }
        "femu" => {
            let mut dev = FemuZns::new(cfg);
            let femu_zone = dev.config().geometry.superblock_bytes();
            job = job.zone_bytes(femu_zone);
            if needs_fill {
                let stride = femu_zone;
                let fill_region = (region / stride) * stride;
                let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
                    .zone_bytes(femu_zone)
                    .region(0, fill_region)
                    .bytes_per_thread(fill_region);
                let f = run_job(&mut dev, &fill).map_err(|e| e.to_string())?;
                job = job.region(0, fill_region).start_at(f.finished);
            }
            if let Some(s) = &sink {
                dev.set_probe(Probe::attached(s.clone()));
            }
            run_measured(&mut dev, &job, &obs)?
        }
        other => return Err(format!("unknown --device '{other}'")),
    };
    if obs.stats_json {
        let mut j = stats_json(&report, breakdown.as_ref());
        if let Json::Obj(pairs) = &mut j {
            if let Some(s) = &sink {
                pairs.push(("trace".to_string(), trace_counts_json(s)));
            }
            if let Some(b) = &span_buf {
                pairs.push((
                    "spans".to_string(),
                    span_stats_json(b.recorded(), b.dropped(), &span_records),
                ));
            }
            if let Some(h) = heatmap.take() {
                pairs.push(("heatmap".to_string(), h));
            }
        }
        println!("{j}");
    } else {
        print_report(&report);
    }
    write_observability(
        &obs,
        sink.as_deref(),
        span_buf.as_ref().map(|b| b.dropped()),
        &span_records,
        &report.metrics,
    )?;
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .ok_or("usage: conzone replay <trace-file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::parse(&text).map_err(|e| e.to_string())?;
    println!(
        "replaying {} ops ({:.1} MiB) from {path}",
        trace.len(),
        trace.total_bytes() as f64 / (1 << 20) as f64
    );
    let cfg = build_config(args)?;
    let open_loop = args.has("open-loop");
    let report = match args.get("device").unwrap_or("conzone") {
        "conzone" => {
            let mut dev = ConZone::new(cfg);
            replay_trace(&mut dev, &trace, SimTime::ZERO, open_loop).map_err(|e| e.to_string())?
        }
        "femu" => {
            let mut dev = FemuZns::new(cfg);
            replay_trace(&mut dev, &trace, SimTime::ZERO, open_loop).map_err(|e| e.to_string())?
        }
        other => return Err(format!("replay supports zoned devices only, not '{other}'")),
    };
    print_report(&report);
    Ok(())
}

/// Writes a little data into a fresh device and prints the zone map —
/// a demonstration of zone states more than a tool, but handy for
/// sanity-checking a configuration.
fn cmd_zones(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let conventional = cfg.conventional_zones;
    let mut dev = ConZone::new(cfg);
    // Touch a few zones so the map shows something.
    let zs = dev.zone_size();
    let first_seq = conventional as u64;
    let mut t = SimTime::ZERO;
    for (i, len) in [(first_seq, zs), (first_seq + 1, 64 * 1024)] {
        let mut off = i * zs;
        let mut left = len;
        while left > 0 {
            let chunk = left.min(512 * 1024);
            t = dev
                .submit(t, &conzone::types::IoRequest::write(off, chunk))
                .map_err(|e| e.to_string())?
                .finished;
            off += chunk;
            left -= chunk;
        }
    }
    t = dev
        .finish_zone(t, ZoneId(first_seq + 2))
        .map_err(|e| e.to_string())?
        .finished;
    let _ = t;
    println!("zone  type          state   wp (KiB)  size (MiB)");
    for z in 0..dev.zone_count() as u64 {
        let info = dev.zone_info(ZoneId(z)).map_err(|e| e.to_string())?;
        let kind = if (z as usize) < conventional {
            "conventional"
        } else {
            "sequential"
        };
        println!(
            "{z:>4}  {kind:<12}  {:<6}  {:>8}  {:>10}",
            format!("{:?}", info.state),
            info.write_pointer >> 10,
            info.size >> 20
        );
        if z >= first_seq + 3 && z + 2 < dev.zone_count() as u64 {
            println!(
                "  ...  ({} more empty zones)",
                dev.zone_count() as u64 - z - 1
            );
            break;
        }
    }
    Ok(())
}

fn cmd_gen_trace(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let trace = match args.get("preset") {
        Some(name) => {
            let preset = WorkloadPreset::from_name(name).ok_or_else(|| {
                format!(
                    "unknown --preset '{name}' (expected one of: {})",
                    WorkloadPreset::ALL
                        .iter()
                        .map(|p| p.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            preset.build(
                cfg.zone_size_bytes(),
                cfg.zone_count() as u64,
                args.num("seed", 7)?,
            )
        }
        None => MobileTraceBuilder::new(cfg.zone_size_bytes(), cfg.zone_count() as u64)
            .bursts(args.num("bursts", 8)?)
            .burst_bytes(args.size("burst-bytes", 8 << 20)?)
            .reads(args.num("reads", 5000)?)
            .seed(args.num("seed", 7)?)
            .build(),
    };
    let text = trace.to_text();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {} ops to {path}", trace.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// A copy of `args` with `--config` defaulted to `cfg` — scenarios run on
/// the tiny geometry unless the user asks otherwise, so sweeps stay fast.
fn with_default_config(args: &Args, cfg: &str) -> Args {
    let mut out = args.clone();
    if out.get("config").is_none() {
        out.flags.push(("config".to_string(), cfg.to_string()));
    }
    out
}

/// Builds a fresh ConZone from the CLI flags, fills `fill_region` bytes
/// sequentially when asked (reads need data), then drives the tenant set
/// through the queue-pair front end. Sequential-write tenants must already
/// carry their own regions; the helper only stamps zone size and start
/// time onto every job.
fn run_scenario_tenants(
    args: &Args,
    specs: &mut [TenantSpec],
    opts: &QdOptions,
    fill_region: Option<u64>,
) -> Result<MultiReport, String> {
    let cfg = build_config(args)?;
    let zone_bytes = cfg.zone_size_bytes();
    let mut dev = ConZone::new(cfg);
    let mut start = SimTime::ZERO;
    if let Some(region) = fill_region {
        let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
            .zone_bytes(zone_bytes)
            .region(0, region)
            .bytes_per_thread(region);
        start = run_job(&mut dev, &fill)
            .map_err(|e| e.to_string())?
            .finished;
    }
    for s in specs.iter_mut() {
        s.job = s.job.clone().zone_bytes(zone_bytes).start_at(start);
    }
    run_tenants(&mut dev, specs, opts).map_err(|e| e.to_string())
}

/// Prints a finished scenario either as the human table or, under
/// `--stats-json`, as the machine-readable multi-tenant blob.
fn emit_scenario_report(args: &Args, m: &MultiReport) {
    if args.has("stats-json") {
        println!("{}", multi_stats_json(m, None));
    } else {
        print_multi_report(m);
    }
}

/// Queue-depth sweep: one fresh prefilled device per depth, random 4 KiB
/// reads, reporting the throughput curve (and optionally a CSV for CI to
/// assert the curve rises until the chips saturate).
fn scenario_qd_sweep(args: &Args) -> Result<(), String> {
    let bs = args.size("bs", 4 * 1024)?;
    let region = args.size("region", 4 << 20)?;
    let ops = args.num("ops", 512)?;
    let wl_seed = args.num("seed", 7)?;
    let depths = [1usize, 2, 4, 8, 16, 32];
    let mut rows: Vec<(usize, MultiReport)> = Vec::with_capacity(depths.len());
    println!("  qd     KIOPS     MiB/s       mean        p99");
    for &qd in &depths {
        let job = FioJob::new(AccessPattern::RandRead, bs)
            .region(0, region)
            .ops_per_thread(ops)
            .bytes_per_thread(u64::MAX)
            .queue_depth(qd)
            .seed(wl_seed);
        let mut specs = vec![TenantSpec::new("sweep", job)];
        let m = run_scenario_tenants(args, &mut specs, &QdOptions::default(), Some(region))?;
        println!(
            "{qd:>4} {:>9.1} {:>9.1} {:>10} {:>10}",
            m.kiops(),
            m.bandwidth_mibs(),
            m.latency.mean.to_string(),
            m.latency.p99.to_string()
        );
        rows.push((qd, m));
    }
    if let Some(path) = args.get("csv") {
        let mut text = String::from("qd,kiops,bandwidth_mibs,mean_ns,p99_ns\n");
        for (qd, m) in &rows {
            text.push_str(&format!(
                "{qd},{:.3},{:.3},{},{}\n",
                m.kiops(),
                m.bandwidth_mibs(),
                m.latency.mean.as_nanos(),
                m.latency.p99.as_nanos()
            ));
        }
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("csv      : {} rows to {path}", rows.len());
    }
    Ok(())
}

/// Two random-read tenants share one device behind a costly fetch stage;
/// weighted round-robin (3:1 by default) shows arbitration dividing the
/// device while per-tenant counters keep summing to the device totals.
fn scenario_interference(args: &Args) -> Result<(), String> {
    let bs = args.size("bs", 4 * 1024)?;
    let region = args.size("region", 4 << 20)?;
    let qd = args.num("qd", 8)? as usize;
    let ops = args.num("ops", 1024)?;
    let wl_seed = args.num("seed", 7)?;
    let weights = match args.get("tenant-weights") {
        Some(_) => parse_tenant_weights(args, 2)?,
        None => vec![3, 1],
    };
    let arbiter = match args.get("arbiter") {
        Some(_) => parse_arbiter(args)?,
        None => ArbiterKind::Weighted,
    };
    let fetch_cost = match args.get("fetch-cost") {
        Some(v) => parse_duration(v)?,
        None => SimDuration::from_micros(25),
    };
    let mk = |name: &str, salt: u64, w: u32| {
        let job = FioJob::new(AccessPattern::RandRead, bs)
            .region(0, region)
            .ops_per_thread(ops)
            .bytes_per_thread(u64::MAX)
            .queue_depth(qd)
            .seed(wl_seed ^ salt);
        TenantSpec::new(name, job).weight(w)
    };
    let mut specs = vec![
        mk("hog", 0x9e37, weights[0]),
        mk("victim", 0x79b9, weights[1]),
    ];
    let opts = QdOptions {
        fetch_cost,
        arbiter,
        ..QdOptions::default()
    };
    let m = run_scenario_tenants(args, &mut specs, &opts, Some(region))?;
    emit_scenario_report(args, &m);
    Ok(())
}

/// A random reader at depth `--qd` against a zoned sequential writer at
/// depth 1 in disjoint halves of the region: readers and writers contend
/// for chips and channels, not for zones.
fn scenario_mixed(args: &Args) -> Result<(), String> {
    let region = args.size("region", 8 << 20)?;
    let qd = args.num("qd", 8)? as usize;
    let ops = args.num("ops", 1024)?;
    let wl_seed = args.num("seed", 7)?;
    let zone_bytes = build_config(args)?.zone_size_bytes();
    let half = (region / 2 / zone_bytes) * zone_bytes;
    if half == 0 {
        return Err(format!("--region {region} smaller than two zones"));
    }
    let reader = FioJob::new(AccessPattern::RandRead, 4 * 1024)
        .region(0, half)
        .ops_per_thread(ops)
        .bytes_per_thread(u64::MAX)
        .queue_depth(qd)
        .seed(wl_seed ^ 0x9e37);
    let writer = FioJob::new(AccessPattern::SeqWrite, 64 * 1024)
        .region(half, half)
        .bytes_per_thread(half.min(2 << 20))
        .seed(wl_seed ^ 0x79b9);
    let mut specs = vec![
        TenantSpec::new("reader", reader),
        TenantSpec::new("writer", writer),
    ];
    let opts = QdOptions {
        fetch_cost: parse_fetch_cost(args)?,
        arbiter: parse_arbiter(args)?,
        ..QdOptions::default()
    };
    let m = run_scenario_tenants(args, &mut specs, &opts, Some(half))?;
    emit_scenario_report(args, &m);
    Ok(())
}

/// ZNS-style flash cache: a deep hot-read stream over cached data while a
/// write-back stream appends sequentially, fsyncing every 8 writes the way
/// a cache's metadata journal would.
fn scenario_flash_cache(args: &Args) -> Result<(), String> {
    let region = args.size("region", 8 << 20)?;
    let qd = args.num("qd", 16)? as usize;
    let ops = args.num("ops", 2048)?;
    let wl_seed = args.num("seed", 7)?;
    let zone_bytes = build_config(args)?.zone_size_bytes();
    let half = (region / 2 / zone_bytes) * zone_bytes;
    if half == 0 {
        return Err(format!("--region {region} smaller than two zones"));
    }
    let hot_reads = FioJob::new(AccessPattern::RandRead, 4 * 1024)
        .region(0, half)
        .ops_per_thread(ops)
        .bytes_per_thread(u64::MAX)
        .queue_depth(qd)
        .seed(wl_seed ^ 0x9e37);
    let writeback = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
        .region(half, half)
        .bytes_per_thread(half.min(2 << 20))
        .fsync_every(8)
        .seed(wl_seed ^ 0x79b9);
    let mut specs = vec![
        TenantSpec::new("hot-reads", hot_reads),
        TenantSpec::new("writeback", writeback),
    ];
    let opts = QdOptions {
        fetch_cost: parse_fetch_cost(args)?,
        arbiter: parse_arbiter(args)?,
        ..QdOptions::default()
    };
    let m = run_scenario_tenants(args, &mut specs, &opts, Some(half))?;
    emit_scenario_report(args, &m);
    Ok(())
}

fn cmd_scenario(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("usage: conzone scenario <qd-sweep|interference|mixed|flash-cache>")?;
    let args = with_default_config(args, "tiny");
    match name {
        "qd-sweep" => scenario_qd_sweep(&args),
        "interference" => scenario_interference(&args),
        "mixed" => scenario_mixed(&args),
        "flash-cache" => scenario_flash_cache(&args),
        other => Err(format!(
            "unknown scenario '{other}' (qd-sweep|interference|mixed|flash-cache)"
        )),
    }
}

const USAGE: &str = "\
conzone — zoned flash storage emulator for consumer devices

usage:
  conzone info      [--config paper|tiny] [--strategy ...] [--cache 12k]
  conzone zones     [--config paper|tiny] [--conventional 2]
  conzone run       [--job file.fio] [--device conzone|legacy|femu]
                    [--pattern seqwrite|seqread|randread|randwrite|mixedNN]
                    [--bs 512k] [--threads 4] [--size 256m] [--region 1g]
                    [--strategy bitmap|multiple|pinned] [--aggregation page|chunk|zone]
                    [--cache 12k] [--buffers 2] [--l2p-log 4096] [--conventional 2]
                    [--trace-out events.json] [--metrics-out metrics.jsonl]
                    [--span-out spans.json|spans.jsonl] [--heatmap]
                    [--metrics-interval 100ms] [--stats-json]
                    [--fault-seed N] [--fault-rates 0.01,0.001,0.05]
                    [--power-cut-at 400us]
                    [--qd 8] [--tenants 2] [--tenant-weights 3,1]
                    [--arbiter rr|wrr] [--fetch-cost 25us]
  conzone scenario  qd-sweep     [--bs 4k] [--region 4m] [--ops 512] [--csv sweep.csv]
  conzone scenario  interference [--qd 8] [--tenant-weights 3,1] [--arbiter rr|wrr]
                                 [--fetch-cost 25us] [--stats-json]
  conzone scenario  mixed        [--qd 8] [--region 8m] [--stats-json]
  conzone scenario  flash-cache  [--qd 16] [--region 8m] [--stats-json]
  conzone replay    <trace-file> [--device conzone|femu] [--open-loop]
  conzone gen-trace [--preset boot|app-install|camera-burst|social-scroll]
                    [--bursts 8] [--burst-bytes 8m] [--reads 5000] [--out trace.txt]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.positional.first().map(String::as_str) {
        Some("info") => cmd_info(&args),
        Some("zones") => cmd_zones(&args),
        Some("run") => cmd_run(&args),
        Some("scenario") => cmd_scenario(&args),
        Some("replay") => cmd_replay(&args),
        Some("gen-trace") => cmd_gen_trace(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert_eq!(parse_size("4k").unwrap(), 4096);
        assert_eq!(parse_size("512K").unwrap(), 512 * 1024);
        assert_eq!(parse_size("16m").unwrap(), 16 << 20);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert!(parse_size("x").is_err());
        assert!(parse_size("4q").is_err());
    }

    #[test]
    fn parse_durations() {
        assert_eq!(
            parse_duration("100ms").unwrap(),
            SimDuration::from_millis(100)
        );
        assert_eq!(parse_duration("2s").unwrap(), SimDuration::from_secs(2));
        assert_eq!(
            parse_duration("50us").unwrap(),
            SimDuration::from_micros(50)
        );
        assert_eq!(
            parse_duration("750ns").unwrap(),
            SimDuration::from_nanos(750)
        );
        assert_eq!(parse_duration("123").unwrap(), SimDuration::from_nanos(123));
        assert!(parse_duration("0ms").is_err());
        assert!(parse_duration("fast").is_err());
    }

    #[test]
    fn run_with_observability_outputs() {
        let dir = std::env::temp_dir().join("conzone-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("events.json");
        let metrics_path = dir.join("metrics.jsonl");
        let a = args(&[
            "run",
            "--config",
            "tiny",
            "--pattern",
            "randwrite",
            "--conventional",
            "2",
            "--bs",
            "16k",
            "--size",
            "2m",
            "--region",
            "2m",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--metrics-interval",
            "200us",
            "--stats-json",
        ]);
        cmd_run(&a).expect("observed run ok");
        // The trace file is valid JSON in Chrome trace-event shape.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let parsed = conzone::sim::json::parse(&trace).expect("trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // Metrics JSONL: every line parses and carries counters.
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.lines().count() >= 1);
        for line in metrics.lines() {
            let m = conzone::sim::json::parse(line).expect("metrics line parses");
            assert!(m.get("counters").is_some());
        }
        std::fs::remove_file(trace_path).ok();
        std::fs::remove_file(metrics_path).ok();
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["run", "--bs", "4k", "--open-loop", "--device", "femu"]);
        assert_eq!(a.positional, vec!["run"]);
        assert_eq!(a.get("bs"), Some("4k"));
        assert_eq!(a.get("device"), Some("femu"));
        assert!(a.has("open-loop"));
        assert!(!a.has("bs"));
        assert_eq!(a.size("bs", 0).unwrap(), 4096);
        assert_eq!(a.num("threads", 3).unwrap(), 3);
    }

    #[test]
    fn last_flag_wins() {
        let a = args(&["run", "--bs", "4k", "--bs", "8k"]);
        assert_eq!(a.size("bs", 0).unwrap(), 8192);
    }

    #[test]
    fn config_builds_for_both_presets() {
        assert!(build_config(&args(&["info"])).is_ok());
        assert!(build_config(&args(&["info", "--config", "tiny"])).is_ok());
        assert!(build_config(&args(&["info", "--config", "nope"])).is_err());
        let cfg = build_config(&args(&[
            "info",
            "--strategy",
            "pinned",
            "--aggregation",
            "chunk",
            "--cache",
            "1k",
            "--conventional",
            "2",
        ]))
        .unwrap();
        assert_eq!(cfg.search_strategy, SearchStrategy::Pinned);
        assert_eq!(cfg.max_aggregation, MapGranularity::Chunk);
        assert_eq!(cfg.l2p_cache_entries(), 256);
        assert_eq!(cfg.conventional_zones, 2);
    }

    #[test]
    fn fault_flags_configure_the_plane() {
        // Without fault flags the default zero-rate plane is kept.
        let cfg = build_config(&args(&["info", "--config", "tiny"])).unwrap();
        assert!(!cfg.fault.enabled());

        let cfg = build_config(&args(&[
            "info",
            "--config",
            "tiny",
            "--fault-rates",
            "0.1, 0.02, 0.3",
            "--fault-seed",
            "42",
        ]))
        .unwrap();
        assert_eq!(cfg.fault.program_fail_rate, 0.1);
        assert_eq!(cfg.fault.erase_fail_rate, 0.02);
        assert_eq!(cfg.fault.read_retry_rate, 0.3);
        assert_eq!(cfg.fault.seed, 42);

        // A seed alone re-seeds the default (disabled) plane.
        let cfg = build_config(&args(&["info", "--config", "tiny", "--fault-seed", "9"])).unwrap();
        assert!(!cfg.fault.enabled());
        assert_eq!(cfg.fault.seed, 9);

        // Malformed triples and out-of-range rates are rejected.
        assert!(build_config(&args(&["info", "--fault-rates", "0.1,0.2"])).is_err());
        assert!(build_config(&args(&["info", "--fault-rates", "0.1,x,0.3"])).is_err());
        assert!(build_config(&args(&["info", "--fault-rates", "1.5,0,0"])).is_err());
    }

    #[test]
    fn run_with_power_cut_recovers() {
        let a = args(&[
            "run",
            "--config",
            "tiny",
            "--bs",
            "8k",
            "--size",
            "1m",
            "--region",
            "1m",
            "--fault-rates",
            "0.05,0,0",
            "--fault-seed",
            "3",
            "--power-cut-at",
            "400us",
        ]);
        cmd_run(&a).expect("power-cut run ok");
        // Baselines cannot power cycle; the CLI refuses up front.
        let a = args(&[
            "run",
            "--config",
            "tiny",
            "--device",
            "legacy",
            "--power-cut-at",
            "400us",
        ]);
        assert!(cmd_run(&a).is_err());
    }

    #[test]
    fn run_command_smoke() {
        // A tiny in-process run through the real command path.
        let a = args(&[
            "run", "--config", "tiny", "--bs", "128k", "--size", "2m", "--region", "2m",
        ]);
        cmd_run(&a).expect("run ok");
        let a = args(&[
            "run",
            "--config",
            "tiny",
            "--pattern",
            "randread",
            "--bs",
            "4k",
            "--size",
            "256k",
            "--region",
            "2m",
        ]);
        cmd_run(&a).expect("randread ok");
    }

    #[test]
    fn run_qd_multi_tenant_smoke() {
        // The queue-pair path through the real command parser: two
        // weighted tenants, a costly fetch stage, machine-readable stats.
        let a = args(&[
            "run",
            "--config",
            "tiny",
            "--pattern",
            "randread",
            "--bs",
            "4k",
            "--size",
            "512k",
            "--region",
            "2m",
            "--qd",
            "4",
            "--tenants",
            "2",
            "--arbiter",
            "wrr",
            "--tenant-weights",
            "3,1",
            "--fetch-cost",
            "5us",
            "--stats-json",
        ]);
        cmd_run(&a).expect("qd run ok");
    }

    #[test]
    fn qd_flags_are_validated() {
        // Queue flags are incompatible with job files and power cuts...
        let a = args(&["run", "--qd", "4", "--job", "x.fio"]);
        assert!(cmd_run(&a).is_err());
        let a = args(&["run", "--qd", "4", "--power-cut-at", "400us"]);
        assert!(cmd_run(&a).is_err());
        // ...and with the femu baseline and the interval sampler.
        let a = args(&["run", "--config", "tiny", "--qd", "2", "--device", "femu"]);
        assert!(cmd_run(&a).is_err());
        let a = args(&["run", "--qd", "2", "--metrics-out", "m.jsonl"]);
        assert!(cmd_run(&a).is_err());
        // Weight lists must match the tenant count; policies must exist.
        let a = args(&["run", "--tenants", "2", "--tenant-weights", "1,2,3"]);
        assert!(cmd_run(&a).is_err());
        let a = args(&["run", "--qd", "2", "--arbiter", "fifo"]);
        assert!(cmd_run(&a).is_err());
        assert!(parse_tenant_weights(&args(&["run"]), 3).unwrap() == vec![1, 1, 1]);
    }

    #[test]
    fn scenario_qd_sweep_writes_a_rising_curve() {
        let dir = std::env::temp_dir().join("conzone-cli-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("sweep.csv");
        let a = args(&[
            "scenario",
            "qd-sweep",
            "--region",
            "2m",
            "--ops",
            "128",
            "--csv",
            csv_path.to_str().unwrap(),
        ]);
        cmd_scenario(&a).expect("sweep ok");
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let kiops: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert_eq!(kiops.len(), 6);
        // Depth buys throughput until the chips saturate.
        assert!(kiops[2] > kiops[0], "qd4 {} <= qd1 {}", kiops[2], kiops[0]);
        assert!(kiops[5] >= kiops[2] * 0.8, "deep queues collapsed");
        std::fs::remove_file(csv_path).ok();
    }

    #[test]
    fn scenario_interference_smoke() {
        let a = args(&[
            "scenario",
            "interference",
            "--region",
            "2m",
            "--ops",
            "128",
            "--stats-json",
        ]);
        cmd_scenario(&a).expect("interference ok");
        let a = args(&["scenario", "nope"]);
        assert!(cmd_scenario(&a).is_err());
    }

    #[test]
    fn merged_span_dumps_keep_parent_before_child() {
        use conzone::types::SpanKind;
        let rec = |id: u64, parent: u64, io: u64, kind: SpanKind| SpanRecord {
            id,
            parent,
            io,
            kind,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        };
        let dev = vec![
            rec(1, 0, 1, SpanKind::IoRead),
            rec(2, 1, 1, SpanKind::DataRead),
        ];
        let host = vec![
            rec(2, 1, 1, SpanKind::QueueWait),
            rec(1, 0, 1, SpanKind::QueueCmd),
        ];
        let merged = merge_span_dumps(dev, host);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[2].id, 4);
        assert_eq!(merged[2].parent, 3);
        assert_eq!(merged[2].io, 2);
        assert_eq!(merged[3].id, 3);
        assert_eq!(merged[3].parent, 0);
        // Every parent id stays smaller than its children's.
        for r in &merged {
            assert!(r.parent < r.id);
        }
    }

    #[test]
    fn gen_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("conzone-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        let path_str = path.to_str().unwrap();
        let a = args(&[
            "gen-trace",
            "--config",
            "tiny",
            "--bursts",
            "2",
            "--burst-bytes",
            "512k",
            "--reads",
            "50",
            "--out",
            path_str,
        ]);
        cmd_gen_trace(&a).expect("gen ok");
        let a = args(&["replay", path_str, "--config", "tiny"]);
        cmd_replay(&a).expect("replay ok");
        std::fs::remove_file(path).ok();
    }
}
