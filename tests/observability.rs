//! End-to-end tests of the observability pipeline: device event tracing,
//! IO-lifecycle spans, interval metrics sampling, and the Chrome-trace /
//! JSONL exports — both through the library API and through the `conzone`
//! CLI.

use std::process::Command;
use std::sync::Arc;

use proptest::prelude::*;

use conzone::host::{run_job, run_job_sampled, AccessPattern, FioJob};
use conzone::sim::{
    attribute_spans, breakdown_from_spans, export, json, RingBufferSink, SpanBuffer,
};
use conzone::types::{DeviceConfig, Probe, SimDuration, SpanRecord, StorageDevice};
use conzone::ConZone;

/// Library-level round-trip: run a workload with a ring sink attached and
/// an interval sampler, then check the Chrome trace parses back with
/// monotonic timestamps and the metrics samples tile the run exactly.
#[test]
fn trace_and_metrics_round_trip_through_exports() {
    let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
    let sink = Arc::new(RingBufferSink::with_capacity(64 * 1024));
    dev.set_probe(Probe::attached(sink.clone()));

    let before = dev.counters();
    let job = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
        .zone_bytes(dev.config().zone_size_bytes())
        .region(0, 4 * 1024 * 1024)
        .bytes_per_thread(4 * 1024 * 1024);
    let report = run_job_sampled(&mut dev, &job, SimDuration::from_micros(500)).expect("run");
    let after = dev.counters();

    // The trace round-trips through the Chrome trace-event export.
    let records = sink.drain();
    assert!(!records.is_empty());
    let parsed = json::parse(&export::chrome_trace(&records).to_string()).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), records.len());
    let mut last_ts = f64::MIN;
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts >= last_ts, "timestamps must be monotonic");
        last_ts = ts;
        names.insert(e.get("name").and_then(|n| n.as_str()).unwrap().to_string());
    }
    // A sequential write over whole zones drains the shared buffer in
    // full programming units.
    assert!(names.contains("buffer_flush_full"), "{names:?}");

    // Metrics samples tile [start, finished] with one Counters delta per
    // interval, and the deltas sum to the whole-run delta.
    assert!(!report.metrics.is_empty());
    for w in report.metrics.windows(2) {
        assert_eq!(w[0].end, w[1].start, "intervals must tile");
    }
    assert_eq!(report.metrics.first().unwrap().start, job.start);
    assert_eq!(report.metrics.last().unwrap().end, report.finished);
    let summed: u64 = report
        .metrics
        .iter()
        .map(|s| s.delta.host_write_bytes)
        .sum();
    assert_eq!(summed, after.since(&before).host_write_bytes);

    // And the JSONL export has one parseable line per interval.
    let jsonl = export::metrics_jsonl(&report.metrics);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), report.metrics.len());
    for line in lines {
        let obj = json::parse(line).expect("each line is one JSON object");
        assert!(obj.get("start_ns").and_then(|v| v.as_u64()).is_some());
        assert!(obj.get("end_ns").and_then(|v| v.as_u64()).is_some());
        assert!(obj.get("counters").is_some());
    }
}

/// A randwrite churn workload in conventional zones exercises SLC GC; the
/// paired GcBegin/GcEnd records become `B`/`E` spans in the Chrome trace.
#[test]
fn gc_events_pair_into_spans() {
    let mut dev = ConZone::new(
        DeviceConfig::builder(conzone::types::Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .data_backing(true)
            .conventional_zones(2)
            .build()
            .expect("config"),
    );
    let sink = Arc::new(RingBufferSink::with_capacity(64 * 1024));
    dev.set_probe(Probe::attached(sink.clone()));

    // Overwrite 1 MiB four times over: SLC churn forces garbage collection.
    let job = FioJob::new(AccessPattern::RandWrite, 4096)
        .region(0, 1024 * 1024)
        .bytes_per_thread(4 * 1024 * 1024);
    run_job(&mut dev, &job).expect("churn");
    assert!(dev.counters().gc_runs > 0, "workload must trigger GC");

    let records = sink.drain();
    let parsed = json::parse(&export::chrome_trace(&records).to_string()).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .unwrap();
    let mut begins = 0i64;
    let mut ends = 0i64;
    for e in events {
        if e.get("name").and_then(|n| n.as_str()) == Some("gc") {
            match e.get("ph").and_then(|p| p.as_str()) {
                Some("B") => begins += 1,
                Some("E") => {
                    ends += 1;
                    assert!(ends <= begins, "E before matching B");
                }
                other => panic!("gc event with phase {other:?}"),
            }
        }
    }
    assert!(begins > 0, "no GC spans in trace");
    assert_eq!(begins, ends, "every GC begin must have an end");
}

/// A tiny device whose small L2P cache, conventional zones and data
/// backing make a short workload touch every breakdown span kind: map
/// fetches, data reads, GC stalls and the write path.
fn spanful_device() -> ConZone {
    ConZone::new(
        DeviceConfig::builder(conzone::types::Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .data_backing(true)
            .conventional_zones(2)
            .l2p_cache_bytes(256)
            .build()
            .expect("config"),
    )
}

/// Fill, churn (forces SLC GC), then cache-missing random reads — the
/// fig7-style phase mix. Returns the final finished time.
fn spanful_workload(dev: &mut ConZone, seed: u64) -> conzone::host::JobReport {
    let fill = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
        .region(0, 4 * 1024 * 1024)
        .bytes_per_thread(4 * 1024 * 1024);
    let fill_report = run_job(dev, &fill).expect("fill");
    let churn = FioJob::new(AccessPattern::RandWrite, 4096)
        .region(0, 1024 * 1024)
        .bytes_per_thread(4 * 1024 * 1024)
        .seed(seed)
        .start_at(fill_report.finished);
    let churn_report = run_job(dev, &churn).expect("churn");
    let reads = FioJob::new(AccessPattern::RandRead, 4096)
        .region(0, 4 * 1024 * 1024)
        .ops_per_thread(500)
        .bytes_per_thread(u64::MAX)
        .seed(seed.wrapping_add(1))
        .start_at(churn_report.finished);
    run_job(dev, &reads).expect("reads")
}

/// The tentpole acceptance check: per-category self-time sums over the
/// span dump must reconcile with the device's own `TimeBreakdown` — not
/// approximately, but nanosecond-exactly, because both sides charge the
/// same DES intervals.
#[test]
fn span_self_times_reconcile_with_time_breakdown() {
    let mut dev = spanful_device();
    let spans = Arc::new(SpanBuffer::with_capacity(1 << 20));
    dev.set_span_sink(spans.clone());
    spanful_workload(&mut dev, 11);

    assert!(dev.counters().gc_runs > 0, "workload must trigger GC");
    assert!(
        dev.counters().l2p_misses > 0,
        "workload must miss the cache"
    );
    assert_eq!(spans.dropped(), 0, "buffer must be large enough");

    let records = spans.drain();
    assert!(!records.is_empty());
    let from_spans = breakdown_from_spans(&records);
    let device_side = dev.time_breakdown();
    for (name, expected) in device_side.categories() {
        let got = from_spans
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO);
        assert_eq!(
            got.as_nanos(),
            expected.as_nanos(),
            "category `{name}` disagrees: spans say {got}, breakdown says {expected}"
        );
    }
    // The phase mix really exercised more than the write path.
    let attr = attribute_spans(&records);
    for kind in ["map_fetch", "data_read", "write_path", "gc_stall"] {
        assert!(
            attr.iter().any(|a| a.kind.name() == kind && a.count > 0),
            "no `{kind}` spans recorded"
        );
    }
}

/// Attaching the span sink must not perturb the simulation: same finish
/// time, same counters, bit for bit.
#[test]
fn attaching_spans_does_not_change_simulated_results() {
    let mut plain = spanful_device();
    let plain_report = spanful_workload(&mut plain, 23);

    let mut instrumented = spanful_device();
    let spans = Arc::new(SpanBuffer::with_capacity(1 << 20));
    instrumented.set_span_sink(spans.clone());
    let instrumented_report = spanful_workload(&mut instrumented, 23);

    assert!(spans.recorded() > 0);
    assert_eq!(plain_report.finished, instrumented_report.finished);
    assert_eq!(plain_report.counters, instrumented_report.counters);
    assert_eq!(plain.counters(), instrumented.counters());
}

/// Checks one IO's spans form a properly nested tree: exactly one root,
/// every child's interval inside its parent's, every parent id known.
fn assert_io_spans_nest(io: u64, spans: &[&SpanRecord]) {
    let roots: Vec<&&SpanRecord> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "io {io} must have exactly one root span");
    let by_id: std::collections::BTreeMap<u64, &&SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids must be unique");
    for s in spans {
        assert!(s.end >= s.start, "span {} ends before it starts", s.id);
        if s.parent != 0 {
            let parent = by_id.get(&s.parent).unwrap_or_else(|| {
                panic!("io {io}: span {} has unknown parent {}", s.id, s.parent)
            });
            assert!(parent.id < s.id, "parents open before children");
            assert!(
                parent.start <= s.start && s.end <= parent.end,
                "io {io}: child {} [{}, {}] escapes parent {} [{}, {}]",
                s.id,
                s.start,
                s.end,
                parent.id,
                parent.start,
                parent.end
            );
        } else {
            assert!(
                s.kind.breakdown_category().is_none(),
                "root spans must be IO-lifecycle kinds, got {}",
                s.kind.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Whatever the workload shape, the recorder never emits a dangling or
    /// crossing span: per IO the dump is one properly nested tree.
    #[test]
    fn span_nesting_is_balanced_per_io(
        seed in 0u64..1024,
        churn_kib in 64u64..2048,
        read_ops in 1u64..400,
    ) {
        let mut dev = spanful_device();
        let spans = Arc::new(SpanBuffer::with_capacity(1 << 20));
        dev.set_span_sink(spans.clone());

        let fill = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
            .region(0, 2 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        let fill_report = run_job(&mut dev, &fill).expect("fill");
        let churn = FioJob::new(AccessPattern::RandWrite, 4096)
            .region(0, 1024 * 1024)
            .bytes_per_thread(churn_kib * 1024)
            .seed(seed)
            .start_at(fill_report.finished);
        let churn_report = run_job(&mut dev, &churn).expect("churn");
        let reads = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, 2 * 1024 * 1024)
            .ops_per_thread(read_ops)
            .bytes_per_thread(u64::MAX)
            .seed(seed.wrapping_add(1))
            .start_at(churn_report.finished);
        run_job(&mut dev, &reads).expect("reads");

        let records = spans.drain();
        prop_assert!(!records.is_empty());
        let mut by_io: std::collections::BTreeMap<u64, Vec<&SpanRecord>> =
            std::collections::BTreeMap::new();
        for s in &records {
            prop_assert!(s.io != 0, "every span belongs to an IO");
            by_io.entry(s.io).or_default().push(s);
        }
        for (io, group) in &by_io {
            assert_io_spans_nest(*io, group);
        }
    }
}

fn conzone_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_conzone"))
        .args(args)
        .output()
        .expect("spawn conzone");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The acceptance scenario: `conzone run` with `--trace-out` and
/// `--metrics-out` produces a Perfetto-loadable trace containing GC,
/// buffer-flush and L2P-miss events with monotonic timestamps, plus a
/// metrics JSONL with one counters delta per interval.
#[test]
fn cli_trace_has_gc_flush_and_l2p_miss_events() {
    let dir = std::env::temp_dir().join("conzone-observability-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let job_path = dir.join("obs.fio");
    let trace_path = dir.join("events.json");
    let metrics_path = dir.join("metrics.jsonl");
    // Fill crosses from the conventional zones into sequential zones
    // (buffer flushes), the churn job forces SLC GC, and the small L2P
    // cache makes the read phase miss.
    std::fs::write(
        &job_path,
        "[global]\nbs=128k\nsize=4m\n\n[fill]\nrw=write\n\n\
         [churn]\nrw=randwrite\nbs=4k\nsize=1m\nio_size=4m\n\n\
         [reads]\nrw=randread\nbs=4k\nio_size=1m\n",
    )
    .unwrap();

    let (ok, _, stderr) = conzone_cli(&[
        "run",
        "--config",
        "tiny",
        "--job",
        job_path.to_str().unwrap(),
        "--conventional",
        "2",
        "--cache",
        "256",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--metrics-interval",
        "200us",
    ]);
    assert!(ok, "{stderr}");

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let parsed = json::parse(&trace).expect("trace file is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents");
    assert!(!events.is_empty());
    let mut last_ts = f64::MIN;
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts >= last_ts, "timestamps must be monotonic");
        last_ts = ts;
        names.insert(e.get("name").and_then(|n| n.as_str()).unwrap().to_string());
    }
    for required in ["gc", "buffer_flush_full", "l2p_miss"] {
        assert!(names.contains(required), "missing {required} in {names:?}");
    }

    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    let mut intervals = 0usize;
    let mut write_bytes = 0u64;
    for line in metrics.lines() {
        let obj = json::parse(line).expect("metrics line parses");
        let start = obj
            .get("start_ns")
            .and_then(|v| v.as_u64())
            .expect("start_ns");
        let end = obj.get("end_ns").and_then(|v| v.as_u64()).expect("end_ns");
        assert!(end > start, "non-empty interval");
        let counters = obj.get("counters").expect("counters delta");
        write_bytes += counters
            .get("host_write_bytes")
            .and_then(|v| v.as_u64())
            .expect("host_write_bytes");
        intervals += 1;
    }
    assert!(
        intervals > 10,
        "expected many 200us intervals, got {intervals}"
    );
    // fill 4 MiB + churn 4 MiB of host writes, spread over the intervals.
    assert_eq!(write_bytes, 8 * 1024 * 1024);

    std::fs::remove_file(&job_path).ok();
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}

/// `conzone run --span-out --heatmap --stats-json`: the span file is a
/// Perfetto-loadable nested trace, the stats JSON carries the span
/// attribution table that reconciles with the breakdown it also reports,
/// and the heatmap snapshot has one row per zone.
#[test]
fn cli_span_out_heatmap_and_stats_json() {
    let dir = std::env::temp_dir().join("conzone-span-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let span_path = dir.join("spans.json");

    let (ok, stdout, stderr) = conzone_cli(&[
        "run",
        "--config",
        "tiny",
        "--pattern",
        "seqwrite",
        "--bs",
        "128k",
        "--size",
        "4m",
        "--region",
        "16m",
        "--span-out",
        span_path.to_str().unwrap(),
        "--heatmap",
        "--stats-json",
    ]);
    assert!(ok, "{stderr}");

    // The span file is a Chrome trace of X events with nesting args.
    let trace = std::fs::read_to_string(&span_path).unwrap();
    let parsed = json::parse(&trace).expect("span trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents");
    assert!(!events.is_empty());
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert!(e.get("dur").unwrap().as_f64().is_some());
        assert!(e.get("args").unwrap().get("io").unwrap().as_u64().is_some());
    }

    // The stats JSON reports the span table, and it reconciles with the
    // breakdown the same document reports.
    let stats = json::parse(&stdout).expect("stats JSON parses");
    let spans = stats.get("spans").expect("spans section");
    assert_eq!(
        spans.get("recorded").unwrap().as_u64(),
        Some(events.len() as u64)
    );
    assert_eq!(spans.get("dropped").unwrap().as_u64(), Some(0));
    let per_kind = spans.get("per_kind").expect("per_kind table");
    assert!(per_kind.get("io_write").is_some(), "{per_kind}");
    let device_breakdown = stats.get("breakdown_ns").expect("device breakdown");
    let span_breakdown = spans.get("breakdown_ns").expect("span breakdown");
    for name in [
        "mapping_fetch",
        "data_read",
        "write_path",
        "combine_read",
        "gc",
        "l2p_log",
        "erase",
    ] {
        assert_eq!(
            span_breakdown.get(name).unwrap().as_u64(),
            device_breakdown.get(name).unwrap().as_u64(),
            "category `{name}` must reconcile"
        );
    }

    // The heatmap snapshot has one row per zone and per physical block.
    let heatmap = stats.get("heatmap").expect("heatmap section");
    let zones = heatmap.get("zones").unwrap().as_array().unwrap();
    assert!(!zones.is_empty());
    for z in zones {
        for field in ["zone", "state", "wp_slices", "mapped_slices", "utilization"] {
            assert!(z.get(field).is_some(), "zone row missing `{field}`");
        }
    }
    assert!(!heatmap
        .get("blocks")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    std::fs::remove_file(&span_path).ok();
}

/// `--span-out` and `--heatmap` only make sense for the ConZone device;
/// the CLI must refuse them for baselines rather than silently writing an
/// empty file.
#[test]
fn cli_rejects_span_out_for_baseline_devices() {
    let (ok, _, stderr) = conzone_cli(&[
        "run",
        "--config",
        "tiny",
        "--device",
        "legacy",
        "--pattern",
        "seqwrite",
        "--bs",
        "128k",
        "--size",
        "1m",
        "--span-out",
        "/tmp/never-written.json",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--span-out"), "{stderr}");
}
