//! End-to-end tests of the observability pipeline: device event tracing,
//! interval metrics sampling, and the Chrome-trace / JSONL exports —
//! both through the library API and through the `conzone` CLI.

use std::process::Command;
use std::sync::Arc;

use conzone::host::{run_job, run_job_sampled, AccessPattern, FioJob};
use conzone::sim::{export, json, RingBufferSink};
use conzone::types::{DeviceConfig, Probe, SimDuration, StorageDevice};
use conzone::ConZone;

/// Library-level round-trip: run a workload with a ring sink attached and
/// an interval sampler, then check the Chrome trace parses back with
/// monotonic timestamps and the metrics samples tile the run exactly.
#[test]
fn trace_and_metrics_round_trip_through_exports() {
    let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
    let sink = Arc::new(RingBufferSink::with_capacity(64 * 1024));
    dev.set_probe(Probe::attached(sink.clone()));

    let before = dev.counters();
    let job = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
        .zone_bytes(dev.config().zone_size_bytes())
        .region(0, 4 * 1024 * 1024)
        .bytes_per_thread(4 * 1024 * 1024);
    let report = run_job_sampled(&mut dev, &job, SimDuration::from_micros(500)).expect("run");
    let after = dev.counters();

    // The trace round-trips through the Chrome trace-event export.
    let records = sink.drain();
    assert!(!records.is_empty());
    let parsed = json::parse(&export::chrome_trace(&records).to_string()).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), records.len());
    let mut last_ts = f64::MIN;
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts >= last_ts, "timestamps must be monotonic");
        last_ts = ts;
        names.insert(e.get("name").and_then(|n| n.as_str()).unwrap().to_string());
    }
    // A sequential write over whole zones drains the shared buffer in
    // full programming units.
    assert!(names.contains("buffer_flush_full"), "{names:?}");

    // Metrics samples tile [start, finished] with one Counters delta per
    // interval, and the deltas sum to the whole-run delta.
    assert!(!report.metrics.is_empty());
    for w in report.metrics.windows(2) {
        assert_eq!(w[0].end, w[1].start, "intervals must tile");
    }
    assert_eq!(report.metrics.first().unwrap().start, job.start);
    assert_eq!(report.metrics.last().unwrap().end, report.finished);
    let summed: u64 = report
        .metrics
        .iter()
        .map(|s| s.delta.host_write_bytes)
        .sum();
    assert_eq!(summed, after.since(&before).host_write_bytes);

    // And the JSONL export has one parseable line per interval.
    let jsonl = export::metrics_jsonl(&report.metrics);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), report.metrics.len());
    for line in lines {
        let obj = json::parse(line).expect("each line is one JSON object");
        assert!(obj.get("start_ns").and_then(|v| v.as_u64()).is_some());
        assert!(obj.get("end_ns").and_then(|v| v.as_u64()).is_some());
        assert!(obj.get("counters").is_some());
    }
}

/// A randwrite churn workload in conventional zones exercises SLC GC; the
/// paired GcBegin/GcEnd records become `B`/`E` spans in the Chrome trace.
#[test]
fn gc_events_pair_into_spans() {
    let mut dev = ConZone::new(
        DeviceConfig::builder(conzone::types::Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .data_backing(true)
            .conventional_zones(2)
            .build()
            .expect("config"),
    );
    let sink = Arc::new(RingBufferSink::with_capacity(64 * 1024));
    dev.set_probe(Probe::attached(sink.clone()));

    // Overwrite 1 MiB four times over: SLC churn forces garbage collection.
    let job = FioJob::new(AccessPattern::RandWrite, 4096)
        .region(0, 1024 * 1024)
        .bytes_per_thread(4 * 1024 * 1024);
    run_job(&mut dev, &job).expect("churn");
    assert!(dev.counters().gc_runs > 0, "workload must trigger GC");

    let records = sink.drain();
    let parsed = json::parse(&export::chrome_trace(&records).to_string()).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .unwrap();
    let mut begins = 0i64;
    let mut ends = 0i64;
    for e in events {
        if e.get("name").and_then(|n| n.as_str()) == Some("gc") {
            match e.get("ph").and_then(|p| p.as_str()) {
                Some("B") => begins += 1,
                Some("E") => {
                    ends += 1;
                    assert!(ends <= begins, "E before matching B");
                }
                other => panic!("gc event with phase {other:?}"),
            }
        }
    }
    assert!(begins > 0, "no GC spans in trace");
    assert_eq!(begins, ends, "every GC begin must have an end");
}

fn conzone_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_conzone"))
        .args(args)
        .output()
        .expect("spawn conzone");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The acceptance scenario: `conzone run` with `--trace-out` and
/// `--metrics-out` produces a Perfetto-loadable trace containing GC,
/// buffer-flush and L2P-miss events with monotonic timestamps, plus a
/// metrics JSONL with one counters delta per interval.
#[test]
fn cli_trace_has_gc_flush_and_l2p_miss_events() {
    let dir = std::env::temp_dir().join("conzone-observability-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let job_path = dir.join("obs.fio");
    let trace_path = dir.join("events.json");
    let metrics_path = dir.join("metrics.jsonl");
    // Fill crosses from the conventional zones into sequential zones
    // (buffer flushes), the churn job forces SLC GC, and the small L2P
    // cache makes the read phase miss.
    std::fs::write(
        &job_path,
        "[global]\nbs=128k\nsize=4m\n\n[fill]\nrw=write\n\n\
         [churn]\nrw=randwrite\nbs=4k\nsize=1m\nio_size=4m\n\n\
         [reads]\nrw=randread\nbs=4k\nio_size=1m\n",
    )
    .unwrap();

    let (ok, _, stderr) = conzone_cli(&[
        "run",
        "--config",
        "tiny",
        "--job",
        job_path.to_str().unwrap(),
        "--conventional",
        "2",
        "--cache",
        "256",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--metrics-interval",
        "200us",
    ]);
    assert!(ok, "{stderr}");

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let parsed = json::parse(&trace).expect("trace file is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents");
    assert!(!events.is_empty());
    let mut last_ts = f64::MIN;
    let mut names = std::collections::BTreeSet::new();
    for e in events {
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts >= last_ts, "timestamps must be monotonic");
        last_ts = ts;
        names.insert(e.get("name").and_then(|n| n.as_str()).unwrap().to_string());
    }
    for required in ["gc", "buffer_flush_full", "l2p_miss"] {
        assert!(names.contains(required), "missing {required} in {names:?}");
    }

    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    let mut intervals = 0usize;
    let mut write_bytes = 0u64;
    for line in metrics.lines() {
        let obj = json::parse(line).expect("metrics line parses");
        let start = obj
            .get("start_ns")
            .and_then(|v| v.as_u64())
            .expect("start_ns");
        let end = obj.get("end_ns").and_then(|v| v.as_u64()).expect("end_ns");
        assert!(end > start, "non-empty interval");
        let counters = obj.get("counters").expect("counters delta");
        write_bytes += counters
            .get("host_write_bytes")
            .and_then(|v| v.as_u64())
            .expect("host_write_bytes");
        intervals += 1;
    }
    assert!(
        intervals > 10,
        "expected many 200us intervals, got {intervals}"
    );
    // fill 4 MiB + churn 4 MiB of host writes, spread over the intervals.
    assert_eq!(write_bytes, 8 * 1024 * 1024);

    std::fs::remove_file(&job_path).ok();
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}
