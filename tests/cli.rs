//! End-to-end tests of the `conzone` CLI binary.

use std::process::Command;

fn conzone(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_conzone"))
        .args(args)
        .output()
        .expect("spawn conzone");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_and_unknown_command() {
    let (ok, stdout, _) = conzone(&[]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
    let (ok, _, stderr) = conzone(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn info_reports_paper_configuration() {
    let (ok, stdout, _) = conzone(&["info"]);
    assert!(ok);
    assert!(stdout.contains("96 x 16 MiB"), "{stdout}");
    assert!(stdout.contains("3072 entry cache"), "{stdout}");
    let (ok, stdout, _) = conzone(&["info", "--config", "tiny", "--conventional", "2"]);
    assert!(ok);
    assert!(stdout.contains("2 conventional zones"), "{stdout}");
    let (ok, _, stderr) = conzone(&["info", "--config", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown --config"));
}

#[test]
fn run_seqwrite_and_randread() {
    let (ok, stdout, stderr) = conzone(&[
        "run", "--config", "tiny", "--bs", "128k", "--size", "2m", "--region", "2m",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("MiB/s"), "{stdout}");
    assert!(stdout.contains("time     :"), "breakdown printed: {stdout}");

    let (ok, stdout, stderr) = conzone(&[
        "run",
        "--config",
        "tiny",
        "--pattern",
        "randread",
        "--bs",
        "4k",
        "--size",
        "512k",
        "--region",
        "2m",
        "--device",
        "femu",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("femu:"), "{stdout}");
}

#[test]
fn zones_lists_states() {
    let (ok, stdout, _) = conzone(&["zones", "--config", "tiny", "--conventional", "1"]);
    assert!(ok);
    assert!(stdout.contains("conventional"), "{stdout}");
    assert!(stdout.contains("sequential"), "{stdout}");
    assert!(stdout.contains("Full"), "{stdout}");
}

#[test]
fn gen_trace_replay_roundtrip() {
    let dir = std::env::temp_dir().join("conzone-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e-trace.txt");
    let path = path.to_str().unwrap();
    let (ok, stdout, stderr) = conzone(&[
        "gen-trace",
        "--config",
        "tiny",
        "--bursts",
        "2",
        "--burst-bytes",
        "512k",
        "--reads",
        "100",
        "--out",
        path,
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote"), "{stdout}");
    let (ok, stdout, stderr) = conzone(&["replay", path, "--config", "tiny"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("replaying"), "{stdout}");
    assert!(stdout.contains("conzone:"), "{stdout}");
    std::fs::remove_file(path).ok();
    // Replay of a missing file fails cleanly.
    let (ok, _, stderr) = conzone(&["replay", "/nonexistent/trace.txt"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn run_fio_job_file() {
    let dir = std::env::temp_dir().join("conzone-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("job.fio");
    std::fs::write(
        &path,
        "[global]\nbs=256k\nsize=2m\n\n[fill]\nrw=write\n\n[reads]\nrw=randread\nbs=4k\nio_size=256k\n",
    )
    .unwrap();
    let (ok, stdout, stderr) =
        conzone(&["run", "--config", "tiny", "--job", path.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("[fill]"), "{stdout}");
    assert!(stdout.contains("[reads]"), "{stdout}");
    assert!(stdout.contains("time     :"), "{stdout}");
    std::fs::remove_file(&path).ok();
    // Unsupported keys fail loudly.
    std::fs::write(&path, "[j]\nioengine=libaio\n").unwrap();
    let (ok, _, stderr) = conzone(&["run", "--config", "tiny", "--job", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unsupported key"), "{stderr}");
    std::fs::remove_file(&path).ok();
}
