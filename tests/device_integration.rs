//! Cross-crate integration: the three device models driven through the
//! shared traits by the host runner.

use conzone::host::{run_job, AccessPattern, FioJob};
use conzone::types::{DeviceConfig, IoRequest, SimTime, StorageDevice, ZoneId, ZonedDevice};
use conzone::{ConZone, FemuZns, LegacyDevice};

fn cfg() -> DeviceConfig {
    DeviceConfig::tiny_for_tests()
}

/// Every model serves a write→read roundtrip through the trait object
/// interface.
#[test]
fn all_models_roundtrip_via_trait_object() {
    let mut devices: Vec<Box<dyn StorageDevice>> = vec![
        Box::new(ConZone::new(cfg())),
        Box::new(LegacyDevice::new(cfg())),
        Box::new(FemuZns::new(cfg())),
    ];
    for dev in devices.iter_mut() {
        let data = bytes::Bytes::from(vec![0xabu8; 128 * 1024]);
        let w = dev
            .submit(SimTime::ZERO, &IoRequest::write_data(0, data.clone()))
            .unwrap_or_else(|e| panic!("{} write: {e}", dev.model_name()));
        let r = dev
            .submit(w.finished, &IoRequest::read(0, 128 * 1024))
            .unwrap_or_else(|e| panic!("{} read: {e}", dev.model_name()));
        assert_eq!(
            r.data.expect("backed"),
            data,
            "{} data integrity",
            dev.model_name()
        );
        let c = dev.counters();
        assert_eq!(c.host_write_bytes, 128 * 1024, "{}", dev.model_name());
    }
}

/// The fio runner produces consistent reports for every model.
#[test]
fn runner_reports_all_models() {
    let zone = 1024 * 1024u64;
    // ConZone and FEMU are zoned; Legacy takes a flat stream.
    let mut cz = ConZone::new(cfg());
    let job = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
        .zone_bytes(zone)
        .region(0, 4 * zone)
        .bytes_per_thread(4 * zone)
        .verify(true);
    let r = run_job(&mut cz, &job).expect("conzone");
    assert_eq!(r.bytes, 4 * zone);
    assert!(r.bandwidth_mibs() > 0.0 && r.latency.count == 32);

    let mut fm = FemuZns::new(cfg());
    let femu_zone = fm.zone_size();
    let job = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
        .zone_bytes(femu_zone)
        .region(0, 4 * femu_zone)
        .bytes_per_thread(4 * femu_zone)
        .verify(true);
    let r = run_job(&mut fm, &job).expect("femu");
    assert_eq!(r.bytes, 4 * femu_zone);

    let mut lg = LegacyDevice::new(cfg());
    let job = FioJob::new(AccessPattern::SeqWrite, 128 * 1024)
        .region(0, 4 * zone)
        .bytes_per_thread(4 * zone)
        .verify(true);
    let r = run_job(&mut lg, &job).expect("legacy");
    assert_eq!(r.bytes, 4 * zone);
}

/// Zoned semantics agree between the two zoned models.
#[test]
fn zoned_models_agree_on_semantics() {
    let mut cz = ConZone::new(cfg());
    let mut fm = FemuZns::new(cfg());

    // Both enforce the write pointer.
    for result in [
        cz.submit(SimTime::ZERO, &IoRequest::write(8192, 4096)),
        fm.submit(SimTime::ZERO, &IoRequest::write(8192, 4096)),
    ] {
        assert!(matches!(
            result,
            Err(conzone::types::DeviceError::NotWritePointer { .. })
        ));
    }

    // Both expose zone info and reset.
    for (zc, zs) in [
        (cz.zone_count(), cz.zone_size()),
        (fm.zone_count(), fm.zone_size()),
    ] {
        assert!(zc > 0 && zs > 0);
    }
    let w = cz
        .submit(SimTime::ZERO, &IoRequest::write(0, 4096))
        .unwrap();
    let r = cz.reset_zone(w.finished, ZoneId(0)).unwrap();
    assert_eq!(
        cz.zone_info(ZoneId(0)).unwrap().state,
        conzone::types::ZoneState::Empty
    );
    let _ = r;
}

/// Identical request streams produce identical simulated timings across
/// construction of fresh devices (global determinism).
#[test]
fn cross_model_determinism() {
    fn run_once() -> Vec<u64> {
        let mut out = Vec::new();
        let mut cz = ConZone::new(cfg());
        let mut fm = FemuZns::new(cfg());
        let mut lg = LegacyDevice::new(cfg());
        let mut t = [SimTime::ZERO; 3];
        for i in 0..32u64 {
            let req = IoRequest::write(i * 64 * 1024, 64 * 1024);
            t[0] = cz.submit(t[0], &req).unwrap().finished;
            t[1] = fm.submit(t[1], &req).unwrap().finished;
            t[2] = lg.submit(t[2], &req).unwrap().finished;
        }
        out.extend(t.iter().map(|x| x.as_nanos()));
        out
    }
    assert_eq!(run_once(), run_once());
}

/// ConZone's counters expose the full internal story for a mixed workload.
#[test]
fn counters_tell_consistent_story() {
    let mut dev = ConZone::new(cfg());
    let zone = dev.zone_size();
    let mut t = SimTime::ZERO;
    // Conflicting writes (zones 0 and 2 share a buffer).
    for round in 0..8u64 {
        for &z in &[0u64, 2] {
            let off = z * zone + round * 48 * 1024;
            t = dev
                .submit(t, &IoRequest::write(off, 48 * 1024))
                .unwrap()
                .finished;
        }
    }
    let c = dev.counters();
    assert!(
        c.buffer_conflicts >= 15,
        "conflicts: {}",
        c.buffer_conflicts
    );
    assert_eq!(
        c.host_write_bytes,
        2 * 8 * 48 * 1024,
        "host accounting exact"
    );
    // Premature flushes imply SLC programs; combines imply data reads.
    assert!(c.premature_flushes > 0);
    assert!(c.flash_program_bytes_slc > 0);
    assert!(c.slc_combines > 0);
    assert!(c.flash_data_reads > 0, "combine readback");
    // Flash wrote at least what the host wrote.
    assert!(c.flash_program_bytes() >= c.host_write_bytes);
}
