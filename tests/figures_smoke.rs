//! Shape-level smoke tests of every paper experiment, at reduced scale so
//! they run in the normal test suite. The full-scale runs live in the
//! `conzone-bench` binaries; these tests pin the *directions* the paper
//! reports so a regression that flips a conclusion fails CI.

use conzone::host::{run_job, AccessPattern, FioJob};
use conzone::types::{
    DeviceConfig, Geometry, MapGranularity, SearchStrategy, SimTime, StorageDevice,
};
use conzone::{ConZone, FemuZns, LegacyDevice};

fn paper_small() -> conzone::types::DeviceConfigBuilder {
    // The paper geometry shrunk to 24 normal zones to keep tests fast.
    let mut g = Geometry::consumer_1p5gb();
    g.blocks_per_chip = 32;
    DeviceConfig::builder(g)
}

fn fill(dev: &mut impl StorageDevice, bytes: u64, zone: u64) -> SimTime {
    let job = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
        .zone_bytes(zone)
        .region(0, bytes)
        .bytes_per_thread(bytes);
    run_job(dev, &job).expect("fill").finished
}

fn randread(
    dev: &mut impl StorageDevice,
    range: u64,
    ops: u64,
    start: SimTime,
) -> conzone::host::JobReport {
    let job = FioJob::new(AccessPattern::RandRead, 4096)
        .region(0, range)
        .ops_per_thread(ops)
        .bytes_per_thread(u64::MAX)
        .start_at(start);
    run_job(dev, &job).expect("randread")
}

/// Fig. 6(a) direction: ConZone sequential read is at least Legacy's, and
/// the FEMU model's reads collapse under VM jitter.
#[test]
fn fig6a_shape() {
    let zone = 16 * 1024 * 1024u64;
    let volume = 8 * zone;

    let mut cz = ConZone::new(
        paper_small()
            .max_aggregation(MapGranularity::Chunk)
            .build()
            .unwrap(),
    );
    let t = fill(&mut cz, volume, zone);
    let job = FioJob::new(AccessPattern::SeqRead, 512 * 1024)
        .region(0, volume)
        .bytes_per_thread(volume)
        .start_at(t);
    let cz_read = run_job(&mut cz, &job).expect("cz read");

    let mut lg = LegacyDevice::new(paper_small().build().unwrap());
    let job = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
        .region(0, volume)
        .bytes_per_thread(volume);
    let w = run_job(&mut lg, &job).expect("lg write");
    let job = FioJob::new(AccessPattern::SeqRead, 512 * 1024)
        .region(0, volume)
        .bytes_per_thread(volume)
        .start_at(w.finished);
    let lg_read = run_job(&mut lg, &job).expect("lg read");

    let mut fm = FemuZns::new(paper_small().build().unwrap());
    let fz = fm.config().geometry.superblock_bytes();
    let fvol = 8 * fz;
    let t = fill(&mut fm, fvol, fz);
    let job = FioJob::new(AccessPattern::SeqRead, 512 * 1024)
        .region(0, fvol)
        .bytes_per_thread(fvol)
        .start_at(t);
    let fm_read = run_job(&mut fm, &job).expect("fm read");

    assert!(
        cz_read.bandwidth_mibs() >= lg_read.bandwidth_mibs() * 0.99,
        "conzone read {} vs legacy {}",
        cz_read.bandwidth_mibs(),
        lg_read.bandwidth_mibs()
    );
    assert!(
        fm_read.bandwidth_mibs() < cz_read.bandwidth_mibs() * 0.8,
        "femu read {} vs conzone {}",
        fm_read.bandwidth_mibs(),
        cz_read.bandwidth_mibs()
    );
}

/// Fig. 6(b) direction: same-parity zones conflict, costing bandwidth and
/// write amplification.
#[test]
fn fig6b_shape() {
    let run = |zones: [u64; 2]| {
        let mut dev = ConZone::new(paper_small().build().unwrap());
        let zone = dev.config().zone_size_bytes();
        let job = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
            .zone_bytes(zone)
            .threads(2)
            .with_thread_zones(vec![vec![zones[0]], vec![zones[1]]])
            .bytes_per_thread(zone / 2);
        let r = run_job(&mut dev, &job).expect("fig6b");
        (r.bandwidth_mibs(), r.waf(), r.counters.buffer_conflicts)
    };
    let (bw_conflict, waf_conflict, conflicts) = run([0, 2]);
    let (bw_clean, waf_clean, no_conflicts) = run([0, 1]);
    assert!(conflicts > 0 && no_conflicts == 0);
    assert!(bw_clean > bw_conflict * 1.3, "{bw_clean} vs {bw_conflict}");
    assert!(waf_conflict > waf_clean, "{waf_conflict} vs {waf_clean}");
}

/// Fig. 7 direction: page-mapping KIOPS decays with read range, hybrid
/// stays flat.
#[test]
fn fig7_shape() {
    let zone = 16 * 1024 * 1024u64;
    let volume = 16 * zone; // 256 MiB
    let ops = 4000;

    let run = |agg: MapGranularity, range: u64| {
        let mut dev = ConZone::new(paper_small().max_aggregation(agg).build().unwrap());
        let t = fill(&mut dev, volume, zone);
        let warm = randread(&mut dev, range, ops, t);
        randread(&mut dev, range, ops, warm.finished).kiops()
    };

    let page_small = run(MapGranularity::Page, 1 << 20);
    let page_large = run(MapGranularity::Page, volume);
    let hybrid_small = run(MapGranularity::Zone, 1 << 20);
    let hybrid_large = run(MapGranularity::Zone, volume);

    assert!(
        page_large < page_small * 0.9,
        "page decays: {page_small} -> {page_large}"
    );
    assert!(
        (hybrid_large / hybrid_small - 1.0).abs() < 0.05,
        "hybrid flat: {hybrid_small} -> {hybrid_large}"
    );
    assert!(hybrid_large > page_large, "hybrid wins at range");
}

/// Fig. 8 direction: at the same miss rate, MULTIPLE pays more than
/// BITMAP; PINNED eliminates the misses.
#[test]
fn fig8_shape() {
    let zone = 16 * 1024 * 1024u64;
    let volume = 20 * zone;
    let ops = 4000;

    let run = |strategy: SearchStrategy, agg: MapGranularity| {
        let mut dev = ConZone::new(
            paper_small()
                .search_strategy(strategy)
                .max_aggregation(agg)
                .l2p_cache_bytes(256) // 64 entries vs 80 chunks
                .build()
                .unwrap(),
        );
        let t = fill(&mut dev, volume, zone);
        let r = randread(&mut dev, volume, ops, t);
        (r.kiops(), r.counters.l2p_miss_rate())
    };
    let (bitmap_kiops, bitmap_miss) = run(SearchStrategy::Bitmap, MapGranularity::Chunk);
    let (multiple_kiops, multiple_miss) = run(SearchStrategy::Multiple, MapGranularity::Chunk);
    let (pinned_kiops, pinned_miss) = run(SearchStrategy::Pinned, MapGranularity::Zone);

    assert!(
        (bitmap_miss - multiple_miss).abs() < 0.02,
        "same operating point"
    );
    assert!(bitmap_miss > 0.05, "misses actually happen: {bitmap_miss}");
    assert!(
        multiple_kiops < bitmap_kiops,
        "multiple pays: {multiple_kiops} vs {bitmap_kiops}"
    );
    assert!(pinned_miss < 0.02, "pinned absorbs misses: {pinned_miss}");
    assert!(pinned_kiops >= bitmap_kiops);
}

/// Table II: the timing model reproduces the published latencies exactly.
#[test]
fn table2_shape() {
    use conzone::flash::FlashArray;
    use conzone::types::ChipId;
    let cfg = DeviceConfig::builder(Geometry::tiny())
        .chunk_bytes(256 * 1024)
        .model_channel_bandwidth(false)
        .build()
        .unwrap();
    let mut a = FlashArray::new(&cfg);
    let slc = a.program_slc(SimTime::ZERO, ChipId(0), 0, 1, None).unwrap();
    assert_eq!((slc.finish - SimTime::ZERO).as_micros_f64(), 75.0);
    let tlc = a.program_unit(SimTime::ZERO, ChipId(1), 4, None).unwrap();
    assert_eq!((tlc.finish - SimTime::ZERO).as_micros_f64(), 937.5);
    let read = a
        .read_slices(SimTime::from_nanos(10_000_000), &[slc.first])
        .unwrap();
    assert_eq!(
        (read.finish - SimTime::from_nanos(10_000_000)).as_micros_f64(),
        20.0
    );
}
