//! Differential conformance: the two zoned models must agree on the
//! *semantics* of the zoned interface (accept/reject decisions, write
//! pointers, states) even though their timing models differ entirely.

use conzone::sim::SimRng;
use conzone::types::{IoRequest, SimTime, StorageDevice, ZoneId, ZoneState, ZonedDevice};
use conzone::{ConZone, FemuZns};

/// FEMU zones are superblock-sized (1 MiB in the tiny geometry, same as
/// ConZone's power-of-two tiny zones), so the two models share an address
/// space here.
fn devices() -> (ConZone, FemuZns) {
    // FEMU does not model the open-zone limit, so lift ConZone's for a
    // pure interface-semantics comparison.
    let cfg = conzone::types::DeviceConfig::builder(conzone::types::Geometry::tiny())
        .chunk_bytes(256 * 1024)
        .data_backing(true)
        .max_open_zones(usize::MAX)
        .build()
        .expect("conformance config");
    assert_eq!(
        cfg.zone_size_bytes(),
        cfg.geometry.superblock_bytes(),
        "tiny zones align across models"
    );
    (ConZone::new(cfg.clone()), FemuZns::new(cfg))
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Write { zone: u64, slices: u64 },
    Append { zone: u64, slices: u64 },
    Read { slice: u64, count: u64 },
    Reset { zone: u64 },
    Open { zone: u64 },
    Close { zone: u64 },
    Finish { zone: u64 },
}

#[test]
fn zoned_models_agree_on_accept_reject() {
    let (mut cz, mut fm) = devices();
    let zs = cz.zone_size() / 4096;
    let nzones = cz.zone_count().min(fm.zone_count()) as u64;
    let mut rng = SimRng::new(0xc0f0);
    let mut wp = vec![0u64; nzones as usize];
    let (mut t_cz, mut t_fm) = (SimTime::ZERO, SimTime::ZERO);

    for step in 0..2500u64 {
        let zone = rng.below(nzones);
        let op = match rng.below(10) {
            0..=3 => Op::Write {
                zone,
                slices: 1 + rng.below(6),
            },
            4 => Op::Append {
                zone,
                slices: 1 + rng.below(4),
            },
            5..=6 => Op::Read {
                slice: zone * zs + rng.below(zs),
                count: 1,
            },
            7 => Op::Reset { zone },
            8 => Op::Open { zone },
            _ => match rng.below(2) {
                0 => Op::Close { zone },
                _ => Op::Finish { zone },
            },
        };

        let (rc, rf): (Result<_, _>, Result<_, _>) = match op {
            Op::Write { zone, slices } => {
                let offset = (zone * zs + wp[zone as usize]) * 4096;
                let req = IoRequest::write(offset, slices * 4096);
                (cz.submit(t_cz, &req), fm.submit(t_fm, &req))
            }
            Op::Append { zone, slices } => {
                let req = IoRequest::append(zone * zs * 4096, slices * 4096);
                (cz.submit(t_cz, &req), fm.submit(t_fm, &req))
            }
            Op::Read { slice, count } => {
                let req = IoRequest::read(slice * 4096, count * 4096);
                (cz.submit(t_cz, &req), fm.submit(t_fm, &req))
            }
            Op::Reset { zone } => (
                cz.reset_zone(t_cz, ZoneId(zone)),
                fm.reset_zone(t_fm, ZoneId(zone)),
            ),
            Op::Open { zone } => (
                cz.open_zone(t_cz, ZoneId(zone)),
                fm.open_zone(t_fm, ZoneId(zone)),
            ),
            Op::Close { zone } => (
                cz.close_zone(t_cz, ZoneId(zone)),
                fm.close_zone(t_fm, ZoneId(zone)),
            ),
            Op::Finish { zone } => (
                cz.finish_zone(t_cz, ZoneId(zone)),
                fm.finish_zone(t_fm, ZoneId(zone)),
            ),
        };

        // The two models must agree on acceptance.
        assert_eq!(
            rc.is_ok(),
            rf.is_ok(),
            "step {step}: {op:?} — conzone {rc:?} vs femu {rf:?}"
        );
        if let (Ok(c1), Ok(c2)) = (&rc, &rf) {
            t_cz = c1.finished;
            t_fm = c2.finished;
            assert_eq!(
                c1.assigned_offset.is_some(),
                c2.assigned_offset.is_some(),
                "step {step}: append semantics agree"
            );
            if let (Some(a), Some(b)) = (c1.assigned_offset, c2.assigned_offset) {
                assert_eq!(a, b, "step {step}: same append placement");
            }
            // Maintain the shadow write pointer.
            match op {
                Op::Write { zone, slices } | Op::Append { zone, slices } => {
                    wp[zone as usize] += slices;
                }
                Op::Reset { zone } => wp[zone as usize] = 0,
                _ => {}
            }
        }

        // Zone views agree.
        let zi_c = cz.zone_info(ZoneId(zone)).expect("conzone info");
        let zi_f = fm.zone_info(ZoneId(zone)).expect("femu info");
        assert_eq!(
            zi_c.write_pointer, zi_f.write_pointer,
            "step {step}: write pointers agree on zone {zone}"
        );
        let states_agree = matches!(
            (zi_c.state, zi_f.state),
            (ZoneState::Empty, ZoneState::Empty)
                | (ZoneState::Open, ZoneState::Open)
                | (ZoneState::Closed, ZoneState::Closed)
                | (ZoneState::Full, ZoneState::Full)
        );
        assert!(
            states_agree,
            "step {step}: zone {zone} states {:?} vs {:?}",
            zi_c.state, zi_f.state
        );
    }
}
