//! Property-based integrity tests: arbitrary legal request sequences must
//! preserve data through buffering, SLC staging, combining, GC migration
//! and zone resets.

use bytes::Bytes;
use proptest::prelude::*;

use conzone::host::{power_cycle_and_verify, run_job_until, AccessPattern, FioJob};
use conzone::types::{
    DeviceConfig, FaultConfig, Geometry, IoRequest, SimDuration, SimTime, StorageDevice, ZoneId,
    ZonedDevice, SLICE_BYTES,
};
use conzone::{ConZone, LegacyDevice};

/// Deterministic slice payload for (op index, slice index).
fn slice_payload(tag: u64) -> Vec<u8> {
    let mut v = vec![0u8; SLICE_BYTES as usize];
    for (i, b) in v.iter_mut().enumerate() {
        *b = (tag as u8)
            .wrapping_mul(31)
            .wrapping_add((i as u8).wrapping_mul(7));
    }
    v
}

#[derive(Debug, Clone)]
enum ZonedOp {
    /// Append `nslices` to zone `zone_pick` (modulo available zones).
    Write { zone_pick: u8, nslices: u8 },
    /// Reset the picked zone.
    Reset { zone_pick: u8 },
}

fn zoned_ops() -> impl Strategy<Value = Vec<ZonedOp>> {
    prop::collection::vec(
        prop_oneof![
            4 => (any::<u8>(), 1u8..32).prop_map(|(zone_pick, nslices)| ZonedOp::Write {
                zone_pick,
                nslices,
            }),
            1 => any::<u8>().prop_map(|zone_pick| ZonedOp::Reset { zone_pick }),
        ],
        1..60,
    )
}

/// A tiny config with little SLC so GC gets exercised.
fn small_cfg() -> DeviceConfig {
    let g = Geometry {
        channels: 2,
        chips_per_channel: 2,
        blocks_per_chip: 10,
        slc_blocks_per_chip: 3,
        pages_per_block: 8,
        page_bytes: 16 * 1024,
        program_unit_bytes: 64 * 1024,
        planes_per_chip: 1,
    };
    DeviceConfig::builder(g)
        .chunk_bytes(128 * 1024)
        .data_backing(true)
        .max_open_zones(8)
        .build()
        .expect("small config")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Whatever legal zoned sequence runs, reading back every written
    /// slice returns exactly what was written.
    #[test]
    fn conzone_read_back_matches_model(ops in zoned_ops()) {
        let mut dev = ConZone::new(small_cfg());
        let zone_slices = dev.zone_size() / SLICE_BYTES;
        let nzones = dev.zone_count() as u64;
        // Reference model: zone → Vec<slice tag>.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); nzones as usize];
        let mut t = SimTime::ZERO;
        let mut tag = 0u64;

        for op in &ops {
            match *op {
                ZonedOp::Write { zone_pick, nslices } => {
                    let zone = zone_pick as u64 % nzones;
                    let wp = model[zone as usize].len() as u64;
                    let n = (nslices as u64).min(zone_slices - wp);
                    if n == 0 {
                        continue;
                    }
                    // Respect the open-zone budget: skip writes that would
                    // open a seventh zone.
                    let opening = wp == 0;
                    let open_now = (0..nzones)
                        .filter(|&z| {
                            let len = model[z as usize].len() as u64;
                            len > 0 && len < zone_slices
                        })
                        .count();
                    if opening && open_now >= dev.config().max_open_zones {
                        continue;
                    }
                    let mut payload = Vec::new();
                    for i in 0..n {
                        tag += 1;
                        model[zone as usize].push(tag);
                        let _ = i;
                        payload.extend_from_slice(&slice_payload(tag));
                    }
                    let offset = zone * zone_slices * SLICE_BYTES + wp * SLICE_BYTES;
                    let c = dev
                        .submit(t, &IoRequest::write_data(offset, Bytes::from(payload)))
                        .expect("legal write accepted");
                    t = c.finished;
                }
                ZonedOp::Reset { zone_pick } => {
                    let zone = zone_pick as u64 % nzones;
                    let c = dev.reset_zone(t, ZoneId(zone)).expect("reset ok");
                    t = c.finished;
                    model[zone as usize].clear();
                }
            }
        }

        // Verify every written slice, in randomized-enough order (zone
        // major is fine — each read is an independent path).
        for (z, tags) in model.iter().enumerate() {
            for (i, &tag) in tags.iter().enumerate() {
                let offset = z as u64 * zone_slices * SLICE_BYTES + i as u64 * SLICE_BYTES;
                let c = dev
                    .submit(t, &IoRequest::read(offset, SLICE_BYTES))
                    .expect("written slice readable");
                t = c.finished;
                let got = c.data.expect("backed");
                prop_assert_eq!(
                    got.as_ref(),
                    &slice_payload(tag)[..],
                    "zone {} slice {}", z, i
                );
            }
        }

        // Counter invariants. (Note: flash bytes may be *below* host bytes
        // when resets discard data that never left the volatile buffers.)
        let c = dev.counters();
        let executed_resets = ops
            .iter()
            .filter(|op| matches!(op, ZonedOp::Reset { .. }))
            .count() as u64;
        prop_assert_eq!(c.zone_resets, executed_resets);
        prop_assert!(c.l2p_miss_rate() <= 1.0);
        prop_assert!(c.host_write_bytes.is_multiple_of(SLICE_BYTES));
    }

    /// Legacy devices preserve the last write of every sector under random
    /// overwrites, including across GC.
    #[test]
    fn legacy_overwrites_keep_latest(
        writes in prop::collection::vec((0u64..64, 1u64..8), 1..80)
    ) {
        let mut dev = LegacyDevice::new(small_cfg());
        let total_slices = dev.capacity_bytes() / SLICE_BYTES;
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut t = SimTime::ZERO;
        let mut tag = 1000u64;

        for &(start, len) in &writes {
            let start = start % total_slices;
            let len = len.min(total_slices - start);
            if len == 0 {
                continue;
            }
            let mut payload = Vec::new();
            for s in start..start + len {
                tag += 1;
                model.insert(s, tag);
                payload.extend_from_slice(&slice_payload(tag));
            }
            let c = dev
                .submit(
                    t,
                    &IoRequest::write_data(start * SLICE_BYTES, Bytes::from(payload)),
                )
                .expect("legacy write");
            t = c.finished;
        }

        for (&slice, &tag) in &model {
            let c = dev
                .submit(t, &IoRequest::read(slice * SLICE_BYTES, SLICE_BYTES))
                .expect("read back");
            t = c.finished;
            let got = c.data.expect("backed");
            prop_assert_eq!(
                got.as_ref(),
                &slice_payload(tag)[..],
                "slice {}", slice
            );
        }
    }

    /// Simulated time never runs backwards, for any device and any legal
    /// sequential workload.
    #[test]
    fn completions_monotonic(nops in 1usize..64, bs_slices in 1u64..16) {
        let mut dev = ConZone::new(small_cfg());
        let zone_slices = dev.zone_size() / SLICE_BYTES;
        let mut t = SimTime::ZERO;
        let mut written = 0u64;
        for _ in 0..nops {
            if written + bs_slices > zone_slices {
                break;
            }
            let c = dev
                .submit(t, &IoRequest::write(written * SLICE_BYTES, bs_slices * SLICE_BYTES))
                .expect("write");
            prop_assert!(c.finished >= t);
            prop_assert!(c.finished >= c.submitted);
            t = c.finished;
            written += bs_slices;
        }
        if written > 0 {
            let c = dev
                .submit(t, &IoRequest::read(0, written.min(8) * SLICE_BYTES))
                .expect("read");
            prop_assert!(c.finished > t, "reads take time");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Zone appends always land exactly at the write pointer the device
    /// reports, and the data is readable at the assigned offset.
    #[test]
    fn conzone_append_model(
        ops in prop::collection::vec((0u64..8, 1u64..6), 1..50)
    ) {
        let mut dev = ConZone::new(small_cfg());
        let zs = dev.zone_size() / SLICE_BYTES;
        let nzones = dev.zone_count() as u64;
        let mut t = SimTime::ZERO;
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut wp = vec![0u64; nzones as usize];
        let mut tag = 0u64;

        for &(zone_pick, n) in &ops {
            let zone = zone_pick % nzones;
            if wp[zone as usize] + n > zs {
                continue;
            }
            let open = (0..nzones)
                .filter(|&z| wp[z as usize] > 0 && wp[z as usize] < zs)
                .count();
            if wp[zone as usize] == 0 && open >= dev.config().max_open_zones {
                continue;
            }
            let mut buf = Vec::new();
            for i in 0..n {
                tag += 1;
                model.insert(zone * zs + wp[zone as usize] + i, tag);
                buf.extend_from_slice(&slice_payload(tag));
            }
            // Appends address the zone start; the device picks the spot.
            let c = dev
                .submit(
                    t,
                    &IoRequest::append_data(zone * zs * SLICE_BYTES, Bytes::from(buf)),
                )
                .expect("append accepted");
            t = c.finished;
            let assigned = c.assigned_offset.expect("appends assign an offset");
            prop_assert_eq!(assigned, (zone * zs + wp[zone as usize]) * SLICE_BYTES);
            wp[zone as usize] += n;
        }

        for (slice, expect) in model {
            let c = dev
                .submit(t, &IoRequest::read(slice * SLICE_BYTES, SLICE_BYTES))
                .expect("readable");
            t = c.finished;
            let got = c.data.expect("backed");
            prop_assert_eq!(got.as_ref(), &slice_payload(expect)[..]);
        }
    }
}

/// A seeded two-writer workload that keeps data in flight (sub-unit tails
/// stay buffered; zones 0 and 2 share a write buffer, so conflicts stage
/// victims in SLC) — exactly what an unclean power cut must account for.
fn crash_job(seed: u64, zone_bytes: u64) -> FioJob {
    FioJob::new(AccessPattern::SeqWrite, 2 * SLICE_BYTES)
        .zone_bytes(zone_bytes)
        .threads(2)
        .with_thread_zones(vec![vec![0], vec![2]])
        .bytes_per_thread(zone_bytes)
        .seed(seed)
        .verify(true)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For any fault schedule and power-cut instant, the recovery report
    /// balances against the data in flight at the cut, every recovered
    /// slice reads back byte-identical to what the workload wrote, and
    /// every lost slice reads as unwritten — never as stale data.
    #[test]
    fn crash_recovery_is_sound(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        program_permille in 0u32..200,
        retry_permille in 0u32..400,
        cut_us in 20u64..2000,
    ) {
        let mut cfg = small_cfg();
        cfg.fault = FaultConfig::with_rates(
            f64::from(program_permille) / 1000.0,
            0.0,
            f64::from(retry_permille) / 1000.0,
        );
        cfg.fault.seed = fault_seed;
        let mut dev = ConZone::new(cfg);
        let job = crash_job(seed, dev.zone_size());
        let cut_at = SimTime::ZERO + SimDuration::from_micros(cut_us);
        run_job_until(&mut dev, &job, cut_at).expect("workload runs to the cut");
        let verdict = power_cycle_and_verify(&mut dev, seed, cut_at)
            .expect("recovery audits pass");
        prop_assert_eq!(
            verdict.report.recovered_slices + verdict.report.lost_slices,
            verdict.in_flight_at_cut
        );
        prop_assert_eq!(
            verdict.verified_recovered_slices,
            verdict.report.recovered_slices
        );
        prop_assert_eq!(verdict.verified_lost_slices, verdict.report.lost_slices);
    }

    /// The same fault seed, workload seed and cut instant reproduce the
    /// exact same recovery report and device counters, run to run.
    #[test]
    fn seeded_crash_runs_are_deterministic(
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        cut_us in 50u64..1000,
    ) {
        let run = || {
            let mut cfg = small_cfg();
            cfg.fault = FaultConfig::with_rates(0.1, 0.0, 0.2);
            cfg.fault.seed = fault_seed;
            let mut dev = ConZone::new(cfg);
            let job = crash_job(seed, dev.zone_size());
            let cut_at = SimTime::ZERO + SimDuration::from_micros(cut_us);
            run_job_until(&mut dev, &job, cut_at).expect("workload runs");
            let verdict =
                power_cycle_and_verify(&mut dev, seed, cut_at).expect("recovery ok");
            (verdict.report, dev.counters())
        };
        let (report_a, counters_a) = run();
        let (report_b, counters_b) = run();
        prop_assert_eq!(report_a, report_b);
        prop_assert_eq!(counters_a, counters_b);
    }
}
