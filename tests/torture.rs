//! Torture test: every feature at once, verified end to end.
//!
//! One device configured with conventional zones, a pinned-strategy L2P
//! cache, an L2P persistence log and a small SLC region runs a long
//! interleaving of sequential zone writes, in-place metadata updates,
//! zone lifecycle commands, resets and reads — with full data
//! verification and invariant checks throughout.

use bytes::Bytes;
use conzone::sim::SimRng;
use conzone::types::{
    DeviceConfig, Geometry, IoRequest, SearchStrategy, SimTime, StorageDevice, ZoneId, ZoneState,
    ZonedDevice, SLICE_BYTES,
};
use conzone::ConZone;

fn torture_config() -> DeviceConfig {
    let g = Geometry {
        channels: 2,
        chips_per_channel: 2,
        blocks_per_chip: 14,
        slc_blocks_per_chip: 4,
        pages_per_block: 16,
        page_bytes: 16 * 1024,
        program_unit_bytes: 64 * 1024,
        planes_per_chip: 1,
    };
    DeviceConfig::builder(g)
        .chunk_bytes(256 * 1024)
        .data_backing(true)
        .conventional_zones(1)
        .l2p_log_entries(512)
        .search_strategy(SearchStrategy::Pinned)
        .l2p_cache_bytes(64) // 16 entries: heavy pressure
        .max_open_zones(4)
        .seed(99)
        .build()
        .expect("torture config")
}

fn payload(tag: u64) -> Bytes {
    Bytes::from(
        (0..SLICE_BYTES as usize)
            .map(|i| (tag as u8).wrapping_mul(89).wrapping_add(i as u8))
            .collect::<Vec<u8>>(),
    )
}

#[test]
fn everything_at_once() {
    let mut dev = ConZone::new(torture_config());
    let zs = dev.zone_size() / SLICE_BYTES;
    let nzones = dev.zone_count() as u64;
    let mut rng = SimRng::new(0x707);
    let mut t = SimTime::ZERO;
    let mut tag = 0u64;

    // Shadow state: per-zone write pointer (sequential zones) and
    // slice -> tag maps for both regions.
    let mut wp = vec![0u64; nzones as usize];
    let mut full = vec![false; nzones as usize];
    let mut shadow: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();

    for step in 0..4000u64 {
        match rng.below(100) {
            // 55 %: append to a random non-full sequential zone.
            0..=54 => {
                let zone = 1 + rng.below(nzones - 1);
                if full[zone as usize] || wp[zone as usize] == zs {
                    continue;
                }
                // Respect the open-zone limit by skipping when crowded.
                let open = (1..nzones)
                    .filter(|&z| wp[z as usize] > 0 && wp[z as usize] < zs && !full[z as usize])
                    .count();
                if wp[zone as usize] == 0 && open >= 4 {
                    continue;
                }
                let n = 1 + rng.below(8).min(zs - wp[zone as usize]);
                let mut buf = Vec::new();
                for i in 0..n {
                    tag += 1;
                    shadow.insert(zone * zs + wp[zone as usize] + i, tag);
                    buf.extend_from_slice(&payload(tag));
                }
                let offset = (zone * zs + wp[zone as usize]) * SLICE_BYTES;
                let c = dev
                    .submit(t, &IoRequest::write_data(offset, Bytes::from(buf)))
                    .unwrap_or_else(|e| panic!("step {step}: seq write {e}"));
                assert!(c.finished >= t, "time monotonic");
                t = c.finished;
                wp[zone as usize] += n;
            }
            // 15 %: in-place conventional update.
            55..=69 => {
                tag += 1;
                let slice = rng.below(zs);
                shadow.insert(slice, tag);
                let c = dev
                    .submit(t, &IoRequest::write_data(slice * SLICE_BYTES, payload(tag)))
                    .unwrap_or_else(|e| panic!("step {step}: conv write {e}"));
                t = c.finished;
            }
            // 20 %: read a random known slice and verify it.
            70..=89 => {
                if shadow.is_empty() {
                    continue;
                }
                let keys: Vec<u64> = shadow.keys().copied().collect();
                let slice = keys[rng.below(keys.len() as u64) as usize];
                let expect = shadow[&slice];
                let c = dev
                    .submit(t, &IoRequest::read(slice * SLICE_BYTES, SLICE_BYTES))
                    .unwrap_or_else(|e| panic!("step {step}: read slice {slice}: {e}"));
                t = c.finished;
                assert_eq!(
                    c.data.expect("backed"),
                    payload(expect),
                    "step {step}: slice {slice} content"
                );
            }
            // 5 %: lifecycle command on a random sequential zone.
            90..=94 => {
                let zone = 1 + rng.below(nzones - 1);
                let state = dev.zone_info(ZoneId(zone)).unwrap().state;
                match rng.below(3) {
                    0 if state == ZoneState::Open => {
                        t = dev.close_zone(t, ZoneId(zone)).unwrap().finished;
                    }
                    1 if state != ZoneState::Full => {
                        t = dev.finish_zone(t, ZoneId(zone)).unwrap().finished;
                        full[zone as usize] = true;
                    }
                    _ => {}
                }
            }
            // 10 %: reset a random zone (sequential or conventional).
            _ => {
                let zone = rng.below(nzones);
                let c = dev
                    .reset_zone(t, ZoneId(zone))
                    .unwrap_or_else(|e| panic!("step {step}: reset {zone}: {e}"));
                t = c.finished;
                shadow.retain(|&s, _| s / zs != zone);
                if zone > 0 {
                    wp[zone as usize] = 0;
                    full[zone as usize] = false;
                }
            }
        }
    }

    // Final full verification of every live slice.
    let mut entries: Vec<(u64, u64)> = shadow.into_iter().collect();
    entries.sort_unstable();
    for (slice, expect) in entries {
        let c = dev
            .submit(t, &IoRequest::read(slice * SLICE_BYTES, SLICE_BYTES))
            .unwrap_or_else(|e| panic!("final read {slice}: {e}"));
        t = c.finished;
        assert_eq!(c.data.expect("backed"), payload(expect), "slice {slice}");
    }

    // The run exercised everything it was meant to.
    let c = dev.counters();
    assert!(c.premature_flushes > 0, "premature flushes: {c:?}");
    assert!(c.slc_combines > 0, "combines");
    assert!(c.conventional_updates > 0, "conventional updates");
    assert!(c.l2p_log_flushes > 0, "l2p log flushes");
    assert!(c.zone_resets > 0, "resets");
    assert!(c.gc_runs > 0, "slc gc ran");
    assert!(c.l2p_misses > 0 || c.l2p_hits() > 0, "read path exercised");
}
