//! Property-based tests: the pinned-LRU cache against a reference model,
//! and mapping-table aggregation invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use crate::{L2pCache, LookupResult, LruCache, MapBitmap, MappingTable};
use conzone_types::{Lpn, MapGranularity, Ppa};

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u16, u16),
    Get(u16),
    Remove(u16),
}

fn lru_ops() -> impl Strategy<Value = Vec<LruOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (any::<u16>(), any::<u16>()).prop_map(|(k, v)| LruOp::Insert(k % 64, v)),
            2 => any::<u16>().prop_map(|k| LruOp::Get(k % 64)),
            1 => any::<u16>().prop_map(|k| LruOp::Remove(k % 64)),
        ],
        1..200,
    )
}

/// A straightforward reference LRU: Vec ordered most-recent-first.
#[derive(Default)]
struct RefLru {
    entries: Vec<(u16, u16)>, // MRU at index 0
    capacity: usize,
}

impl RefLru {
    fn insert(&mut self, k: u16, v: u16) {
        if let Some(pos) = self.entries.iter().position(|(ek, _)| *ek == k) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }
    fn get(&mut self, k: u16) -> Option<u16> {
        let pos = self.entries.iter().position(|(ek, _)| *ek == k)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(e.1)
    }
    fn remove(&mut self, k: u16) -> Option<u16> {
        let pos = self.entries.iter().position(|(ek, _)| *ek == k)?;
        Some(self.entries.remove(pos).1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Without pinning, `LruCache` behaves exactly like a textbook LRU.
    #[test]
    fn lru_matches_reference(ops in lru_ops(), cap in 1usize..16) {
        let mut real = LruCache::new(cap);
        let mut reference = RefLru { capacity: cap, ..Default::default() };
        for op in ops {
            match op {
                LruOp::Insert(k, v) => {
                    real.insert(k, v, false);
                    reference.insert(k, v);
                }
                LruOp::Get(k) => {
                    prop_assert_eq!(real.get(&k).copied(), reference.get(k), "get {}", k);
                }
                LruOp::Remove(k) => {
                    prop_assert_eq!(real.remove(&k), reference.remove(k), "remove {}", k);
                }
            }
            prop_assert_eq!(real.len(), reference.entries.len());
            prop_assert!(real.len() <= cap);
        }
        // Final residency agrees exactly.
        for (k, v) in &reference.entries {
            prop_assert_eq!(real.peek(k), Some(v));
        }
    }

    /// Pinned entries are never evicted, whatever the churn.
    #[test]
    fn pinned_entries_survive(churn in prop::collection::vec(any::<u16>(), 1..300), cap in 2usize..16) {
        let mut cache = LruCache::new(cap);
        cache.insert(u16::MAX, 1, true);
        for k in churn {
            cache.insert(k % 1000, 0, false);
            prop_assert!(cache.contains(&u16::MAX));
        }
    }

    /// The mapping table's aggregation bits always describe reality:
    /// a chunk entry implies every page of the chunk is mapped and
    /// canonical; unmapping any page breaks future aggregation.
    #[test]
    fn aggregation_soundness(
        mapped in prop::collection::vec((0u64..64, any::<bool>()), 1..80)
    ) {
        let mut table = MappingTable::new(64, 8, 32);
        for &(lpn, canonical) in &mapped {
            table.set(Lpn(lpn), Ppa(1000 + lpn), canonical);
        }
        for chunk in 0..8u64 {
            let start = chunk * 8;
            let complete = (start..start + 8).all(|l| {
                table.get(Lpn(l)).map(|e| e.canonical).unwrap_or(false)
            });
            let aggregated = table.try_aggregate_chunk(Lpn(start));
            prop_assert_eq!(aggregated, complete, "chunk {}", chunk);
            if aggregated {
                for l in start..start + 8 {
                    prop_assert!(
                        table.granularity_of(Lpn(l)) >= Some(MapGranularity::Chunk)
                    );
                }
            }
        }
    }

    /// The L2P cache and the map-bit bitmap agree with the table after an
    /// arbitrary interleaving of inserts and invalidations.
    #[test]
    fn cache_and_bitmap_track_table(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..120)
    ) {
        let mut table = MappingTable::new(64, 8, 32);
        let mut cache = L2pCache::new(128, 8, 32);
        let mut bitmap = MapBitmap::new(64);
        let mut shadow: HashMap<u64, bool> = HashMap::new(); // lpn -> mapped

        for (lpn, write) in ops {
            if write {
                // A write into an aggregated range demotes the whole range
                // (MappingTable::set documents this); a correct client
                // mirrors that in its bitmap before recording the page.
                if table.granularity_of(Lpn(lpn)) > Some(MapGranularity::Page) {
                    let start = lpn / 8 * 8;
                    bitmap.set_range(Lpn(start), 8, MapGranularity::Page);
                }
                table.set(Lpn(lpn), Ppa(lpn), true);
                bitmap.set(Lpn(lpn), MapGranularity::Page);
                cache.insert(Lpn(lpn), MapGranularity::Page, false);
                shadow.insert(lpn, true);
                if table.try_aggregate_chunk(Lpn(lpn)) {
                    let start = lpn / 8 * 8;
                    bitmap.set_range(Lpn(start), 8, MapGranularity::Chunk);
                }
            } else {
                // Unmap demotes covering aggregations too.
                if table.granularity_of(Lpn(lpn)) > Some(MapGranularity::Page) {
                    let start = lpn / 8 * 8;
                    bitmap.set_range(Lpn(start), 8, MapGranularity::Page);
                }
                table.unmap(Lpn(lpn));
                cache.invalidate_page(Lpn(lpn));
                bitmap.set(Lpn(lpn), MapGranularity::Page);
                shadow.insert(lpn, false);
            }
        }
        for (lpn, mapped) in shadow {
            if mapped {
                let g = table.granularity_of(Lpn(lpn)).expect("mapped");
                prop_assert_eq!(bitmap.get(Lpn(lpn)), g, "bitmap mirrors table at {}", lpn);
            } else {
                prop_assert!(table.get(Lpn(lpn)).is_none());
                // The cache may not claim coverage of an unmapped page at
                // page granularity (chunk/zone coverage would have been
                // torn down by invalidate_page too).
                prop_assert_eq!(cache.lookup(Lpn(lpn)) == LookupResult::Miss, true);
            }
        }
    }
}
