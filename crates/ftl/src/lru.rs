//! An intrusive-list LRU cache with entry pinning.
//!
//! The L2P cache evicts by LRU (paper §III-C); the pinned-aggregate design
//! of §IV-D additionally keeps chunk/zone entries resident. This generic
//! cache implements both: pinned entries are never chosen as eviction
//! victims.

// xtask-lint: allow(hash-collections) — keyed O(1) index lookups only; the
// recency order lives in the explicit linked list and is never taken from
// map iteration, so hashing cannot leak into sim-visible behaviour.
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    pinned: bool,
    prev: usize,
    next: usize,
}

/// Outcome of an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Entry stored without displacing anything.
    Stored,
    /// Entry stored after evicting one LRU victim.
    Evicted,
    /// Entry replaced an existing entry with the same key.
    Updated,
    /// Cache full of pinned entries; a non-pinned insert was dropped.
    Rejected,
    /// A pinned insert exceeded capacity (all residents pinned); it was
    /// stored anyway and the cache is over budget.
    OverCapacity,
}

/// LRU cache with per-entry pinning.
///
/// ```
/// use conzone_ftl::LruCache;
///
/// let mut c = LruCache::new(2);
/// c.insert('a', 1, false);
/// c.insert('b', 2, false);
/// c.get(&'a'); // 'a' becomes most recent
/// c.insert('c', 3, false); // evicts 'b'
/// assert!(c.contains(&'a') && c.contains(&'c') && !c.contains(&'b'));
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    // xtask-lint: allow(hash-collections) — keyed lookups only, never iterated
    map: HashMap<K, usize>,
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl<K: Hash + Eq + Copy, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        assert!(capacity > 0, "cache capacity must be non-zero");
        LruCache {
            // xtask-lint: allow(hash-collections) — keyed lookups only
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    /// Number of resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// LRU evictions performed so far.
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `key` is resident (does not touch recency).
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        // xtask-lint: allow(unwrap-expect, hot-path-effects) — linked-list integrity: every index
        // reachable from the list or the map points at a live node by construction.
        self.nodes[idx].as_ref().expect("linked node must be live")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<K, V> {
        // xtask-lint: allow(unwrap-expect, hot-path-effects) — same linked-list integrity invariant
        self.nodes[idx].as_mut().expect("linked node must be live")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.node(idx).value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.node(idx).value)
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        // xtask-lint: allow(unwrap-expect, hot-path-effects) — the map only holds live indices
        let node = self.nodes[idx].take().expect("mapped node must be live");
        self.free.push(idx);
        Some(node.value)
    }

    /// Finds the least-recently-used non-pinned entry, if any.
    fn eviction_victim(&self) -> Option<usize> {
        let mut idx = self.tail;
        while idx != NIL {
            let n = self.node(idx);
            if !n.pinned {
                return Some(idx);
            }
            idx = n.prev;
        }
        None
    }

    /// Inserts `key → value`. An existing entry is updated in place
    /// (retaining the stronger of the two pin flags). When the cache is
    /// full, the LRU non-pinned entry is evicted; if every resident is
    /// pinned, a non-pinned insert is rejected while a pinned insert is
    /// stored over capacity.
    pub fn insert(&mut self, key: K, value: V, pinned: bool) -> InsertOutcome {
        if let Some(&idx) = self.map.get(&key) {
            {
                let n = self.node_mut(idx);
                n.value = value;
                n.pinned |= pinned;
            }
            self.unlink(idx);
            self.push_front(idx);
            return InsertOutcome::Updated;
        }
        let mut outcome = InsertOutcome::Stored;
        if self.map.len() >= self.capacity {
            match self.eviction_victim() {
                Some(victim) => {
                    let vkey = self.node(victim).key;
                    self.remove(&vkey);
                    self.evictions += 1;
                    outcome = InsertOutcome::Evicted;
                }
                None if pinned => outcome = InsertOutcome::OverCapacity,
                None => return InsertOutcome::Rejected,
            }
        }
        let node = Node {
            key,
            value,
            pinned,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Some(node);
                i
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        outcome
    }

    /// Iterates over resident keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Removes every key for which `pred` returns true; returns how many
    /// were removed.
    // xtask-effect: cold — aggregation-eviction slow path: runs when a covering
    // entry is promoted, not per IO, and the doomed-key list must be collected
    // before mutating the map
    pub fn retain_not<F: FnMut(&K) -> bool>(&mut self, mut pred: F) -> usize {
        let doomed: Vec<K> = self.map.keys().filter(|k| pred(k)).copied().collect();
        let n = doomed.len();
        for k in doomed {
            self.remove(&k);
        }
        n
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_order_eviction() {
        let mut c = LruCache::new(3);
        for (k, v) in [('a', 1), ('b', 2), ('c', 3)] {
            assert_eq!(c.insert(k, v, false), InsertOutcome::Stored);
        }
        c.get(&'a');
        assert_eq!(c.insert('d', 4, false), InsertOutcome::Evicted);
        // 'b' was LRU after 'a' was touched.
        assert!(!c.contains(&'b'));
        assert!(c.contains(&'a') && c.contains(&'c') && c.contains(&'d'));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn update_in_place_keeps_len() {
        let mut c = LruCache::new(2);
        c.insert('a', 1, false);
        assert_eq!(c.insert('a', 9, false), InsertOutcome::Updated);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&'a'), Some(&9));
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut c = LruCache::new(2);
        c.insert('p', 0, true);
        c.insert('a', 1, false);
        c.insert('b', 2, false); // evicts 'a', never 'p'
        assert!(c.contains(&'p'));
        assert!(!c.contains(&'a'));
        assert!(c.contains(&'b'));
    }

    #[test]
    fn all_pinned_rejects_unpinned_but_accepts_pinned() {
        let mut c = LruCache::new(2);
        c.insert(1, (), true);
        c.insert(2, (), true);
        assert_eq!(c.insert(3, (), false), InsertOutcome::Rejected);
        assert!(!c.contains(&3));
        assert_eq!(c.insert(4, (), true), InsertOutcome::OverCapacity);
        assert!(c.contains(&4));
        assert_eq!(c.len(), 3); // over budget by one, visible to callers
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(2);
        c.insert('a', 1, false);
        assert_eq!(c.remove(&'a'), Some(1));
        assert_eq!(c.remove(&'a'), None);
        c.insert('b', 2, false);
        c.insert('c', 3, false);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn retain_not_removes_matching() {
        let mut c = LruCache::new(10);
        for i in 0..10 {
            c.insert(i, i, false);
        }
        let removed = c.retain_not(|k| *k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 5);
        assert!(c.contains(&1) && !c.contains(&2));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.insert(1, 1, true);
        c.clear();
        assert!(c.is_empty());
        c.insert(2, 2, false);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c = LruCache::new(64);
        for i in 0..10_000u64 {
            c.insert(i % 257, i, false);
            assert!(c.len() <= 64);
        }
        // The most recent keys must be resident.
        assert!(c.contains(&(9_999u64 % 257)));
    }
}
