//! Miss-path fetch accounting for the three search strategies (paper
//! §III-C and the §IV-D case study).
//!
//! On an L2P cache miss the device must fetch mapping entries from flash.
//! How many fetches depends on how the aggregation level of the address is
//! discovered:
//!
//! * **Bitmap** — the in-SRAM [`MapBitmap`](crate::MapBitmap) already knows
//!   the level: always one fetch.
//! * **Multiple** — probe the table zone-first: fetch the LZA entry and
//!   check its map bits; on failure fetch the LCA entry; then the LPA
//!   entry. One, two or three fetches.
//! * **Pinned** — aggregated entries are pinned in the cache when
//!   generated, so a miss can only be page-granularity: one fetch.

use conzone_types::{MapGranularity, SearchStrategy};

/// Number of mapping-table flash fetches an L2P miss costs, given the
/// actual aggregation level of the missed address.
///
/// ```
/// use conzone_ftl::mapping_fetches;
/// use conzone_types::{MapGranularity, SearchStrategy};
///
/// assert_eq!(mapping_fetches(SearchStrategy::Multiple, MapGranularity::Page), 3);
/// assert_eq!(mapping_fetches(SearchStrategy::Bitmap, MapGranularity::Page), 1);
/// ```
pub fn mapping_fetches(strategy: SearchStrategy, actual: MapGranularity) -> u32 {
    match strategy {
        SearchStrategy::Bitmap | SearchStrategy::Pinned => 1,
        SearchStrategy::Multiple => match actual {
            MapGranularity::Zone => 1,
            MapGranularity::Chunk => 2,
            MapGranularity::Page => 3,
        },
    }
}

/// Whether a strategy pins aggregated entries on generation.
pub fn pins_aggregates(strategy: SearchStrategy) -> bool {
    matches!(strategy, SearchStrategy::Pinned)
}

/// SRAM overhead in bytes a strategy adds beyond the L2P cache itself.
pub fn sram_overhead_bytes(strategy: SearchStrategy, capacity_slices: u64) -> u64 {
    match strategy {
        SearchStrategy::Bitmap => crate::MapBitmap::overhead_for(capacity_slices),
        SearchStrategy::Multiple | SearchStrategy::Pinned => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_probes_descend() {
        assert_eq!(
            mapping_fetches(SearchStrategy::Multiple, MapGranularity::Zone),
            1
        );
        assert_eq!(
            mapping_fetches(SearchStrategy::Multiple, MapGranularity::Chunk),
            2
        );
        assert_eq!(
            mapping_fetches(SearchStrategy::Multiple, MapGranularity::Page),
            3
        );
    }

    #[test]
    fn bitmap_and_pinned_always_one() {
        for g in [
            MapGranularity::Page,
            MapGranularity::Chunk,
            MapGranularity::Zone,
        ] {
            assert_eq!(mapping_fetches(SearchStrategy::Bitmap, g), 1);
            assert_eq!(mapping_fetches(SearchStrategy::Pinned, g), 1);
        }
    }

    #[test]
    fn only_pinned_pins() {
        assert!(pins_aggregates(SearchStrategy::Pinned));
        assert!(!pins_aggregates(SearchStrategy::Bitmap));
        assert!(!pins_aggregates(SearchStrategy::Multiple));
    }

    #[test]
    fn only_bitmap_costs_sram() {
        assert!(sram_overhead_bytes(SearchStrategy::Bitmap, 1 << 20) > 0);
        assert_eq!(sram_overhead_bytes(SearchStrategy::Multiple, 1 << 20), 0);
        assert_eq!(sram_overhead_bytes(SearchStrategy::Pinned, 1 << 20), 0);
    }
}
