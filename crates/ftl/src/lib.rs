//! Flash-translation-layer building blocks for the ConZone emulator.
//!
//! Implements the read-path machinery of paper §III-C:
//!
//! * [`MappingTable`] — the page-granularity L2P table whose two reserved
//!   *map bits* record page / chunk / zone aggregation, with the
//!   canonical-placement rule that gates aggregation;
//! * [`L2pCache`] — the limited volatile cache with LZA → LCA → LPA lookup,
//!   LRU replacement and optional pinning of aggregated entries;
//! * [`MapBitmap`] — the in-SRAM map-bit mirror of the Bitmap strategy;
//! * [`mapping_fetches`] — the per-miss flash-fetch cost of each
//!   [`SearchStrategy`](conzone_types::SearchStrategy);
//! * [`LruCache`] — the generic pinned-LRU underlying the L2P cache (also
//!   used by the Legacy baseline's prefetching cache).
//!
//! ```
//! use conzone_ftl::{L2pCache, LookupResult, MappingTable};
//! use conzone_types::{Lpn, MapGranularity, Ppa};
//!
//! let mut table = MappingTable::new(64, 4, 16);
//! let mut cache = L2pCache::new(8, 4, 16);
//! for i in 0..4 {
//!     table.set(Lpn(i), Ppa(100 + i), true);
//! }
//! assert!(table.try_aggregate_chunk(Lpn(0)));
//! cache.insert(Lpn(0), MapGranularity::Chunk, false);
//! assert_eq!(cache.lookup(Lpn(3)), LookupResult::Hit(MapGranularity::Chunk));
//! ```

// Unit tests assert freely; the `clippy::unwrap_used` deny (Cargo.toml
// `[lints]`) is meant for library code reachable from the simulator.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitmap;
mod cache;
mod lru;
mod mapping;
mod strategy;

pub use bitmap::MapBitmap;
pub use cache::{CacheKey, L2pCache, LookupResult};
pub use lru::{InsertOutcome, LruCache};
pub use mapping::{MapEntry, MappingTable};
pub use strategy::{mapping_fetches, pins_aggregates, sram_overhead_bytes};

#[cfg(test)]
mod proptests;
