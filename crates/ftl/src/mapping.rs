//! The page-granularity L2P mapping table with hybrid-aggregation map bits.
//!
//! Per paper §III-C, "the FTL still uses page mapping to record all mapping
//! information"; two reserved bits in each entry record whether the entry
//! belongs to an aggregated chunk- or zone-level run. Aggregation is
//! possible only for data placed at its *canonical* reserved physical
//! location (the per-zone reserved normal blocks plus the reserved SLC
//! patch pages of §III-E); data staged in ordinary SLC buffer blocks can
//! never aggregate because its physical contiguity is not guaranteed.

use conzone_types::{ChunkId, Lpn, MapGranularity, Ppa, ZoneId};

/// One decoded mapping-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapEntry {
    /// Physical slice holding the logical page.
    pub ppa: Ppa,
    /// Aggregation level recorded in the entry's map bits.
    pub granularity: MapGranularity,
    /// Whether the data sits at its canonical reserved location.
    pub canonical: bool,
}

/// The full L2P mapping table.
///
/// The table is held in emulator RAM; its *flash residency* is modelled by
/// the timed mapping fetches the device performs on L2P cache misses.
#[derive(Debug)]
pub struct MappingTable {
    /// `ppas[lpn]` — physical address, or `None` while unmapped.
    ppas: Vec<Option<Ppa>>,
    /// Two map bits + canonical flag per entry, packed into a byte.
    flags: Vec<u8>,
    chunk_slices: u64,
    zone_slices: u64,
}

const CANONICAL_FLAG: u8 = 0b100;

impl MappingTable {
    /// Creates an empty table for `capacity_slices` logical pages.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_slices` divides `zone_slices` and both are
    /// non-zero.
    pub fn new(capacity_slices: u64, chunk_slices: u64, zone_slices: u64) -> MappingTable {
        assert!(chunk_slices > 0 && zone_slices > 0);
        assert_eq!(
            zone_slices % chunk_slices,
            0,
            "chunks must tile zones exactly"
        );
        MappingTable {
            ppas: vec![None; capacity_slices as usize],
            flags: vec![0; capacity_slices as usize],
            chunk_slices,
            zone_slices,
        }
    }

    /// Logical capacity in slices.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.ppas.len() as u64
    }

    /// Slices per chunk.
    #[inline]
    pub fn chunk_slices(&self) -> u64 {
        self.chunk_slices
    }

    /// Slices per zone.
    #[inline]
    pub fn zone_slices(&self) -> u64 {
        self.zone_slices
    }

    /// The chunk containing a logical page.
    #[inline]
    pub fn chunk_of(&self, lpn: Lpn) -> ChunkId {
        ChunkId(lpn.raw() / self.chunk_slices)
    }

    /// The zone containing a logical page.
    #[inline]
    pub fn zone_of(&self, lpn: Lpn) -> ZoneId {
        ZoneId(lpn.raw() / self.zone_slices)
    }

    /// Looks up one logical page.
    // xtask-effect: hot_path
    pub fn get(&self, lpn: Lpn) -> Option<MapEntry> {
        let idx = lpn.raw() as usize;
        let ppa = (*self.ppas.get(idx)?)?;
        let flags = self.flags[idx];
        Some(MapEntry {
            ppa,
            granularity: MapGranularity::from_bits(flags & 0b11)
                // xtask-lint: allow(unwrap-expect, hot-path-effects) — set/unmap
                // only write the three valid granularities, so the stored bits
                // always decode.
                .expect("table never stores the reserved bit pattern"),
            canonical: flags & CANONICAL_FLAG != 0,
        })
    }

    /// Installs or updates one entry at page granularity. `canonical`
    /// records whether `ppa` is the slice's reserved location, which gates
    /// later aggregation.
    ///
    /// Updating a page that belonged to an aggregated chunk or zone breaks
    /// that aggregation, so the covering run is demoted back to page map
    /// bits (keeping the "aggregation level is uniform across its range"
    /// invariant that the cache and bitmap rely on).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is beyond the table capacity.
    // xtask-effect: hot_path
    pub fn set(&mut self, lpn: Lpn, ppa: Ppa, canonical: bool) {
        let idx = lpn.raw() as usize;
        // xtask-lint: allow(hot-path-effects) — documented precondition: a beyond-capacity lpn is a harness bug and aborting is the correct response
        assert!(idx < self.ppas.len(), "lpn {lpn} beyond capacity");
        match MapGranularity::from_bits(self.flags[idx] & 0b11) {
            Some(MapGranularity::Chunk) => {
                let start = lpn.raw() / self.chunk_slices * self.chunk_slices;
                self.set_range_bits(start, self.chunk_slices, MapGranularity::Page);
            }
            Some(MapGranularity::Zone) => {
                let start = lpn.raw() / self.zone_slices * self.zone_slices;
                self.set_range_bits(start, self.zone_slices, MapGranularity::Page);
            }
            _ => {}
        }
        self.ppas[idx] = Some(ppa);
        self.flags[idx] =
            MapGranularity::Page.to_bits() | if canonical { CANONICAL_FLAG } else { 0 };
    }

    /// Moves an entry to a new physical address, preserving its map bits
    /// and canonical flag (GC migration relocates data without changing
    /// its aggregation state).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is unmapped.
    pub fn relocate(&mut self, lpn: Lpn, ppa: Ppa) {
        let idx = lpn.raw() as usize;
        // xtask-lint: allow(hot-path-effects) — documented precondition: relocating an unmapped lpn is a GC bug and aborting is the correct response
        assert!(
            idx < self.ppas.len() && self.ppas[idx].is_some(),
            "relocating unmapped lpn {lpn}"
        );
        self.ppas[idx] = Some(ppa);
    }

    /// Unmaps one entry (host overwrote or the zone was reset). Like
    /// [`MappingTable::set`], punching a hole into an aggregated range
    /// demotes the covering run back to page bits.
    pub fn unmap(&mut self, lpn: Lpn) {
        let idx = lpn.raw() as usize;
        if idx < self.ppas.len() {
            match MapGranularity::from_bits(self.flags[idx] & 0b11) {
                Some(MapGranularity::Chunk) => {
                    let start = lpn.raw() / self.chunk_slices * self.chunk_slices;
                    self.set_range_bits(start, self.chunk_slices, MapGranularity::Page);
                }
                Some(MapGranularity::Zone) => {
                    let start = lpn.raw() / self.zone_slices * self.zone_slices;
                    self.set_range_bits(start, self.zone_slices, MapGranularity::Page);
                }
                _ => {}
            }
            self.ppas[idx] = None;
            self.flags[idx] = 0;
        }
    }

    /// Unmaps every entry of a zone.
    pub fn unmap_zone(&mut self, zone: ZoneId) {
        let start = zone.raw() * self.zone_slices;
        for lpn in start..(start + self.zone_slices).min(self.capacity()) {
            self.unmap(Lpn(lpn));
        }
    }

    fn range_aggregatable(&self, start: u64, len: u64) -> bool {
        let end = (start + len).min(self.capacity());
        if end - start < len {
            return false;
        }
        (start..end).all(|i| {
            self.ppas[i as usize].is_some() && self.flags[i as usize] & CANONICAL_FLAG != 0
        })
    }

    fn set_range_bits(&mut self, start: u64, len: u64, granularity: MapGranularity) {
        for i in start..start + len {
            let f = &mut self.flags[i as usize];
            *f = (*f & !0b11) | granularity.to_bits();
        }
    }

    /// Attempts to aggregate the chunk containing `lpn`: succeeds when every
    /// page of the chunk is mapped canonically (paper §III-C ②). Returns
    /// whether the chunk is now (or already was) aggregated at chunk level
    /// or better.
    pub fn try_aggregate_chunk(&mut self, lpn: Lpn) -> bool {
        let chunk = self.chunk_of(lpn);
        let start = chunk.raw() * self.chunk_slices;
        if let Some(e) = self.get(Lpn(start)) {
            if e.granularity >= MapGranularity::Chunk {
                return true;
            }
        }
        if self.range_aggregatable(start, self.chunk_slices) {
            self.set_range_bits(start, self.chunk_slices, MapGranularity::Chunk);
            true
        } else {
            false
        }
    }

    /// Attempts to aggregate the zone containing `lpn`: succeeds when every
    /// page of the zone is mapped canonically. Returns whether the zone is
    /// now aggregated.
    pub fn try_aggregate_zone(&mut self, lpn: Lpn) -> bool {
        let zone = self.zone_of(lpn);
        let start = zone.raw() * self.zone_slices;
        if let Some(e) = self.get(Lpn(start)) {
            if e.granularity == MapGranularity::Zone {
                return true;
            }
        }
        if self.range_aggregatable(start, self.zone_slices) {
            self.set_range_bits(start, self.zone_slices, MapGranularity::Zone);
            true
        } else {
            false
        }
    }

    /// The aggregation level currently recorded for `lpn` (`None` if
    /// unmapped).
    pub fn granularity_of(&self, lpn: Lpn) -> Option<MapGranularity> {
        self.get(lpn).map(|e| e.granularity)
    }

    /// Number of mapped entries (for tests and reports).
    pub fn mapped_count(&self) -> u64 {
        self.ppas.iter().filter(|p| p.is_some()).count() as u64
    }

    /// Mapped slices inside one zone — the utilization column of the
    /// per-zone heatmap snapshot.
    pub fn zone_mapped_slices(&self, zone: ZoneId) -> u64 {
        let start = (zone.raw() * self.zone_slices).min(self.ppas.len() as u64);
        let end = (start + self.zone_slices).min(self.ppas.len() as u64);
        self.ppas[start as usize..end as usize]
            .iter()
            .filter(|p| p.is_some())
            .count() as u64
    }

    /// Iterates every mapped `(lpn, entry)` pair in logical-page order
    /// (used by the debug invariant checker and reports).
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Lpn, MapEntry)> + '_ {
        (0..self.ppas.len()).filter_map(move |i| {
            let lpn = Lpn(i as u64);
            self.get(lpn).map(|e| (lpn, e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MappingTable {
        // 2 zones of 16 slices, chunks of 4.
        MappingTable::new(32, 4, 16)
    }

    #[test]
    fn set_get_unmap() {
        let mut t = table();
        assert!(t.get(Lpn(3)).is_none());
        t.set(Lpn(3), Ppa(77), true);
        let e = t.get(Lpn(3)).unwrap();
        assert_eq!(e.ppa, Ppa(77));
        assert_eq!(e.granularity, MapGranularity::Page);
        assert!(e.canonical);
        t.unmap(Lpn(3));
        assert!(t.get(Lpn(3)).is_none());
    }

    #[test]
    fn chunk_aggregation_requires_all_canonical() {
        let mut t = table();
        for i in 0..3 {
            t.set(Lpn(i), Ppa(100 + i), true);
        }
        assert!(!t.try_aggregate_chunk(Lpn(0)), "incomplete chunk");
        t.set(Lpn(3), Ppa(103), false); // staged in SLC: not canonical
        assert!(!t.try_aggregate_chunk(Lpn(0)), "non-canonical page");
        t.set(Lpn(3), Ppa(103), true);
        assert!(t.try_aggregate_chunk(Lpn(0)));
        for i in 0..4 {
            assert_eq!(t.granularity_of(Lpn(i)), Some(MapGranularity::Chunk));
        }
        // Pages outside the chunk are untouched.
        assert_eq!(t.granularity_of(Lpn(4)), None);
    }

    #[test]
    fn zone_aggregation_covers_all_chunks() {
        let mut t = table();
        for i in 16..32 {
            t.set(Lpn(i), Ppa(200 + i), true);
        }
        assert!(t.try_aggregate_zone(Lpn(20)));
        for i in 16..32 {
            assert_eq!(t.granularity_of(Lpn(i)), Some(MapGranularity::Zone));
        }
        // Re-aggregating is idempotent.
        assert!(t.try_aggregate_zone(Lpn(16)));
    }

    #[test]
    fn page_update_demotes_broken_aggregation() {
        let mut t = table();
        for i in 0..4 {
            t.set(Lpn(i), Ppa(10 + i), true);
        }
        t.try_aggregate_chunk(Lpn(0));
        // An update breaks the chunk's contiguity: every covered entry
        // demotes back to page bits, so a later try_aggregate re-checks
        // the whole range instead of trusting a stale fast path.
        t.set(Lpn(2), Ppa(99), false);
        assert_eq!(t.granularity_of(Lpn(2)), Some(MapGranularity::Page));
        assert_eq!(t.granularity_of(Lpn(1)), Some(MapGranularity::Page));
        assert!(!t.try_aggregate_chunk(Lpn(0)), "non-canonical page blocks");
        t.set(Lpn(2), Ppa(99), true);
        assert!(
            t.try_aggregate_chunk(Lpn(0)),
            "repaired chunk re-aggregates"
        );
    }

    #[test]
    fn unmap_zone_clears_range() {
        let mut t = table();
        for i in 0..32 {
            t.set(Lpn(i), Ppa(i), true);
        }
        t.unmap_zone(ZoneId(1));
        assert_eq!(t.mapped_count(), 16);
        assert!(t.get(Lpn(16)).is_none());
        assert!(t.get(Lpn(15)).is_some());
    }

    #[test]
    fn chunk_and_zone_of() {
        let t = table();
        assert_eq!(t.chunk_of(Lpn(5)), ChunkId(1));
        assert_eq!(t.zone_of(Lpn(17)), ZoneId(1));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn set_out_of_range_panics() {
        table().set(Lpn(32), Ppa(0), true);
    }

    #[test]
    fn relocate_preserves_flags() {
        let mut t = table();
        for i in 0..4 {
            t.set(Lpn(i), Ppa(10 + i), true);
        }
        t.try_aggregate_chunk(Lpn(0));
        t.relocate(Lpn(2), Ppa(500));
        let e = t.get(Lpn(2)).unwrap();
        assert_eq!(e.ppa, Ppa(500));
        assert_eq!(e.granularity, MapGranularity::Chunk);
        assert!(e.canonical);
    }

    #[test]
    #[should_panic(expected = "relocating unmapped")]
    fn relocate_unmapped_panics() {
        table().relocate(Lpn(0), Ppa(1));
    }
}

#[cfg(test)]
mod demotion_tests {
    use super::*;

    #[test]
    fn unmap_demotes_covering_aggregation() {
        let mut t = MappingTable::new(32, 4, 16);
        for i in 0..16 {
            t.set(Lpn(i), Ppa(i), true);
        }
        assert!(t.try_aggregate_zone(Lpn(0)));
        t.unmap(Lpn(7));
        assert_eq!(t.get(Lpn(7)), None);
        for i in (0..16).filter(|i| *i != 7) {
            assert_eq!(
                t.granularity_of(Lpn(i)),
                Some(MapGranularity::Page),
                "lpn {i} demoted"
            );
        }
        // The fast path cannot claim a stale aggregation afterwards.
        assert!(!t.try_aggregate_chunk(Lpn(4)), "hole blocks chunk 1");
        assert!(t.try_aggregate_chunk(Lpn(0)), "chunk 0 re-aggregates");
    }
}
