//! The in-SRAM map-bit bitmap of the Bitmap search strategy (paper §III-C).
//!
//! To know how many flash fetches an L2P miss needs, the device must learn
//! the aggregation level of the target address *before* reading the mapping
//! table. The performance-optimised option mirrors every entry's two map
//! bits in SRAM — ~0.006 % of capacity (64 MB for 1 TB, which the paper
//! deems unacceptable for consumer devices but uses as the BITMAP baseline
//! of §IV-D).

use conzone_types::{Lpn, MapGranularity};

/// Two map bits per logical page, packed 4-per-byte.
#[derive(Debug, Clone)]
pub struct MapBitmap {
    bits: Vec<u8>,
    capacity: u64,
}

impl MapBitmap {
    /// Creates a bitmap for `capacity_slices` logical pages, all at page
    /// granularity.
    pub fn new(capacity_slices: u64) -> MapBitmap {
        MapBitmap {
            bits: vec![0; capacity_slices.div_ceil(4) as usize],
            capacity: capacity_slices,
        }
    }

    /// SRAM the bitmap occupies, in bytes (the paper's overhead argument).
    #[inline]
    pub fn overhead_bytes(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Records the aggregation level of one page.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn set(&mut self, lpn: Lpn, granularity: MapGranularity) {
        // xtask-lint: allow(hot-path-effects) — bounds invariant: an out-of-range lpn is a harness bug and aborting is the correct response
        assert!(lpn.raw() < self.capacity, "lpn {lpn} out of range");
        let idx = (lpn.raw() / 4) as usize;
        let shift = (lpn.raw() % 4) * 2;
        self.bits[idx] = (self.bits[idx] & !(0b11 << shift)) | (granularity.to_bits() << shift);
    }

    /// Records the aggregation level of a run of pages.
    pub fn set_range(&mut self, start: Lpn, count: u64, granularity: MapGranularity) {
        for i in 0..count {
            self.set(start.offset(i), granularity);
        }
    }

    /// Reads the aggregation level of one page.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn get(&self, lpn: Lpn) -> MapGranularity {
        // xtask-lint: allow(hot-path-effects) — bounds invariant: an out-of-range lpn is a harness bug and aborting is the correct response
        assert!(lpn.raw() < self.capacity, "lpn {lpn} out of range");
        let idx = (lpn.raw() / 4) as usize;
        let shift = (lpn.raw() % 4) * 2;
        MapGranularity::from_bits((self.bits[idx] >> shift) & 0b11)
            // xtask-lint: allow(unwrap-expect, hot-path-effects) — set_range
            // rejects the reserved bit pattern, so a stored pair always decodes.
            .expect("bitmap never stores the reserved pattern")
    }

    /// Static overhead for a device of `capacity_slices` pages, without
    /// building the bitmap.
    pub fn overhead_for(capacity_slices: u64) -> u64 {
        capacity_slices.div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_independent_pages() {
        let mut b = MapBitmap::new(10);
        b.set(Lpn(0), MapGranularity::Zone);
        b.set(Lpn(1), MapGranularity::Chunk);
        b.set(Lpn(2), MapGranularity::Page);
        assert_eq!(b.get(Lpn(0)), MapGranularity::Zone);
        assert_eq!(b.get(Lpn(1)), MapGranularity::Chunk);
        assert_eq!(b.get(Lpn(2)), MapGranularity::Page);
        assert_eq!(b.get(Lpn(3)), MapGranularity::Page, "default is page");
        // Overwrite works.
        b.set(Lpn(0), MapGranularity::Page);
        assert_eq!(b.get(Lpn(0)), MapGranularity::Page);
    }

    #[test]
    fn set_range_covers_run() {
        let mut b = MapBitmap::new(100);
        b.set_range(Lpn(10), 20, MapGranularity::Chunk);
        assert_eq!(b.get(Lpn(9)), MapGranularity::Page);
        assert_eq!(b.get(Lpn(10)), MapGranularity::Chunk);
        assert_eq!(b.get(Lpn(29)), MapGranularity::Chunk);
        assert_eq!(b.get(Lpn(30)), MapGranularity::Page);
    }

    #[test]
    fn overhead_matches_paper_scale() {
        // 1 TB at 4 KiB pages = 268_435_456 pages → 64 MiB of SRAM.
        let pages = 1_u64 << 40 >> 12;
        assert_eq!(MapBitmap::overhead_for(pages), 64 * 1024 * 1024);
        // Our 1.5 GB evaluation device: ~96 KiB, i.e. ~0.006 %.
        let b = MapBitmap::new(393_216);
        assert_eq!(b.overhead_bytes(), 98_304);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        MapBitmap::new(4).get(Lpn(4));
    }
}
