//! The volatile L2P cache (paper §III-C).
//!
//! Cache entries carry three domains — logical address, mapping granularity
//! and physical address — and lookups translate the logical address into
//! LZA, LCA and LPA, matching each in turn. Eviction is LRU; the pinned
//! configuration of §IV-D keeps aggregated entries resident and evicts the
//! entries they cover.

use conzone_types::{Lpn, MapGranularity};

use crate::lru::{InsertOutcome, LruCache};

/// Cache key: the aggregation level plus the aligned index at that level
/// (LZA, LCA or LPA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Aggregation level of the entry.
    pub granularity: MapGranularity,
    /// Zone / chunk / page index at that level.
    pub index: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Hit at the given granularity.
    Hit(MapGranularity),
    /// No entry covers the page.
    Miss,
}

/// The L2P cache.
///
/// ```
/// use conzone_ftl::{L2pCache, LookupResult};
/// use conzone_types::{Lpn, MapGranularity};
///
/// let mut cache = L2pCache::new(64, 4, 16);
/// cache.insert(Lpn(5), MapGranularity::Chunk, false);
/// // Any page of chunk 1 now hits at chunk granularity.
/// assert_eq!(cache.lookup(Lpn(7)), LookupResult::Hit(MapGranularity::Chunk));
/// assert_eq!(cache.lookup(Lpn(9)), LookupResult::Miss);
/// ```
#[derive(Debug)]
pub struct L2pCache {
    lru: LruCache<CacheKey, ()>,
    chunk_slices: u64,
    zone_slices: u64,
}

impl L2pCache {
    /// Creates a cache of `capacity` entries over the given chunk/zone
    /// tiling.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or either tile size is zero.
    pub fn new(capacity: usize, chunk_slices: u64, zone_slices: u64) -> L2pCache {
        assert!(chunk_slices > 0 && zone_slices > 0);
        L2pCache {
            lru: LruCache::new(capacity),
            chunk_slices,
            zone_slices,
        }
    }

    /// Capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.lru.capacity()
    }

    /// Resident entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Total LRU evictions so far.
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.lru.evictions()
    }

    /// Resident entries over capacity, in `[0, 1]` — the cache-pressure
    /// figure the heatmap snapshot reports.
    pub fn occupancy(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity() as f64
        }
    }

    fn key_for(&self, lpn: Lpn, granularity: MapGranularity) -> CacheKey {
        let index = match granularity {
            MapGranularity::Page => lpn.raw(),
            MapGranularity::Chunk => lpn.raw() / self.chunk_slices,
            MapGranularity::Zone => lpn.raw() / self.zone_slices,
        };
        CacheKey { granularity, index }
    }

    /// Looks up a logical page, trying LZA, then LCA, then LPA (paper
    /// Fig. 4 Ⅰ). A hit promotes the entry to most-recently-used.
    // xtask-effect: hot_path
    pub fn lookup(&mut self, lpn: Lpn) -> LookupResult {
        for granularity in [
            MapGranularity::Zone,
            MapGranularity::Chunk,
            MapGranularity::Page,
        ] {
            let key = self.key_for(lpn, granularity);
            if self.lru.get(&key).is_some() {
                return LookupResult::Hit(granularity);
            }
        }
        LookupResult::Miss
    }

    /// Whether any entry covers `lpn`, without touching recency.
    pub fn covers(&self, lpn: Lpn) -> bool {
        [
            MapGranularity::Zone,
            MapGranularity::Chunk,
            MapGranularity::Page,
        ]
        .into_iter()
        .any(|g| self.lru.contains(&self.key_for(lpn, g)))
    }

    /// Inserts the entry covering `lpn` at `granularity`. When `pinned` is
    /// set (the §IV-D design), aggregated entries stay resident and the
    /// entries they cover are removed.
    // xtask-effect: hot_path
    pub fn insert(&mut self, lpn: Lpn, granularity: MapGranularity, pinned: bool) -> InsertOutcome {
        if granularity > MapGranularity::Page {
            self.evict_covered(lpn, granularity);
        }
        let key = self.key_for(lpn, granularity);
        self.lru.insert(key, (), pinned)
    }

    /// Removes entries strictly below `granularity` that the new aggregated
    /// entry covers ("the covered L2P mapping entries are evicted",
    /// §IV-D).
    fn evict_covered(&mut self, lpn: Lpn, granularity: MapGranularity) {
        let (lo, hi) = match granularity {
            MapGranularity::Zone => {
                let z = lpn.raw() / self.zone_slices;
                (z * self.zone_slices, (z + 1) * self.zone_slices)
            }
            MapGranularity::Chunk => {
                let c = lpn.raw() / self.chunk_slices;
                (c * self.chunk_slices, (c + 1) * self.chunk_slices)
            }
            MapGranularity::Page => return,
        };
        let chunk_slices = self.chunk_slices;
        self.lru.retain_not(|k| match k.granularity {
            MapGranularity::Page => k.index >= lo && k.index < hi,
            MapGranularity::Chunk if granularity == MapGranularity::Zone => {
                let start = k.index * chunk_slices;
                start >= lo && start < hi
            }
            _ => false,
        });
    }

    /// Invalidates any entry covering `lpn` (mapping changed: overwrite, GC
    /// migration or zone reset).
    pub fn invalidate_page(&mut self, lpn: Lpn) {
        for granularity in [
            MapGranularity::Zone,
            MapGranularity::Chunk,
            MapGranularity::Page,
        ] {
            let key = self.key_for(lpn, granularity);
            self.lru.remove(&key);
        }
    }

    /// Invalidates every entry of the zone containing `lpn`.
    pub fn invalidate_zone(&mut self, zone_start: Lpn) {
        let z = zone_start.raw() / self.zone_slices;
        let lo = z * self.zone_slices;
        let hi = lo + self.zone_slices;
        let chunk_slices = self.chunk_slices;
        let zone_slices = self.zone_slices;
        self.lru.retain_not(|k| match k.granularity {
            MapGranularity::Page => k.index >= lo && k.index < hi,
            MapGranularity::Chunk => {
                let start = k.index * chunk_slices;
                start >= lo && start < hi
            }
            MapGranularity::Zone => k.index * zone_slices == lo,
        });
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> L2pCache {
        L2pCache::new(8, 4, 16)
    }

    #[test]
    fn lookup_priority_zone_chunk_page() {
        let mut c = cache();
        c.insert(Lpn(0), MapGranularity::Page, false);
        c.insert(Lpn(0), MapGranularity::Chunk, false);
        c.insert(Lpn(0), MapGranularity::Zone, false);
        assert_eq!(c.lookup(Lpn(0)), LookupResult::Hit(MapGranularity::Zone));
    }

    #[test]
    fn chunk_hit_covers_whole_chunk_only() {
        let mut c = cache();
        c.insert(Lpn(4), MapGranularity::Chunk, false);
        assert_eq!(c.lookup(Lpn(6)), LookupResult::Hit(MapGranularity::Chunk));
        assert_eq!(c.lookup(Lpn(3)), LookupResult::Miss);
        assert_eq!(c.lookup(Lpn(8)), LookupResult::Miss);
    }

    #[test]
    fn aggregated_insert_evicts_covered() {
        let mut c = cache();
        for i in 0..4 {
            c.insert(Lpn(i), MapGranularity::Page, false);
        }
        assert_eq!(c.len(), 4);
        c.insert(Lpn(0), MapGranularity::Chunk, false);
        // The four page entries are gone; only the chunk entry remains.
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(Lpn(2)), LookupResult::Hit(MapGranularity::Chunk));
    }

    #[test]
    fn zone_insert_evicts_covered_chunks_and_pages() {
        let mut c = cache();
        c.insert(Lpn(0), MapGranularity::Chunk, false);
        c.insert(Lpn(5), MapGranularity::Page, false);
        c.insert(Lpn(17), MapGranularity::Page, false); // other zone
        c.insert(Lpn(0), MapGranularity::Zone, false);
        assert_eq!(c.len(), 2); // zone entry + other-zone page
        assert_eq!(c.lookup(Lpn(17)), LookupResult::Hit(MapGranularity::Page));
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut c = cache(); // capacity 8
        for i in 0..9 {
            c.insert(Lpn(i * 16), MapGranularity::Page, false);
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.lookup(Lpn(0)), LookupResult::Miss, "oldest evicted");
    }

    #[test]
    fn pinned_aggregates_survive_pressure() {
        let mut c = cache();
        c.insert(Lpn(0), MapGranularity::Zone, true);
        for i in 0..20 {
            c.insert(Lpn(100 + i), MapGranularity::Page, false);
        }
        assert_eq!(c.lookup(Lpn(5)), LookupResult::Hit(MapGranularity::Zone));
    }

    #[test]
    fn invalidate_page_and_zone() {
        let mut c = cache();
        c.insert(Lpn(0), MapGranularity::Chunk, false);
        c.invalidate_page(Lpn(2));
        assert_eq!(c.lookup(Lpn(0)), LookupResult::Miss);

        c.insert(Lpn(16), MapGranularity::Zone, false);
        c.insert(Lpn(20), MapGranularity::Page, false);
        c.insert(Lpn(0), MapGranularity::Page, false);
        c.invalidate_zone(Lpn(16));
        assert_eq!(c.lookup(Lpn(20)), LookupResult::Miss);
        assert_eq!(c.lookup(Lpn(0)), LookupResult::Hit(MapGranularity::Page));
    }

    #[test]
    fn covers_does_not_touch_recency() {
        let mut c = L2pCache::new(2, 4, 16);
        c.insert(Lpn(0), MapGranularity::Page, false);
        c.insert(Lpn(1), MapGranularity::Page, false);
        assert!(c.covers(Lpn(0)));
        // Insert a third entry: LRU victim must still be Lpn(0) because
        // covers() did not promote it.
        c.insert(Lpn(2), MapGranularity::Page, false);
        assert!(!c.covers(Lpn(0)));
        assert!(c.covers(Lpn(1)));
    }
}
