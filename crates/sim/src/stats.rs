//! Latency statistics: an HDR-style log-bucketed histogram and a compact
//! summary used in benchmark reports.

use conzone_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two magnitude. 32 gives a
/// worst-case quantile error of ~3 %.
const SUBBUCKETS: usize = 32;
const SUBBUCKET_BITS: u32 = 5;

/// A log-bucketed latency histogram with bounded relative error.
///
/// Records nanosecond durations; exposes quantiles, mean, min and max.
///
/// ```
/// use conzone_sim::LatencyHistogram;
/// use conzone_types::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for us in [10u64, 20, 30, 40, 1000] {
///     h.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.99) >= SimDuration::from_micros(900));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

fn bucket_index(value: u64) -> usize {
    // Values below SUBBUCKETS go to their own linear bucket; above that,
    // each power of two is split into SUBBUCKETS linear sub-buckets.
    if value < SUBBUCKETS as u64 {
        value as usize
    } else {
        let magnitude = 63 - value.leading_zeros();
        let shift = magnitude - SUBBUCKET_BITS;
        let sub = ((value >> shift) - SUBBUCKETS as u64) as usize;
        ((magnitude - SUBBUCKET_BITS + 1) as usize) * SUBBUCKETS + sub
    }
}

fn bucket_low(index: usize) -> u64 {
    if index < SUBBUCKETS {
        index as u64
    } else {
        let tier = index / SUBBUCKETS - 1;
        let sub = index % SUBBUCKETS;
        ((SUBBUCKETS + sub) as u64) << tier
    }
}

/// Midpoint of a bucket: the unbiased point estimate for samples known
/// only to lie somewhere inside it. Exact (== the value) for the linear
/// buckets below `SUBBUCKETS` and for the first tier, whose width is 1.
fn bucket_mid(index: usize) -> u64 {
    if index < SUBBUCKETS {
        index as u64
    } else {
        // xtask-lint: allow(truncating-cast) — tier index is < 64 by bucket construction
        let tier = (index / SUBBUCKETS - 1) as u32;
        // The bucket spans 2^tier values starting at its lower bound.
        bucket_low(index) + ((1u64 << tier) >> 1)
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: Vec::new(),
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: SimDuration) {
        let ns = sample.as_nanos();
        let idx = bucket_index(ns);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / u128::from(self.count)) as u64)
        }
    }

    /// Smallest recorded sample; zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample; zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) with ~1.6 % relative error; zero
    /// if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Report the bucket's midpoint clamped to the observed
                // range: the lower bound systematically under-reports by
                // up to a full sub-bucket width, the midpoint is unbiased.
                return SimDuration::from_nanos(bucket_mid(idx).clamp(self.min_ns, self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Condensed percentile summary for reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Percentile summary of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Minimum latency.
    pub min: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 90th percentile.
    pub p90: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile (the paper's tail-latency metric, Figs. 7–8).
    pub p999: SimDuration,
    /// Maximum latency.
    pub max: SimDuration,
}

impl core::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} p99.9={} max={}",
            self.count, self.mean, self.p50, self.p99, self.p999, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotonic() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index decreased at {v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_low_bounds_value() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_000,
            123_456,
            u64::from(u32::MAX),
        ] {
            let idx = bucket_index(v);
            let low = bucket_low(idx);
            assert!(low <= v, "low {low} > value {v}");
            // Relative error bounded by one sub-bucket width.
            if v >= SUBBUCKETS as u64 {
                assert!((v - low) as f64 / v as f64 <= 1.0 / SUBBUCKETS as f64 + 1e-9);
            } else {
                assert_eq!(low, v);
            }
        }
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 2, 3, 4, 5] {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.0).as_nanos(), 1);
        assert_eq!(h.quantile(0.5).as_nanos(), 3);
        assert_eq!(h.quantile(1.0).as_nanos(), 5);
        assert_eq!(h.mean().as_nanos(), 3);
        assert_eq!(h.min().as_nanos(), 1);
        assert_eq!(h.max().as_nanos(), 5);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for (q, expect_us) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).as_nanos() as f64 / 1000.0;
            let err = (got - expect_us).abs() / expect_us;
            // Midpoint reporting halves the one-sided bucket-width error
            // of the old lower-bound estimate.
            assert!(err < 0.02, "q={q}: got {got}, want ~{expect_us}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1000u64 {
            let d = SimDuration::from_nanos(i * 37 % 100_000);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            c.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        assert_eq!(a.quantile(0.99), c.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
        let s = h.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn summary_orders_percentiles() {
        let mut h = LatencyHistogram::new();
        let mut rng = crate::SimRng::new(11);
        for _ in 0..10_000 {
            h.record(SimDuration::from_nanos(rng.range(1_000, 1_000_000)));
        }
        let s = h.summary();
        assert!(s.min <= s.p50 && s.p50 <= s.p90);
        assert!(s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut full = LatencyHistogram::new();
        for ns in [7u64, 400, 65_000, 1_000_000] {
            full.record(SimDuration::from_nanos(ns));
        }
        let reference = full.clone();

        // full ∪ ∅ = full.
        full.merge(&LatencyHistogram::new());
        assert_eq!(full.count(), reference.count());
        assert_eq!(full.min(), reference.min());
        assert_eq!(full.max(), reference.max());
        assert_eq!(full.mean(), reference.mean());
        assert_eq!(full.summary(), reference.summary());

        // ∅ ∪ full = full — the empty side's sentinel min must not leak.
        let mut empty = LatencyHistogram::new();
        empty.merge(&reference);
        assert_eq!(empty.count(), reference.count());
        assert_eq!(empty.min(), reference.min());
        assert_eq!(empty.summary(), reference.summary());

        // ∅ ∪ ∅ stays empty.
        let mut e = LatencyHistogram::new();
        e.merge(&LatencyHistogram::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.min(), SimDuration::ZERO);
        assert_eq!(e.summary().p999, SimDuration::ZERO);
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = LatencyHistogram::new();
        let d = SimDuration::from_micros(123);
        h.record(d);
        for q in [0.0, 0.001, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), d, "q={q}");
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, d);
        assert_eq!(s.min, d);
        assert_eq!(s.p50, d);
        assert_eq!(s.p999, d);
        assert_eq!(s.max, d);
    }

    mod bucket_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

            /// Every bucket's lower bound really is a lower bound, over the
            /// whole u64 domain (including the top tier near `u64::MAX`).
            #[test]
            fn bucket_low_is_a_lower_bound(v in any::<u64>()) {
                let low = bucket_low(bucket_index(v));
                prop_assert!(low <= v, "bucket_low {low} > value {v}");
            }

            /// Round-tripping the lower bound through `bucket_index` lands
            /// back in the same bucket (lower bounds are canonical).
            #[test]
            fn bucket_low_is_in_its_own_bucket(v in any::<u64>()) {
                let idx = bucket_index(v);
                prop_assert_eq!(bucket_index(bucket_low(idx)), idx);
            }
        }
    }
}
