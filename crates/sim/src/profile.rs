//! Feature-gated wall-time self-profiler (`--features selfprof`).
//!
//! Spans measure *simulated* time; this module measures the emulator's
//! *own* cost — which subsystem burns host CPU, the input the
//! `BENCH_<date>.json` trajectory tracks (ROADMAP item 2). Hot functions
//! bracket themselves with [`scope`]:
//!
//! ```
//! let _p = conzone_sim::profile::scope("write_range");
//! // ... work ...
//! ```
//!
//! Scopes nest into a per-thread call tree; [`folded`] renders it in
//! folded-stack format (`parent;child <nanoseconds>` per line, the input
//! `flamegraph.pl` and speedscope accept), and [`reset`] clears the
//! thread's tree between measurement windows.
//!
//! Without the `selfprof` feature every function here is an empty inline
//! stub and [`ScopeGuard`] is a zero-sized type, so the instrumented hot
//! paths cost nothing in default builds — the same null-build contract the
//! trace probe keeps.

/// RAII guard returned by [`scope`]; the scope ends when it drops.
#[must_use = "the scope ends when the guard drops"]
#[derive(Debug)]
pub struct ScopeGuard {
    #[cfg(feature = "selfprof")]
    start: std::time::Instant,
}

/// Whether the profiler is compiled in.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "selfprof")
}

#[cfg(not(feature = "selfprof"))]
mod imp {
    use super::ScopeGuard;

    /// Opens a named profiling scope on the current thread.
    #[inline(always)]
    pub fn scope(_name: &'static str) -> ScopeGuard {
        ScopeGuard {}
    }

    /// Clears the current thread's profile tree.
    #[inline(always)]
    pub fn reset() {}

    /// Renders the current thread's profile tree in folded-stack format.
    #[inline(always)]
    pub fn folded() -> String {
        String::new()
    }

    impl Drop for ScopeGuard {
        #[inline(always)]
        fn drop(&mut self) {}
    }
}

#[cfg(feature = "selfprof")]
mod imp {
    use super::ScopeGuard;
    // xtask-lint: allow(fleet-readiness) — selfprof scratch is per-thread by design and never sim-visible
    use std::cell::RefCell;

    struct Node {
        name: &'static str,
        parent: usize,
        children: Vec<usize>,
        total_ns: u64,
    }

    struct Tree {
        nodes: Vec<Node>,
        current: usize,
    }

    impl Tree {
        fn new() -> Tree {
            Tree {
                nodes: vec![Node {
                    name: "",
                    parent: 0,
                    children: Vec::new(),
                    total_ns: 0,
                }],
                current: 0,
            }
        }
    }

    // The profiler tree is deliberately per-thread scratch: it records
    // wall-clock spans for the `selfprof` feature and is never part of
    // simulated state. The item-anchored directive covers the whole block.
    // xtask-lint: allow(fleet-readiness) — selfprof scratch is per-thread by design and never sim-visible
    thread_local! {
        static TREE: RefCell<Tree> = RefCell::new(Tree::new());
    }

    /// Opens a named profiling scope on the current thread.
    // xtask-effect: cold — observability infrastructure: never feeds simulated
    // time or state (the overhead guard proves it), bookkeeping allocations are
    // hidden from the steady-state guard via uncounted(), and the whole module
    // compiles out without `selfprof`
    #[inline]
    pub fn scope(name: &'static str) -> ScopeGuard {
        // First visit of a new scope chain grows the tree — profiler
        // bookkeeping, not model work, so the steady-state allocation
        // guard must not see it.
        let _uncounted = crate::alloc_guard::uncounted();
        TREE.with(|t| {
            let mut tree = t.borrow_mut();
            let cur = tree.current;
            let child = tree.nodes[cur]
                .children
                .iter()
                .copied()
                .find(|&c| tree.nodes[c].name == name);
            let idx = match child {
                Some(idx) => idx,
                None => {
                    let idx = tree.nodes.len();
                    tree.nodes.push(Node {
                        name,
                        parent: cur,
                        children: Vec::new(),
                        total_ns: 0,
                    });
                    tree.nodes[cur].children.push(idx);
                    idx
                }
            };
            tree.current = idx;
        });
        ScopeGuard {
            // xtask-lint: allow(wall-clock) — the self-profiler measures
            // the emulator's own wall-clock cost by design; it never feeds
            // simulated time and is compiled out without `selfprof`.
            start: std::time::Instant::now(),
        }
    }

    /// Clears the current thread's profile tree.
    pub fn reset() {
        TREE.with(|t| *t.borrow_mut() = Tree::new());
    }

    /// Renders the current thread's profile tree in folded-stack format:
    /// one `a;b;c <self-nanoseconds>` line per observed stack, sorted
    /// lexicographically for stable output. Values are *self* time (the
    /// scope's total minus its children), the semantic `flamegraph.pl`
    /// and speedscope expect — summing a subtree reconstructs inclusive
    /// time.
    pub fn folded() -> String {
        TREE.with(|t| {
            let tree = t.borrow();
            let mut lines: Vec<String> = Vec::new();
            let mut stack: Vec<(usize, String)> = tree.nodes[0]
                .children
                .iter()
                .map(|&c| (c, tree.nodes[c].name.to_string()))
                .collect();
            while let Some((idx, path)) = stack.pop() {
                let node = &tree.nodes[idx];
                let child_ns: u64 = node.children.iter().map(|&c| tree.nodes[c].total_ns).sum();
                lines.push(format!("{path} {}", node.total_ns.saturating_sub(child_ns)));
                for &c in &node.children {
                    stack.push((c, format!("{path};{}", tree.nodes[c].name)));
                }
            }
            lines.sort_unstable();
            let mut out = lines.join("\n");
            if !out.is_empty() {
                out.push('\n');
            }
            out
        })
    }

    impl Drop for ScopeGuard {
        #[inline]
        fn drop(&mut self) {
            let elapsed = self.start.elapsed().as_nanos() as u64;
            TREE.with(|t| {
                let mut tree = t.borrow_mut();
                let cur = tree.current;
                tree.nodes[cur].total_ns += elapsed;
                tree.current = tree.nodes[cur].parent;
            });
        }
    }
}

pub use imp::{folded, reset, scope};

#[cfg(all(test, feature = "selfprof"))]
mod tests {
    use super::*;

    #[test]
    fn folded_output_nests_scopes() {
        reset();
        {
            let _a = scope("outer");
            {
                let _b = scope("inner");
            }
            {
                let _b = scope("inner");
            }
        }
        let out = folded();
        assert!(out.contains("outer "), "{out}");
        assert!(out.contains("outer;inner "), "{out}");
        reset();
        assert!(folded().is_empty());
    }
}

#[cfg(all(test, not(feature = "selfprof")))]
mod tests {
    use super::*;

    #[test]
    fn null_profiler_is_inert() {
        assert!(!enabled());
        let _g = scope("anything");
        reset();
        assert_eq!(folded(), "");
    }
}
