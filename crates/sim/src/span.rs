//! Collection and attribution of causal IO spans.
//!
//! The device model emits [`SpanRecord`]s through a
//! [`SpanRecorder`](conzone_types::SpanRecorder); this module provides the
//! harness side: a bounded [`SpanBuffer`] sink, and the self-time
//! attribution that folds closed spans back into the per-phase table the
//! `TimeBreakdown` reports — the reconciliation that makes a span dump
//! trustworthy.
//!
//! *Self time* is a span's duration minus the durations of its direct
//! children. The write path charges its breakdown category exclusively of
//! the combine / GC / log work nested inside it, so only self time — never
//! inclusive time — sums back to the breakdown totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use conzone_types::{SimDuration, SpanKind, SpanRecord, SpanSink};

/// A bounded in-memory span sink.
///
/// Keeps the first `capacity` spans and counts the rest as dropped, so a
/// runaway run degrades to a truncated-but-honest dump instead of
/// unbounded memory growth.
#[derive(Debug)]
pub struct SpanBuffer {
    spans: Mutex<Vec<SpanRecord>>,
    capacity: usize,
    recorded: AtomicU64,
}

impl SpanBuffer {
    /// A buffer keeping at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> SpanBuffer {
        SpanBuffer {
            spans: Mutex::new(Vec::new()),
            capacity,
            recorded: AtomicU64::new(0),
        }
    }

    /// Total spans offered to the buffer (kept or dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans that did not fit in `capacity`.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity as u64)
    }

    /// Takes the collected spans out of the buffer.
    pub fn drain(&self) -> Vec<SpanRecord> {
        match self.spans.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            // A poisoned lock means a recording thread panicked mid-push;
            // the vector itself is still well-formed.
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }
}

impl SpanSink for SpanBuffer {
    // xtask-effect: cold — observability sink: only runs with a probe attached,
    // and the overhead guard proves attaching one never changes simulated
    // results; the mutex orders concurrent recorders, not device state
    fn record(&self, span: SpanRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut guard = match self.spans.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.len() < self.capacity {
            guard.push(span);
        }
    }
}

/// Aggregated attribution for one [`SpanKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindAttribution {
    /// The kind these totals cover.
    pub kind: SpanKind,
    /// Closed spans of this kind.
    pub count: u64,
    /// Inclusive time: children counted inside their parents.
    pub total: SimDuration,
    /// Exclusive time: each span's duration minus its direct children.
    pub self_time: SimDuration,
}

const ALL_KINDS: [SpanKind; SpanKind::KIND_COUNT] = [
    SpanKind::IoRead,
    SpanKind::IoWrite,
    SpanKind::IoAppend,
    SpanKind::IoFlush,
    SpanKind::ZoneReset,
    SpanKind::MapFetch,
    SpanKind::DataRead,
    SpanKind::WritePath,
    SpanKind::CombineRead,
    SpanKind::GcStall,
    SpanKind::L2pLog,
    SpanKind::Erase,
    SpanKind::QueueCmd,
    SpanKind::QueueWait,
];

/// Folds closed spans into one [`KindAttribution`] per kind, in
/// [`SpanKind::index`] order.
///
/// Self time clamps at zero per span: a child that outlives its parent's
/// accounting window (which the recorder's monotonic clock prevents, but a
/// hand-built record set could produce) subtracts no further.
pub fn attribute_spans(spans: &[SpanRecord]) -> Vec<KindAttribution> {
    // Ids are assigned in open order, so they are dense enough to index.
    let max_id = spans.iter().map(|s| s.id).max().unwrap_or(0) as usize;
    let mut self_ns: Vec<u64> = vec![0; max_id + 1];
    let mut kind_of: Vec<Option<SpanKind>> = vec![None; max_id + 1];
    for s in spans {
        self_ns[s.id as usize] = s.duration_nanos();
        kind_of[s.id as usize] = Some(s.kind);
    }
    for s in spans {
        if s.parent != 0 {
            let p = s.parent as usize;
            if p < self_ns.len() {
                self_ns[p] = self_ns[p].saturating_sub(s.duration_nanos());
            }
        }
    }

    let mut out: Vec<KindAttribution> = ALL_KINDS
        .iter()
        .map(|&kind| KindAttribution {
            kind,
            count: 0,
            total: SimDuration::ZERO,
            self_time: SimDuration::ZERO,
        })
        .collect();
    for s in spans {
        let slot = &mut out[s.kind.index()];
        slot.count += 1;
        slot.total += SimDuration::from_nanos(s.duration_nanos());
        slot.self_time += SimDuration::from_nanos(self_ns[s.id as usize]);
    }
    out
}

/// Sums child-kind self times per `TimeBreakdown` category name, in the
/// breakdown's declaration order — the table a span dump is reconciled
/// against.
pub fn breakdown_from_spans(spans: &[SpanRecord]) -> Vec<(&'static str, SimDuration)> {
    let per_kind = attribute_spans(spans);
    let mut out: Vec<(&'static str, SimDuration)> = Vec::new();
    for a in &per_kind {
        if let Some(category) = a.kind.breakdown_category() {
            match out.iter_mut().find(|(name, _)| *name == category) {
                Some((_, d)) => *d += a.self_time,
                None => out.push((category, a.self_time)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use conzone_types::SimTime;

    fn span(id: u64, parent: u64, kind: SpanKind, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            io: 1,
            kind,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let buf = SpanBuffer::with_capacity(2);
        for id in 1..=5 {
            buf.record(span(id, 0, SpanKind::IoRead, 0, 1));
        }
        assert_eq!(buf.recorded(), 5);
        assert_eq!(buf.dropped(), 3);
        assert_eq!(buf.drain().len(), 2);
        assert!(buf.drain().is_empty(), "drain takes ownership");
    }

    #[test]
    fn self_time_excludes_direct_children() {
        // io_write [0,100] > write_path [0,90] > {gc [10,40], l2p [50,60]}
        let spans = [
            span(4, 2, SpanKind::GcStall, 10, 40),
            span(5, 2, SpanKind::L2pLog, 50, 60),
            span(2, 1, SpanKind::WritePath, 0, 90),
            span(1, 0, SpanKind::IoWrite, 0, 100),
        ];
        let attr = attribute_spans(&spans);
        let by_kind = |k: SpanKind| attr[k.index()];
        assert_eq!(by_kind(SpanKind::WritePath).total.as_nanos(), 90);
        assert_eq!(by_kind(SpanKind::WritePath).self_time.as_nanos(), 50);
        assert_eq!(by_kind(SpanKind::GcStall).self_time.as_nanos(), 30);
        assert_eq!(by_kind(SpanKind::IoWrite).self_time.as_nanos(), 10);
        assert_eq!(by_kind(SpanKind::IoWrite).count, 1);

        let breakdown = breakdown_from_spans(&spans);
        let get = |name: &str| {
            breakdown
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| d.as_nanos())
                .unwrap_or(0)
        };
        assert_eq!(get("write_path"), 50);
        assert_eq!(get("gc"), 30);
        assert_eq!(get("l2p_log"), 10);
        assert_eq!(get("mapping_fetch"), 0);
    }

    #[test]
    fn empty_span_set_attributes_nothing() {
        let attr = attribute_spans(&[]);
        assert_eq!(attr.len(), SpanKind::KIND_COUNT);
        assert!(attr.iter().all(|a| a.count == 0));
        assert!(breakdown_from_spans(&[])
            .iter()
            .all(|(_, d)| *d == SimDuration::ZERO));
    }
}
