//! A small deterministic pseudo-random generator.
//!
//! The emulator needs reproducible randomness — identical seeds must give
//! identical simulation results across platforms and library versions — so
//! we carry our own SplitMix64/xoshiro256++ implementation instead of
//! depending on an external RNG's stream stability.

/// Deterministic xoshiro256++ generator seeded via SplitMix64.
///
/// ```
/// use conzone_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // xtask-lint: allow(hot-path-effects) — documented precondition: a zero bound is a caller bug and aborting is the correct response
        assert!(bound > 0, "bound must be non-zero");
        // Unbiased multiply-shift rejection sampling.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    // xtask-lint: allow(float-determinism) — seeded sampling API; deterministic for a fixed seed
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A standard-normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A log-normal sample with the given underlying normal parameters.
    /// Useful for long-tailed virtualization-jitter models.
    // xtask-lint: allow(float-determinism) — seeded sampling API; deterministic for a fixed seed
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(SimRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = SimRng::new(1);
        for bound in [1u64, 2, 3, 10, 1_000_000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SimRng::new(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }
}
