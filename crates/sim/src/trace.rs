//! Trace collection: a bounded lock-free ring-buffer sink and the
//! periodic interval-metrics sampler.
//!
//! [`RingBufferSink`] stores events entirely in pre-allocated atomic
//! slots: recording is one `fetch_add` to claim an index plus plain
//! atomic stores (no locks, no allocation on the hot path). Events are
//! packed into three `u64` words — see the `encode`/`decode` pair — and
//! the ring overwrites its oldest entries when full, tracking how many
//! were dropped.
//!
//! Each slot is guarded by a per-slot sequence word acting as a
//! seqlock: a writer parks the sentinel value in it while rewriting the
//! payload (so concurrent drains skip the slot and a lapped writer
//! waits instead of interleaving its stores), and a drain re-checks the
//! word after reading the payload so a record replaced mid-read is
//! discarded rather than returned torn. The protocol is model-checked
//! under the vendored loom stand-in — build with `--features loom` and
//! run `tests/loom_trace.rs` — which explores writer/writer and
//! writer/drain interleavings exhaustively up to the preemption bound.
//!
//! [`MetricsSampler`] turns the cumulative [`Counters`] record into an
//! interval time series: feed it `(now, counters)` observations and it
//! emits one [`MetricsSample`] delta per elapsed sampling interval.

// The sync layer the ring is built on: real std atomics normally, the
// loom stand-in's checked versions when model-testing.
#[cfg(feature = "loom")]
use loom::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(feature = "loom")]
use loom::thread::yield_now;
#[cfg(not(feature = "loom"))]
use std::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(not(feature = "loom"))]
use std::thread::yield_now;

use conzone_types::{
    CellType, Counters, DeviceEvent, FaultKind, FlushKind, L2pOutcome, MediaOp, SimDuration,
    SimTime, TraceRecord, TraceSink, ZoneId,
};

fn cell_to_bits(c: CellType) -> u64 {
    match c {
        CellType::Slc => 0,
        CellType::Tlc => 1,
        CellType::Qlc => 2,
    }
}

fn cell_from_bits(b: u64) -> CellType {
    match b {
        0 => CellType::Slc,
        1 => CellType::Tlc,
        _ => CellType::Qlc,
    }
}

/// Packs an event into `(tag_word, a, b)`; the tag word keeps the kind
/// index in the low byte and variant discriminants in the next byte.
fn encode(event: DeviceEvent) -> (u64, u64, u64) {
    let tag = event.kind_index() as u64;
    match event {
        DeviceEvent::BufferFlush { zone, slices, .. } => (tag, zone.raw(), slices),
        DeviceEvent::BufferConflict { zone } => (tag, zone.raw(), 0),
        DeviceEvent::SlcCombine {
            zone,
            staged_slices,
        } => (tag, zone.raw(), staged_slices),
        DeviceEvent::PatchSlice { zone, slices } => (tag, zone.raw(), slices),
        DeviceEvent::GcBegin { valid_slices } => (tag, valid_slices, 0),
        DeviceEvent::GcEnd { migrated_slices } => (tag, migrated_slices, 0),
        DeviceEvent::L2pLookup { outcome } => {
            let extra = match outcome {
                L2pOutcome::HitZone => 0u64,
                L2pOutcome::HitChunk => 1,
                L2pOutcome::HitPage => 2,
                L2pOutcome::Miss => 3,
            };
            (tag | (extra << 8), 0, 0)
        }
        DeviceEvent::L2pEviction { count } => (tag, count, 0),
        DeviceEvent::L2pLogFlush => (tag, 0, 0),
        DeviceEvent::Media { op: _, cell, bytes } => (tag | (cell_to_bits(cell) << 8), bytes, 0),
        DeviceEvent::ZoneReset { zone } => (tag, zone.raw(), 0),
        DeviceEvent::FaultInjected { kind, chip, block } => {
            let extra = match kind {
                FaultKind::Program => 0u64,
                FaultKind::Erase => 1,
            };
            (tag | (extra << 8), chip, block)
        }
        DeviceEvent::BlockRetired { chip, block } => (tag, chip, block),
        DeviceEvent::ReadRetry { steps } => (tag, u64::from(steps), 0),
        DeviceEvent::PowerCut { lost_slices } => (tag, lost_slices, 0),
        DeviceEvent::RecoveryReplay {
            recovered_slices,
            lost_slices,
        } => (tag, recovered_slices, lost_slices),
        DeviceEvent::QueueSubmit { queue, backlog } => (tag, queue, backlog),
        DeviceEvent::QueueArbitrate { queue, wait_ns } => (tag, queue, wait_ns),
        DeviceEvent::QueueComplete { queue, inflight } => (tag, queue, inflight),
    }
}

/// Inverse of [`encode`]; total over well-formed tag words.
fn decode(tag_word: u64, a: u64, b: u64) -> Option<DeviceEvent> {
    let extra = (tag_word >> 8) & 0xff;
    Some(match tag_word & 0xff {
        0 => DeviceEvent::BufferFlush {
            zone: ZoneId(a),
            kind: FlushKind::Full,
            slices: b,
        },
        1 => DeviceEvent::BufferFlush {
            zone: ZoneId(a),
            kind: FlushKind::Premature,
            slices: b,
        },
        2 => DeviceEvent::BufferConflict { zone: ZoneId(a) },
        3 => DeviceEvent::SlcCombine {
            zone: ZoneId(a),
            staged_slices: b,
        },
        4 => DeviceEvent::PatchSlice {
            zone: ZoneId(a),
            slices: b,
        },
        5 => DeviceEvent::GcBegin { valid_slices: a },
        6 => DeviceEvent::GcEnd { migrated_slices: a },
        7 => DeviceEvent::L2pLookup {
            outcome: L2pOutcome::Miss,
        },
        8 => DeviceEvent::L2pLookup {
            outcome: match extra {
                0 => L2pOutcome::HitZone,
                1 => L2pOutcome::HitChunk,
                _ => L2pOutcome::HitPage,
            },
        },
        9 => DeviceEvent::L2pEviction { count: a },
        10 => DeviceEvent::L2pLogFlush,
        11 => DeviceEvent::Media {
            op: MediaOp::Program,
            cell: cell_from_bits(extra),
            bytes: a,
        },
        12 => DeviceEvent::Media {
            op: MediaOp::Read,
            cell: cell_from_bits(extra),
            bytes: a,
        },
        13 => DeviceEvent::Media {
            op: MediaOp::Erase,
            cell: cell_from_bits(extra),
            bytes: a,
        },
        14 => DeviceEvent::ZoneReset { zone: ZoneId(a) },
        15 => DeviceEvent::FaultInjected {
            kind: if extra == 0 {
                FaultKind::Program
            } else {
                FaultKind::Erase
            },
            chip: a,
            block: b,
        },
        16 => DeviceEvent::BlockRetired { chip: a, block: b },
        // xtask-lint: allow(truncating-cast) — round-trips a u32 packed into the record word
        17 => DeviceEvent::ReadRetry { steps: a as u32 },
        18 => DeviceEvent::PowerCut { lost_slices: a },
        19 => DeviceEvent::RecoveryReplay {
            recovered_slices: a,
            lost_slices: b,
        },
        20 => DeviceEvent::QueueSubmit {
            queue: a,
            backlog: b,
        },
        21 => DeviceEvent::QueueArbitrate {
            queue: a,
            wait_ns: b,
        },
        22 => DeviceEvent::QueueComplete {
            queue: a,
            inflight: b,
        },
        _ => return None,
    })
}

const WORDS_PER_SLOT: usize = 5; // seq, time, tag, a, b

/// Sequence-word sentinel a writer parks in a slot while rewriting its
/// payload. Real sequence values are `index + 1`, which would need
/// 2^64 − 1 recorded events to collide with the sentinel.
const WRITING: u64 = u64::MAX;

/// A bounded, lock-free, overwrite-oldest event sink.
///
/// Writers claim an index with one `fetch_add`, claim the slot by
/// swapping [`WRITING`] into its sequence word, fill the payload with
/// atomic stores and publish by storing `index + 1` back. The sequence
/// word lets [`RingBufferSink::drain`] detect slots that are mid-write
/// or were replaced while being read (only possible while another
/// thread is still emitting). No allocation happens after construction.
#[derive(Debug)]
pub struct RingBufferSink {
    /// Flat `[seq, time, tag, a, b]` per slot.
    slots: Vec<AtomicU64>,
    capacity: u64,
    head: AtomicU64,
}

impl RingBufferSink {
    /// Default capacity: 64 Ki events (~2.5 MiB).
    pub fn new() -> RingBufferSink {
        RingBufferSink::with_capacity(64 * 1024)
    }

    /// Creates a sink holding the last `capacity` events (min 16).
    pub fn with_capacity(capacity: usize) -> RingBufferSink {
        RingBufferSink::with_capacity_exact(capacity.max(16))
    }

    /// Like [`RingBufferSink::with_capacity`] but without the floor of
    /// 16. Tiny rings make wraparound races reachable in a handful of
    /// steps, which is what the loom model tests need; production users
    /// should go through `with_capacity`. `capacity` must be ≥ 1.
    pub fn with_capacity_exact(capacity: usize) -> RingBufferSink {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        let mut slots = Vec::with_capacity(capacity * WORDS_PER_SLOT);
        for _ in 0..capacity * WORDS_PER_SLOT {
            slots.push(AtomicU64::new(0));
        }
        RingBufferSink {
            slots,
            capacity: capacity as u64,
            head: AtomicU64::new(0),
        }
    }

    /// Events recorded so far (including any overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwriting (recorded minus capacity, if positive).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity)
    }

    /// Copies out the retained events in recording order. Intended to be
    /// called after the simulation quiesces; concurrent in-flight writes
    /// only cause those specific slots to be skipped.
    pub fn drain(&self) -> Vec<TraceRecord> {
        let head = self.head.load(Ordering::Acquire);
        let retained = head.min(self.capacity);
        let first = head - retained;
        let mut out = Vec::with_capacity(retained as usize);
        for idx in first..head {
            let base = (idx % self.capacity) as usize * WORDS_PER_SLOT;
            // Seqlock read: check the sequence word on *both* sides of
            // the payload loads and keep the record only if it never
            // moved — a writer that replaced the record mid-read leaves
            // either the WRITING sentinel or a different sequence in s2.
            let s1 = self.slots[base].load(Ordering::Acquire);
            if s1 != idx + 1 {
                continue; // stale, mid-write, or already overwritten
            }
            let time = self.slots[base + 1].load(Ordering::Relaxed);
            let tag = self.slots[base + 2].load(Ordering::Relaxed);
            let a = self.slots[base + 3].load(Ordering::Relaxed);
            let b = self.slots[base + 4].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = self.slots[base].load(Ordering::Relaxed);
            if s2 != s1 {
                continue; // replaced while being read
            }
            if let Some(event) = decode(tag, a, b) {
                out.push(TraceRecord {
                    time: SimTime::from_nanos(time),
                    event,
                });
            }
        }
        out
    }
}

impl Default for RingBufferSink {
    fn default() -> RingBufferSink {
        RingBufferSink::new()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, time: SimTime, event: DeviceEvent) {
        let idx = self.head.fetch_add(1, Ordering::AcqRel);
        let base = (idx % self.capacity) as usize * WORDS_PER_SLOT;
        let (tag, a, b) = encode(event);
        // Claim the slot before touching the payload: the sentinel
        // keeps drain() from trusting the words mid-write, and keeps a
        // writer a full lap away from interleaving its stores with
        // ours (two live writers land on one slot only when the ring
        // wraps while a write is still in flight).
        loop {
            let prev = self.slots[base].swap(WRITING, Ordering::Acquire);
            if prev == WRITING {
                yield_now();
                continue;
            }
            if prev > idx + 1 {
                // The slot already carries a *newer* record: this
                // writer was lapped between claiming `idx` and getting
                // here. Indices sharing a slot are a multiple of
                // `capacity` apart, so `idx` sits below the retained
                // window and is already counted by dropped(); put the
                // newer record back untouched.
                self.slots[base].store(prev, Ordering::Release);
                return;
            }
            break;
        }
        self.slots[base + 1].store(time.as_nanos(), Ordering::Relaxed);
        self.slots[base + 2].store(tag, Ordering::Relaxed);
        self.slots[base + 3].store(a, Ordering::Relaxed);
        self.slots[base + 4].store(b, Ordering::Relaxed);
        self.slots[base].store(idx + 1, Ordering::Release);
    }
}

/// One closed sampling interval: the [`Counters`] delta across it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSample {
    /// Interval start (inclusive).
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// Counter increments inside the interval.
    pub delta: Counters,
}

/// Snapshots [`Counters::since`] deltas on a fixed simulated-time grid.
///
/// Feed it monotone `(now, cumulative counters)` observations via
/// [`MetricsSampler::observe`]; every time `now` crosses an interval
/// boundary one sample is closed. Activity between two observations that
/// straddles several boundaries is attributed to the first crossed
/// interval (later ones get zero deltas) — observations arrive at every
/// request completion, so in practice intervals are much coarser than the
/// observation stream.
#[derive(Debug, Clone)]
pub struct MetricsSampler {
    interval: SimDuration,
    next_boundary: SimTime,
    last: Counters,
    samples: Vec<MetricsSample>,
}

impl MetricsSampler {
    /// Creates a sampler with the given interval (must be non-zero).
    pub fn new(interval: SimDuration) -> MetricsSampler {
        assert!(interval.as_nanos() > 0, "sampling interval must be > 0");
        MetricsSampler {
            interval,
            next_boundary: SimTime::ZERO + interval,
            last: Counters::new(),
            samples: Vec::new(),
        }
    }

    /// Creates a sampler whose interval grid starts at `origin` and whose
    /// first delta is taken against `baseline` — for jobs that begin
    /// mid-simulation on a device with prior activity.
    pub fn anchored(origin: SimTime, interval: SimDuration, baseline: &Counters) -> MetricsSampler {
        assert!(interval.as_nanos() > 0, "sampling interval must be > 0");
        MetricsSampler {
            interval,
            next_boundary: origin + interval,
            last: *baseline,
            samples: Vec::new(),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Observes the cumulative counters at simulated time `now`, closing
    /// any intervals that have fully elapsed.
    pub fn observe(&mut self, now: SimTime, counters: &Counters) {
        while self.next_boundary <= now {
            let end = self.next_boundary;
            self.samples.push(MetricsSample {
                start: end - self.interval,
                end,
                delta: counters.since(&self.last),
            });
            self.last = *counters;
            self.next_boundary = end + self.interval;
        }
    }

    /// Closes the final partial interval at `now` (if any activity or time
    /// remains past the last boundary) and returns all samples.
    ///
    /// A zero-duration window with activity still yields a (zero-width)
    /// sample: the PR 2 reporting-math rules make rates over it read as
    /// `NaN`/`inf` rather than silently vanishing the counted work.
    pub fn finish(mut self, now: SimTime, counters: &Counters) -> Vec<MetricsSample> {
        self.observe(now, counters);
        let start = self.next_boundary - self.interval;
        if now > start || counters.since(&self.last) != Counters::new() {
            self.samples.push(MetricsSample {
                start,
                end: now.max(start),
                delta: counters.since(&self.last),
            });
        }
        self.samples
    }

    /// Samples closed so far.
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<DeviceEvent> {
        vec![
            DeviceEvent::BufferFlush {
                zone: ZoneId(4),
                kind: FlushKind::Full,
                slices: 16,
            },
            DeviceEvent::BufferFlush {
                zone: ZoneId(9),
                kind: FlushKind::Premature,
                slices: 3,
            },
            DeviceEvent::BufferConflict { zone: ZoneId(2) },
            DeviceEvent::SlcCombine {
                zone: ZoneId(1),
                staged_slices: 7,
            },
            DeviceEvent::PatchSlice {
                zone: ZoneId(5),
                slices: 2,
            },
            DeviceEvent::GcBegin { valid_slices: 100 },
            DeviceEvent::GcEnd {
                migrated_slices: 100,
            },
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::HitZone,
            },
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::HitChunk,
            },
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::HitPage,
            },
            DeviceEvent::L2pLookup {
                outcome: L2pOutcome::Miss,
            },
            DeviceEvent::L2pEviction { count: 12 },
            DeviceEvent::L2pLogFlush,
            DeviceEvent::Media {
                op: MediaOp::Program,
                cell: CellType::Tlc,
                bytes: 65536,
            },
            DeviceEvent::Media {
                op: MediaOp::Read,
                cell: CellType::Slc,
                bytes: 16384,
            },
            DeviceEvent::Media {
                op: MediaOp::Erase,
                cell: CellType::Qlc,
                bytes: 0,
            },
            DeviceEvent::ZoneReset { zone: ZoneId(11) },
            DeviceEvent::FaultInjected {
                kind: FaultKind::Program,
                chip: 2,
                block: 17,
            },
            DeviceEvent::FaultInjected {
                kind: FaultKind::Erase,
                chip: 0,
                block: 6,
            },
            DeviceEvent::BlockRetired { chip: 3, block: 8 },
            DeviceEvent::ReadRetry { steps: 2 },
            DeviceEvent::PowerCut { lost_slices: 14 },
            DeviceEvent::RecoveryReplay {
                recovered_slices: 9,
                lost_slices: 14,
            },
        ]
    }

    #[test]
    fn encode_decode_is_bijective() {
        for e in all_events() {
            let (tag, a, b) = encode(e);
            assert_eq!(decode(tag, a, b), Some(e), "{e:?}");
        }
    }

    #[test]
    fn ring_keeps_order_and_contents() {
        let sink = RingBufferSink::with_capacity(64);
        for (i, e) in all_events().into_iter().enumerate() {
            sink.record(SimTime::from_nanos(i as u64 * 10), e);
        }
        let records = sink.drain();
        assert_eq!(records.len(), all_events().len());
        assert_eq!(sink.dropped(), 0);
        for (i, (r, e)) in records.iter().zip(all_events()).enumerate() {
            assert_eq!(r.time, SimTime::from_nanos(i as u64 * 10));
            assert_eq!(r.event, e);
        }
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let sink = RingBufferSink::with_capacity(16);
        for i in 0..40u64 {
            sink.record(
                SimTime::from_nanos(i),
                DeviceEvent::L2pEviction { count: i },
            );
        }
        assert_eq!(sink.recorded(), 40);
        assert_eq!(sink.dropped(), 24);
        let records = sink.drain();
        assert_eq!(records.len(), 16);
        assert_eq!(
            records[0].event,
            DeviceEvent::L2pEviction { count: 24 },
            "oldest retained is #24"
        );
        assert_eq!(records[15].event, DeviceEvent::L2pEviction { count: 39 });
    }

    #[test]
    fn ring_survives_concurrent_writers_with_exact_accounting() {
        // Real-thread smoke test of the slot-claim protocol (the
        // exhaustive version lives in tests/loom_trace.rs): hammer a
        // small ring from several threads, then check that nothing is
        // torn and the drop accounting balances to the record.
        let sink = std::sync::Arc::new(RingBufferSink::with_capacity(16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let sink = std::sync::Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for k in 0..64u64 {
                    let i = t * 1000 + k;
                    sink.record(
                        SimTime::from_nanos(i),
                        DeviceEvent::RecoveryReplay {
                            recovered_slices: i,
                            lost_slices: i,
                        },
                    );
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        let records = sink.drain();
        assert_eq!(sink.recorded(), 256);
        assert_eq!(records.len() as u64 + sink.dropped(), sink.recorded());
        assert_eq!(records.len(), 16, "every retained slot is readable");
        for r in &records {
            match r.event {
                DeviceEvent::RecoveryReplay {
                    recovered_slices,
                    lost_slices,
                } => {
                    assert_eq!(recovered_slices, lost_slices, "torn payload: {r:?}");
                    assert_eq!(r.time, SimTime::from_nanos(recovered_slices), "torn time");
                }
                ref other => panic!("foreign event decoded: {other:?}"),
            }
        }
    }

    #[test]
    fn sampler_emits_one_delta_per_interval() {
        let mut c = Counters::new();
        let interval = SimDuration::from_millis(1);
        let mut s = MetricsSampler::new(interval);
        let at = |us: u64| SimTime::ZERO + SimDuration::from_micros(us);
        // 0.4 ms: some writes.
        c.host_write_bytes = 100;
        s.observe(at(400), &c);
        assert!(s.samples().is_empty(), "interval not elapsed yet");
        // 1.2 ms: more writes — first interval closes with everything so far.
        c.host_write_bytes = 250;
        s.observe(at(1200), &c);
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.samples()[0].delta.host_write_bytes, 250);
        assert_eq!(s.samples()[0].start, SimTime::ZERO);
        assert_eq!(s.samples()[0].end, at(1000));
        // 3.5 ms: crossing two boundaries at once.
        c.host_write_bytes = 400;
        let samples = s.finish(at(3500), &c);
        assert_eq!(samples.len(), 4, "2 full + 1 empty + final partial");
        assert_eq!(samples[1].delta.host_write_bytes, 150);
        assert_eq!(samples[2].delta.host_write_bytes, 0);
        assert_eq!(samples[3].end, at(3500));
        // Deltas over all intervals add up to the cumulative counter.
        let total: u64 = samples.iter().map(|s| s.delta.host_write_bytes).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn sampler_finish_on_exact_boundary_adds_no_empty_tail() {
        let mut c = Counters::new();
        let mut s = MetricsSampler::new(SimDuration::from_millis(1));
        c.host_write_bytes = 64;
        s.observe(SimTime::ZERO + SimDuration::from_micros(400), &c);
        let samples = s.finish(SimTime::ZERO + SimDuration::from_millis(1), &c);
        // The boundary interval captured everything; no zero-width tail.
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].end, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(samples[0].delta.host_write_bytes, 64);
    }

    #[test]
    fn sampler_zero_duration_run_keeps_nonzero_delta() {
        // A run that starts and finishes at the same instant must not
        // silently drop counted work: it yields one zero-width sample, so
        // rates over it read NaN/inf per the reporting-math rules instead
        // of the work vanishing.
        let mut c = Counters::new();
        c.host_write_bytes = 4096;
        let s = MetricsSampler::new(SimDuration::from_millis(1));
        let samples = s.finish(SimTime::ZERO, &c);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].start, SimTime::ZERO);
        assert_eq!(samples[0].end, SimTime::ZERO);
        assert_eq!(samples[0].delta.host_write_bytes, 4096);
        let width = samples[0].end.saturating_since(samples[0].start);
        let rate = samples[0].delta.host_write_bytes as f64 / width.as_nanos() as f64;
        assert!(
            rate.is_infinite() || rate.is_nan(),
            "explicit NaN/inf, not 0"
        );
    }

    #[test]
    fn sampler_zero_duration_idle_run_is_empty() {
        let s = MetricsSampler::new(SimDuration::from_millis(1));
        let samples = s.finish(SimTime::ZERO, &Counters::new());
        assert!(samples.is_empty(), "nothing happened, nothing to report");
    }

    #[test]
    fn sampler_anchored_boundary_finish_with_trailing_delta() {
        // Activity after the last closed boundary but at an exact
        // boundary instant: observe() closes it, finish() must not lose
        // a delta that lands between the two calls.
        let origin = SimTime::from_nanos(500);
        let base = Counters::new();
        let mut s = MetricsSampler::anchored(origin, SimDuration::from_micros(1), &base);
        let mut c = Counters::new();
        c.host_read_ops = 3;
        s.observe(origin + SimDuration::from_micros(1), &c);
        assert_eq!(s.samples().len(), 1);
        // More work lands at exactly the same instant; finish at the
        // boundary keeps it as a zero-width sample.
        c.host_read_ops = 7;
        let samples = s.finish(origin + SimDuration::from_micros(1), &c);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].delta.host_read_ops, 4);
        assert_eq!(samples[1].start, samples[1].end);
        let total: u64 = samples.iter().map(|s| s.delta.host_read_ops).sum();
        assert_eq!(total, 7);
    }
}
