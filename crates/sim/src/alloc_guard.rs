//! Counting global allocator for the steady-state allocation guard.
//!
//! With the `counting-alloc` feature enabled this module installs a
//! `#[global_allocator]` that wraps the system allocator and counts
//! every allocation (calls and bytes) in relaxed atomics. The bench
//! harness samples [`allocation_count`] around a steady-state window to
//! assert the hot path performs **zero** allocations per op — the
//! runtime cross-check for the static `hot-path-effects` lint rule.
//!
//! Without the feature the API still exists but reports the guard as
//! disabled, so callers can compile unconditionally. The counter is
//! process-global and monotonically increasing; callers diff two
//! samples around the window they care about.

use core::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Whether the counting allocator is compiled in and installed.
#[must_use]
pub fn counting_enabled() -> bool {
    cfg!(feature = "counting-alloc")
}

/// Total allocation calls since process start (0 when disabled).
///
/// Includes `alloc`, `alloc_zeroed` and growing `realloc` calls;
/// `dealloc` is free and intentionally uncounted.
#[must_use]
pub fn allocation_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start
/// (0 when disabled).
#[must_use]
pub fn allocated_bytes() -> u64 {
    ALLOC_BYTES.load(Ordering::Relaxed)
}

/// RAII scope during which this thread's allocations are *not* counted.
///
/// For observability infrastructure only: the `selfprof` profiler grows
/// its call tree lazily on first visit of a new scope chain, and that
/// bookkeeping is not part of the simulated model the steady-state guard
/// measures. Model code must never use this.
#[must_use = "counting resumes when the scope drops"]
#[derive(Debug)]
pub struct UncountedScope {
    _not_send: core::marker::PhantomData<*const ()>,
}

/// Suspends allocation counting on this thread until the guard drops.
pub fn uncounted() -> UncountedScope {
    #[cfg(feature = "counting-alloc")]
    installed::SUPPRESS.with(|c| c.set(c.get() + 1));
    UncountedScope {
        _not_send: core::marker::PhantomData,
    }
}

impl Drop for UncountedScope {
    fn drop(&mut self) {
        #[cfg(feature = "counting-alloc")]
        installed::SUPPRESS.with(|c| c.set(c.get() - 1));
    }
}

#[cfg(feature = "counting-alloc")]
#[allow(unsafe_code)] // the one place the GlobalAlloc contract requires it
mod installed {
    use super::{ALLOC_BYTES, ALLOC_CALLS};
    use core::sync::atomic::Ordering;
    use std::alloc::{GlobalAlloc, Layout, System};
    // xtask-lint: allow(fleet-readiness) — per-thread suppression flag for the counting allocator; never sim-visible
    use std::cell::Cell;

    // Const-initialised so reading it never allocates (a lazy initialiser
    // inside the allocator would recurse). Per-thread by design: the
    // suppression scope must not leak across fleet workers.
    // xtask-lint: allow(fleet-readiness) — per-thread suppression flag for the counting allocator; never sim-visible
    thread_local! {
        pub(super) static SUPPRESS: Cell<u32> = const { Cell::new(0) };
    }

    /// Whether this thread is inside an [`super::UncountedScope`].
    /// `try_with`: TLS is unreachable during thread teardown, where
    /// allocations may still happen — count those normally.
    fn suppressed() -> bool {
        SUPPRESS.try_with(|c| c.get() > 0).unwrap_or(false)
    }

    fn count(bytes: usize) {
        if !suppressed() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    struct CountingAlloc;

    // SAFETY: defers every allocation to `System`, which upholds the
    // `GlobalAlloc` contract; the wrapper only bumps atomic counters.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reflect_feature_state() {
        if counting_enabled() {
            let before = allocation_count();
            let v: Vec<u64> = Vec::with_capacity(32);
            drop(v);
            assert!(allocation_count() > before);
            assert!(allocated_bytes() > 0);
        } else {
            assert_eq!(allocation_count(), 0);
            assert_eq!(allocated_bytes(), 0);
        }
    }

    #[test]
    fn uncounted_scope_suspends_counting() {
        let _outer = uncounted();
        let before = allocation_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        drop(v);
        assert_eq!(allocation_count(), before, "scoped allocs are invisible");
    }
}
