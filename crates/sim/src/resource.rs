//! Serially reusable hardware resources.
//!
//! A flash chip or channel services one operation at a time. [`Resource`]
//! tracks the time it becomes free; callers reserve spans in submission
//! order, which is exactly how an analytic discrete-event model computes
//! queueing delay without an explicit event per operation.

use conzone_types::{SimDuration, SimTime};

/// A serially reusable resource with first-come-first-served queueing.
///
/// ```
/// use conzone_sim::Resource;
/// use conzone_types::{SimDuration, SimTime};
///
/// let mut chip = Resource::new();
/// let op1 = chip.acquire(SimTime::ZERO, SimDuration::from_micros(32));
/// let op2 = chip.acquire(SimTime::ZERO, SimDuration::from_micros(32));
/// assert_eq!(op2.start, op1.end); // second op queues behind the first
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Resource {
    busy_until: SimTime,
}

/// A reserved span on a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the operation actually starts (after queueing).
    pub start: SimTime,
    /// When the operation completes and the resource frees.
    pub end: SimTime,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Resource {
        Resource {
            busy_until: SimTime::ZERO,
        }
    }

    /// Reserves the resource for `duration` starting no earlier than `now`,
    /// queueing behind any prior reservation.
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> Reservation {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        Reservation { start, end }
    }

    /// Reserves the resource starting no earlier than `earliest`, which may
    /// itself be later than `now` (e.g. waiting for data from another
    /// resource).
    pub fn acquire_after(&mut self, earliest: SimTime, duration: SimDuration) -> Reservation {
        self.acquire(earliest, duration)
    }

    /// When the resource next becomes free.
    #[inline]
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the resource is idle at `now`.
    #[inline]
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }
}

/// A bank of identical resources, e.g. all chips or all channels.
#[derive(Debug, Clone, Default)]
pub struct ResourceBank {
    resources: Vec<Resource>,
}

impl ResourceBank {
    /// Creates `n` idle resources.
    pub fn new(n: usize) -> ResourceBank {
        ResourceBank {
            resources: vec![Resource::new(); n],
        }
    }

    /// Number of resources in the bank.
    #[inline]
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the bank is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Reserves resource `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn acquire(&mut self, index: usize, now: SimTime, duration: SimDuration) -> Reservation {
        self.resources[index].acquire(now, duration)
    }

    /// When resource `index` next becomes free.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn free_at(&self, index: usize) -> SimTime {
        self.resources[index].free_at()
    }

    /// The latest free time across the bank (when everything drains).
    pub fn all_free_at(&self) -> SimTime {
        self.resources
            .iter()
            .map(Resource::free_at)
            .fold(SimTime::ZERO, SimTime::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_queueing() {
        let mut r = Resource::new();
        let a = r.acquire(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        assert_eq!(a.start, SimTime::from_nanos(100));
        assert_eq!(a.end, SimTime::from_nanos(150));
        // Submitted earlier in wall time but the resource is busy.
        let b = r.acquire(SimTime::from_nanos(120), SimDuration::from_nanos(30));
        assert_eq!(b.start, SimTime::from_nanos(150));
        assert_eq!(b.end, SimTime::from_nanos(180));
        // Submitted after the resource drained: starts immediately.
        let c = r.acquire(SimTime::from_nanos(500), SimDuration::from_nanos(10));
        assert_eq!(c.start, SimTime::from_nanos(500));
    }

    #[test]
    fn idle_checks() {
        let mut r = Resource::new();
        assert!(r.is_idle_at(SimTime::ZERO));
        r.acquire(SimTime::ZERO, SimDuration::from_nanos(10));
        assert!(!r.is_idle_at(SimTime::from_nanos(5)));
        assert!(r.is_idle_at(SimTime::from_nanos(10)));
        assert_eq!(r.free_at(), SimTime::from_nanos(10));
    }

    #[test]
    fn bank_tracks_independent_resources() {
        let mut bank = ResourceBank::new(2);
        assert_eq!(bank.len(), 2);
        bank.acquire(0, SimTime::ZERO, SimDuration::from_nanos(100));
        bank.acquire(1, SimTime::ZERO, SimDuration::from_nanos(40));
        assert_eq!(bank.free_at(0), SimTime::from_nanos(100));
        assert_eq!(bank.free_at(1), SimTime::from_nanos(40));
        assert_eq!(bank.all_free_at(), SimTime::from_nanos(100));
    }
}
