//! Discrete-event simulation kernel for the ConZone emulator.
//!
//! The emulator is an *analytic* DES: device models compute operation
//! completion times from serially reusable [`Resource`]s (chips, channels)
//! instead of stepping through micro-events, and host workload generators
//! advance through an [`EventQueue`]. Randomness comes from the
//! deterministic [`SimRng`], and latency distributions are collected in
//! [`LatencyHistogram`]s.
//!
//! ```
//! use conzone_sim::{EventQueue, LatencyHistogram, Resource, SimRng};
//! use conzone_types::{SimDuration, SimTime};
//!
//! // A one-resource pipeline: ten 32 us reads back to back.
//! let mut chip = Resource::new();
//! let mut lat = LatencyHistogram::new();
//! for _ in 0..10 {
//!     let r = chip.acquire(SimTime::ZERO, SimDuration::from_micros(32));
//!     lat.record(r.end - SimTime::ZERO);
//! }
//! assert_eq!(lat.max(), SimDuration::from_micros(320));
//! ```

// Unit tests assert freely; the `clippy::unwrap_used` deny (Cargo.toml
// `[lints]`) is meant for library code reachable from the simulator.
#![cfg_attr(test, allow(clippy::unwrap_used))]
// `counting-alloc` needs one `unsafe impl GlobalAlloc` in `alloc_guard`;
// everywhere else unsafe stays denied (and forbidden without the feature).
#![cfg_attr(not(feature = "counting-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "counting-alloc", deny(unsafe_code))]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc_guard;
pub mod export;
pub mod json;
pub mod profile;
mod queue;
mod resource;
mod rng;
mod span;
mod stats;
mod trace;

pub use queue::EventQueue;
pub use resource::{Reservation, Resource, ResourceBank};
pub use rng::SimRng;
pub use span::{attribute_spans, breakdown_from_spans, KindAttribution, SpanBuffer};
pub use stats::{LatencyHistogram, LatencySummary};
pub use trace::{MetricsSample, MetricsSampler, RingBufferSink};

#[cfg(test)]
mod proptests;
