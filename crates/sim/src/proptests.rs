//! Property-based tests of the DES kernel: histogram quantiles against
//! exact order statistics, resource reservation invariants, and event
//! ordering.

use proptest::prelude::*;

use crate::{EventQueue, LatencyHistogram, Resource, SimRng};
use conzone_types::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Histogram quantiles stay within the documented ~3 % relative error
    /// of the exact order statistic.
    #[test]
    fn quantiles_match_exact(samples in prop::collection::vec(1u64..10_000_000, 10..500)) {
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            hist.record(SimDuration::from_nanos(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let approx = hist.quantile(q).as_nanos() as f64;
            let err = (approx - exact).abs() / exact;
            prop_assert!(err <= 0.05, "q={q}: approx {approx} vs exact {exact}");
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.min().as_nanos(), sorted[0]);
        prop_assert_eq!(hist.max().as_nanos(), *sorted.last().unwrap());
        let exact_mean = samples.iter().sum::<u64>() / samples.len() as u64;
        let mean_err = (hist.mean().as_nanos() as i64 - exact_mean as i64).abs();
        prop_assert!(mean_err <= 1, "mean off by {mean_err}");
    }

    /// Merging histograms equals recording into one.
    #[test]
    fn merge_is_homomorphic(
        a in prop::collection::vec(1u64..1_000_000, 1..100),
        b in prop::collection::vec(1u64..1_000_000, 1..100),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hc = LatencyHistogram::new();
        for &s in &a {
            ha.record(SimDuration::from_nanos(s));
            hc.record(SimDuration::from_nanos(s));
        }
        for &s in &b {
            hb.record(SimDuration::from_nanos(s));
            hc.record(SimDuration::from_nanos(s));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.mean(), hc.mean());
        for q in [0.25, 0.5, 0.75, 0.99] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    /// A resource serialises any sequence of reservations: spans never
    /// overlap, never start before submission, and total busy time equals
    /// the sum of durations.
    #[test]
    fn resource_reservations_never_overlap(
        ops in prop::collection::vec((0u64..1000, 1u64..500), 1..100)
    ) {
        let mut resource = Resource::new();
        let mut last_end = SimTime::ZERO;
        let mut busy_total = 0u64;
        let mut now = SimTime::ZERO;
        for (advance, dur) in ops {
            now += SimDuration::from_nanos(advance);
            let r = resource.acquire(now, SimDuration::from_nanos(dur));
            prop_assert!(r.start >= now, "no time travel");
            prop_assert!(r.start >= last_end, "no overlap");
            prop_assert_eq!(r.end - r.start, SimDuration::from_nanos(dur));
            last_end = r.end;
            busy_total += dur;
        }
        prop_assert!(resource.free_at() >= SimTime::from_nanos(busy_total));
    }

    /// The event queue is a stable priority queue: pops come out sorted by
    /// time, FIFO within equal times.
    #[test]
    fn event_queue_is_stable_sorted(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t.as_nanos() >= lt, "time ordered");
                if t.as_nanos() == lt {
                    prop_assert!(i > li, "FIFO at equal times");
                }
            }
            prop_assert_eq!(times[i], t.as_nanos());
            last = Some((t.as_nanos(), i));
        }
    }

    /// The RNG's `below` is uniform enough over small bounds (chi-squared
    /// style sanity bound) and deterministic per seed.
    #[test]
    fn rng_below_uniform(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let bound = 8u64;
        let n = 8000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[rng.below(bound) as usize] += 1;
        }
        let expect = f64::from(n) / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            prop_assert!(dev < 0.15, "bucket {i}: {c} vs {expect}");
        }
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
