//! A time-ordered event queue for discrete-event loops.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use conzone_types::SimTime;

/// A min-heap of `(time, payload)` events with FIFO tie-breaking.
///
/// Events popping at equal times come out in insertion order, which keeps
/// multi-threaded host simulations deterministic.
///
/// ```
/// use conzone_sim::EventQueue;
/// use conzone_types::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    // xtask-effect: hot_path
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event.
    // xtask-effect: hot_path
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), 'c');
        q.push(SimTime::from_nanos(1), 'a');
        q.push(SimTime::from_nanos(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
    }
}
