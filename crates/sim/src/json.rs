//! Minimal JSON tree, writer and parser.
//!
//! The workspace has no serialization dependency (the vendored serde is a
//! marker stub), so the observability exporters build JSON through this
//! small value type. The parser exists so integration tests can round-trip
//! exported traces; it accepts standard JSON (no comments, no trailing
//! commas).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer that fits u64 exactly (kept exact for counters and
    /// timestamps).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64 (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::F64(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // xtask-lint: allow(truncating-cast) — char → u32 is lossless by definition
            c if (c as u32) < 0x20 => {
                // xtask-lint: allow(truncating-cast) — char → u32 is lossless by definition
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if x.is_finite() {
                    // Keep integral floats unambiguous and stable.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{:.1}", x)
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    // xtask-effect: cold — JSON parser error construction; the parser serves
    // config/report boundaries and never runs on the IO path (this also stops
    // the name-union resolver charging every `.expect(…)` call to it)
    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u hex"))?;
                            // Surrogate pairs are not needed by our own
                            // exports; map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte char from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_and_parser_round_trip() {
        let doc = Json::obj([
            ("name", Json::from("gc \"pass\"\n")),
            ("count", Json::from(42u64)),
            ("ratio", Json::from(0.125f64)),
            ("flag", Json::Bool(true)),
            (
                "items",
                Json::Arr(vec![Json::U64(1), Json::Null, Json::from("x")]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
        let items = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = u64::MAX - 3;
        let v = parse(&Json::U64(n).to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{} extra").is_err());
    }
}
