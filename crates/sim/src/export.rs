//! Exporters for collected traces and metrics.
//!
//! Three output formats, all writable with plain `std::fs::write`:
//!
//! * [`chrome_trace`] — the Chrome trace-event JSON format, loadable in
//!   Perfetto / `chrome://tracing`. GC passes become `B`/`E` duration
//!   slices; everything else becomes thread-scoped instant events.
//!   Timestamps are simulated nanoseconds converted to the format's
//!   microsecond unit.
//! * [`trace_jsonl`] — one JSON object per event, for ad-hoc analysis
//!   with `jq` or pandas.
//! * [`metrics_jsonl`] — one JSON object per [`MetricsSample`] interval,
//!   with every [`Counters`] field of the interval delta spelled out.
//! * [`span_jsonl`] / [`span_chrome_trace`] — the causal IO-lifecycle
//!   spans, as JSONL for analysis and as nested `X` (complete) slices for
//!   Perfetto.
//!
//! Plus small helpers ([`counters_json`], [`latency_summary_json`]) used
//! by the CLI's `--stats-json` report.

use conzone_types::{
    CellType, Counters, DeviceEvent, FaultKind, L2pOutcome, SpanRecord, TraceRecord,
};

use crate::json::Json;
use crate::stats::LatencySummary;
use crate::trace::MetricsSample;

fn cell_name(c: CellType) -> &'static str {
    match c {
        CellType::Slc => "slc",
        CellType::Tlc => "tlc",
        CellType::Qlc => "qlc",
    }
}

fn outcome_name(o: L2pOutcome) -> &'static str {
    match o {
        L2pOutcome::HitZone => "hit_zone",
        L2pOutcome::HitChunk => "hit_chunk",
        L2pOutcome::HitPage => "hit_page",
        L2pOutcome::Miss => "miss",
    }
}

/// The event's payload fields as JSON object entries.
fn event_args(event: &DeviceEvent) -> Vec<(&'static str, Json)> {
    match *event {
        DeviceEvent::BufferFlush { zone, slices, .. } => vec![
            ("zone", Json::U64(zone.raw())),
            ("slices", Json::U64(slices)),
        ],
        DeviceEvent::BufferConflict { zone } => vec![("zone", Json::U64(zone.raw()))],
        DeviceEvent::SlcCombine {
            zone,
            staged_slices,
        } => vec![
            ("zone", Json::U64(zone.raw())),
            ("staged_slices", Json::U64(staged_slices)),
        ],
        DeviceEvent::PatchSlice { zone, slices } => vec![
            ("zone", Json::U64(zone.raw())),
            ("slices", Json::U64(slices)),
        ],
        DeviceEvent::GcBegin { valid_slices } => {
            vec![("valid_slices", Json::U64(valid_slices))]
        }
        DeviceEvent::GcEnd { migrated_slices } => {
            vec![("migrated_slices", Json::U64(migrated_slices))]
        }
        DeviceEvent::L2pLookup { outcome } => {
            vec![("outcome", Json::from(outcome_name(outcome)))]
        }
        DeviceEvent::L2pEviction { count } => vec![("count", Json::U64(count))],
        DeviceEvent::L2pLogFlush => vec![],
        DeviceEvent::Media { cell, bytes, .. } => vec![
            ("cell", Json::from(cell_name(cell))),
            ("bytes", Json::U64(bytes)),
        ],
        DeviceEvent::ZoneReset { zone } => vec![("zone", Json::U64(zone.raw()))],
        DeviceEvent::FaultInjected { kind, chip, block } => vec![
            (
                "fault",
                Json::from(match kind {
                    FaultKind::Program => "program",
                    FaultKind::Erase => "erase",
                }),
            ),
            ("chip", Json::U64(chip)),
            ("block", Json::U64(block)),
        ],
        DeviceEvent::BlockRetired { chip, block } => {
            vec![("chip", Json::U64(chip)), ("block", Json::U64(block))]
        }
        DeviceEvent::ReadRetry { steps } => vec![("steps", Json::U64(u64::from(steps)))],
        DeviceEvent::PowerCut { lost_slices } => {
            vec![("lost_slices", Json::U64(lost_slices))]
        }
        DeviceEvent::RecoveryReplay {
            recovered_slices,
            lost_slices,
        } => vec![
            ("recovered_slices", Json::U64(recovered_slices)),
            ("lost_slices", Json::U64(lost_slices)),
        ],
        DeviceEvent::QueueSubmit { queue, backlog } => {
            vec![("queue", Json::U64(queue)), ("backlog", Json::U64(backlog))]
        }
        DeviceEvent::QueueArbitrate { queue, wait_ns } => {
            vec![("queue", Json::U64(queue)), ("wait_ns", Json::U64(wait_ns))]
        }
        DeviceEvent::QueueComplete { queue, inflight } => vec![
            ("queue", Json::U64(queue)),
            ("inflight", Json::U64(inflight)),
        ],
    }
}

/// Builds a Chrome trace-event document (`{"traceEvents": [...]}`) from
/// the recorded events, Perfetto-loadable.
///
/// Events are sorted by timestamp; GC begin/end pairs become duration
/// slices named `gc`, all other events thread-scoped instants. `ts` is in
/// microseconds per the format, converted from the simulated nanosecond
/// clock.
pub fn chrome_trace(records: &[TraceRecord]) -> Json {
    let mut sorted: Vec<&TraceRecord> = records.iter().collect();
    sorted.sort_by_key(|r| r.time);
    let mut events = Vec::with_capacity(sorted.len());
    for r in sorted {
        let (ph, name) = match r.event {
            DeviceEvent::GcBegin { .. } => ("B", "gc"),
            DeviceEvent::GcEnd { .. } => ("E", "gc"),
            // xtask-lint: allow(wildcard-match) — fallback delegates to kind_name, which event-coverage keeps total
            _ => ("i", r.event.kind_name()),
        };
        let mut fields = vec![
            ("name", Json::from(name)),
            ("ph", Json::from(ph)),
            ("ts", Json::F64(r.time.as_nanos() as f64 / 1000.0)),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(0)),
        ];
        if ph == "i" {
            // Thread-scoped instant, so Perfetto draws it on the track.
            fields.push(("s", Json::from("t")));
        }
        fields.push(("args", Json::obj(event_args(&r.event))));
        events.push(Json::obj(fields));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ns")),
    ])
}

/// One JSON object per event, newline-separated:
/// `{"ts_ns": …, "kind": "…", …fields}`.
pub fn trace_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let mut fields = vec![
            ("ts_ns", Json::U64(r.time.as_nanos())),
            ("kind", Json::from(r.event.kind_name())),
        ];
        fields.extend(event_args(&r.event));
        out.push_str(&Json::obj(fields).to_string());
        out.push('\n');
    }
    out
}

/// One JSON object per closed span, newline-separated:
/// `{"id": …, "parent": …, "io": …, "kind": "…", "start_ns": …,
/// "end_ns": …, "dur_ns": …}`.
pub fn span_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let line = Json::obj([
            ("id", Json::U64(s.id)),
            ("parent", Json::U64(s.parent)),
            ("io", Json::U64(s.io)),
            ("kind", Json::from(s.kind.name())),
            ("start_ns", Json::U64(s.start.as_nanos())),
            ("end_ns", Json::U64(s.end.as_nanos())),
            ("dur_ns", Json::U64(s.duration_nanos())),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Builds a Chrome trace-event document from closed spans, using `X`
/// (complete) events so Perfetto nests each IO's causal chain as stacked
/// slices on one track.
///
/// Events are sorted by start time with parents before their children
/// (ids follow open order, so the id is the tiebreak), which is what the
/// format requires for `X` events sharing a thread.
pub fn span_chrome_trace(spans: &[SpanRecord]) -> Json {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start, s.id));
    let mut events = Vec::with_capacity(sorted.len());
    for s in sorted {
        events.push(Json::obj([
            ("name", Json::from(s.kind.name())),
            ("ph", Json::from("X")),
            ("ts", Json::F64(s.start.as_nanos() as f64 / 1000.0)),
            ("dur", Json::F64(s.duration_nanos() as f64 / 1000.0)),
            ("pid", Json::U64(0)),
            ("tid", Json::U64(0)),
            (
                "args",
                Json::obj([
                    ("id", Json::U64(s.id)),
                    ("parent", Json::U64(s.parent)),
                    ("io", Json::U64(s.io)),
                ]),
            ),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ns")),
    ])
}

/// All counters as a JSON object, field names matching
/// [`Counters::named_fields`], plus the derived `write_amplification` and
/// `l2p_miss_rate` ratios.
pub fn counters_json(c: &Counters) -> Json {
    let mut fields: Vec<(&'static str, Json)> = c
        .named_fields()
        .into_iter()
        .map(|(name, value)| (name, Json::U64(value)))
        .collect();
    fields.push(("write_amplification", Json::F64(c.write_amplification())));
    fields.push(("l2p_miss_rate", Json::F64(c.l2p_miss_rate())));
    Json::obj(fields)
}

/// One JSON object per sampling interval, newline-separated:
/// `{"start_ns": …, "end_ns": …, "counters": {…delta fields}}`.
pub fn metrics_jsonl(samples: &[MetricsSample]) -> String {
    let mut out = String::new();
    for s in samples {
        let line = Json::obj([
            ("start_ns", Json::U64(s.start.as_nanos())),
            ("end_ns", Json::U64(s.end.as_nanos())),
            (
                "counters",
                Json::obj(
                    s.delta
                        .named_fields()
                        .into_iter()
                        .map(|(name, value)| (name, Json::U64(value))),
                ),
            ),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// A latency percentile summary as a JSON object (all values in ns).
pub fn latency_summary_json(s: &LatencySummary) -> Json {
    Json::obj([
        ("count", Json::U64(s.count)),
        ("mean_ns", Json::U64(s.mean.as_nanos())),
        ("min_ns", Json::U64(s.min.as_nanos())),
        ("p50_ns", Json::U64(s.p50.as_nanos())),
        ("p90_ns", Json::U64(s.p90.as_nanos())),
        ("p99_ns", Json::U64(s.p99.as_nanos())),
        ("p999_ns", Json::U64(s.p999.as_nanos())),
        ("max_ns", Json::U64(s.max.as_nanos())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use conzone_types::{FlushKind, SimTime, ZoneId};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                time: SimTime::from_nanos(1500),
                event: DeviceEvent::GcBegin { valid_slices: 8 },
            },
            TraceRecord {
                time: SimTime::from_nanos(500),
                event: DeviceEvent::BufferFlush {
                    zone: ZoneId(3),
                    kind: FlushKind::Premature,
                    slices: 2,
                },
            },
            TraceRecord {
                time: SimTime::from_nanos(2500),
                event: DeviceEvent::GcEnd { migrated_slices: 8 },
            },
            TraceRecord {
                time: SimTime::from_nanos(700),
                event: DeviceEvent::L2pLookup {
                    outcome: L2pOutcome::Miss,
                },
            },
        ]
    }

    #[test]
    fn chrome_trace_sorts_and_round_trips() {
        let doc = chrome_trace(&sample_records());
        let parsed = json::parse(&doc.to_string()).expect("exporter emits valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4);
        let ts: Vec<f64> = events
            .iter()
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted ts: {ts:?}");
        // ns → µs conversion.
        assert_eq!(ts[0], 0.5);
        // GC is a B/E pair named "gc"; instants carry scope "t".
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, ["i", "i", "B", "E"]);
        assert_eq!(events[2].get("name").unwrap().as_str(), Some("gc"));
        assert_eq!(events[0].get("s").unwrap().as_str(), Some("t"));
        assert!(events[2].get("s").is_none());
        // Args survive.
        let args = events[2].get("args").unwrap();
        assert_eq!(args.get("valid_slices").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn trace_jsonl_one_line_per_event() {
        let text = trace_jsonl(&sample_records());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ts_ns").unwrap().as_u64(), Some(1500));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("gc_begin"));
        let flush = json::parse(lines[1]).unwrap();
        assert_eq!(
            flush.get("kind").unwrap().as_str(),
            Some("buffer_flush_premature")
        );
        assert_eq!(flush.get("zone").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn metrics_jsonl_spells_out_deltas() {
        let mut delta = Counters::new();
        delta.host_write_bytes = 4096;
        delta.gc_runs = 1;
        let samples = vec![MetricsSample {
            start: SimTime::ZERO,
            end: SimTime::from_nanos(1_000_000),
            delta,
        }];
        let text = metrics_jsonl(&samples);
        let line = json::parse(text.trim()).unwrap();
        assert_eq!(line.get("start_ns").unwrap().as_u64(), Some(0));
        assert_eq!(line.get("end_ns").unwrap().as_u64(), Some(1_000_000));
        let c = line.get("counters").unwrap();
        assert_eq!(c.get("host_write_bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(c.get("gc_runs").unwrap().as_u64(), Some(1));
        assert_eq!(c.get("zone_resets").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn counters_json_includes_derived_ratios() {
        let mut c = Counters::new();
        c.host_write_bytes = 100;
        c.flash_program_bytes_tlc = 150;
        let j = counters_json(&c);
        assert_eq!(j.get("host_write_bytes").unwrap().as_u64(), Some(100));
        assert_eq!(j.get("write_amplification").unwrap().as_f64(), Some(1.5));
    }

    /// Every exporter serialises through [`Json`], so hostile strings —
    /// quotes, backslashes, control characters, non-ASCII — must escape on
    /// the way out and round-trip through our own parser.
    #[test]
    fn exported_strings_escape_and_round_trip() {
        let hostile = "quote\" back\\slash \n\t\u{8} héllo \u{1f}";
        let doc = Json::obj([(hostile, Json::from(hostile)), ("plain", Json::U64(1))]);
        let text = doc.to_string();
        assert!(!text.contains('\n'), "control chars must be escaped");
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\u001f"));
        let parsed = json::parse(&text).expect("escaped output parses back");
        assert_eq!(parsed.get(hostile).unwrap().as_str(), Some(hostile));
    }

    fn sample_spans() -> Vec<SpanRecord> {
        use conzone_types::SpanKind;
        vec![
            SpanRecord {
                id: 2,
                parent: 1,
                io: 1,
                kind: SpanKind::WritePath,
                start: SimTime::from_nanos(1_000),
                end: SimTime::from_nanos(3_000),
            },
            SpanRecord {
                id: 1,
                parent: 0,
                io: 1,
                kind: SpanKind::IoWrite,
                start: SimTime::from_nanos(1_000),
                end: SimTime::from_nanos(4_000),
            },
        ]
    }

    /// The span JSONL export keeps one record per line with a stable,
    /// documented field order — downstream `cut`/`jq` pipelines and the
    /// committed goldens rely on it never silently reordering.
    #[test]
    fn span_jsonl_has_stable_field_order() {
        let text = span_jsonl(&sample_spans());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed = json::parse(line).expect("line parses");
            let Json::Obj(pairs) = parsed else {
                panic!("span line must be an object")
            };
            let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                ["id", "parent", "io", "kind", "start_ns", "end_ns", "dur_ns"]
            );
        }
        // JSONL preserves buffer order (close order), not id order.
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("id").unwrap().as_u64(), Some(2));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("write_path"));
        assert_eq!(first.get("dur_ns").unwrap().as_u64(), Some(2_000));
    }

    /// The Chrome-trace span export must emit parents before children when
    /// they share a start time (the `X`-event nesting rule), converting
    /// nanoseconds to the format's microseconds.
    #[test]
    fn span_chrome_trace_orders_parents_first() {
        let doc = span_chrome_trace(&sample_spans());
        let parsed = json::parse(&doc.to_string()).expect("valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        // Same ts, so the root (lower id) must come first.
        let args0 = events[0].get("args").unwrap();
        assert_eq!(args0.get("id").unwrap().as_u64(), Some(1));
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("io_write"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(3.0));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("write_path"));
    }
}
