//! Model-checked concurrency tests for the trace ring's seqlock
//! protocol, run under the vendored loom stand-in:
//!
//! ```text
//! cargo test -p conzone-sim --features loom --test loom_trace
//! ```
//!
//! Every atomic access in `RingBufferSink` becomes a scheduling point
//! and the explorer tries every interleaving up to the preemption bound
//! (`LOOM_MAX_PREEMPTIONS`, default 2). The rings here are deliberately
//! tiny — `with_capacity_exact(1)`/`(2)` — so a wraparound collision
//! (two live writers claiming the same slot, indices one full lap
//! apart) is reachable within a few steps.

#![cfg(feature = "loom")]

use conzone_sim::RingBufferSink;
use conzone_types::{DeviceEvent, SimTime, TraceRecord, TraceSink};
use loom::sync::Arc;
use loom::thread;

/// A self-checking event: both payload words and the timestamp carry
/// the same value, so any torn record (words from two different
/// writes) fails the consistency check below.
fn probe(i: u64) -> DeviceEvent {
    DeviceEvent::RecoveryReplay {
        recovered_slices: i,
        lost_slices: i,
    }
}

/// Asserts the record is internally consistent and returns its id.
fn check(r: &TraceRecord) -> u64 {
    match r.event {
        DeviceEvent::RecoveryReplay {
            recovered_slices,
            lost_slices,
        } => {
            assert_eq!(recovered_slices, lost_slices, "torn payload: {r:?}");
            assert_eq!(
                r.time,
                SimTime::from_nanos(recovered_slices),
                "time word from a different record: {r:?}"
            );
            recovered_slices
        }
        ref other => panic!("foreign event decoded from the ring: {other:?}"),
    }
}

/// A writer lapping the ring rewrites a slot the drain is reading. The
/// old protocol read the sequence word once *before* the payload, so a
/// rewrite-after-check produced a frankenstein record; the seqlock
/// re-validation must discard it instead.
#[test]
fn concurrent_drain_never_yields_torn_records() {
    loom::model(|| {
        let sink = Arc::new(RingBufferSink::with_capacity_exact(2));
        // Single-threaded prefill: no scheduling branches yet.
        sink.record(SimTime::from_nanos(0), probe(0));
        sink.record(SimTime::from_nanos(1), probe(1));
        let writer = {
            let sink = Arc::clone(&sink);
            // Index 2 wraps onto slot 0 while the drain may be mid-read.
            thread::spawn(move || sink.record(SimTime::from_nanos(2), probe(2)))
        };
        for r in sink.drain() {
            check(&r);
        }
        writer.join().expect("writer thread");
        // Quiesced: everything is visible and the accounting balances.
        let settled = sink.drain();
        let ids: Vec<u64> = settled.iter().map(check).collect();
        assert_eq!(ids, vec![1, 2], "retained window after one overwrite");
        assert_eq!(sink.recorded(), 3);
        assert_eq!(sink.dropped(), 1);
    });
}

/// Two live writers land on the same slot (indices a full lap apart).
/// Without the claim sentinel their five stores interleave freely and
/// the slot can end up publishing a mixed record; with it the newest
/// record must survive intact and the older one be counted dropped.
#[test]
fn lapped_writers_never_interleave_on_one_slot() {
    loom::model(|| {
        let sink = Arc::new(RingBufferSink::with_capacity_exact(1));
        let spawn_writer = |i: u64| {
            let sink = Arc::clone(&sink);
            thread::spawn(move || sink.record(SimTime::from_nanos(i), probe(i)))
        };
        let a = spawn_writer(1);
        let b = spawn_writer(2);
        a.join().expect("writer a");
        b.join().expect("writer b");
        let settled = sink.drain();
        assert_eq!(settled.len(), 1, "exactly the newer record survives");
        let id = check(&settled[0]);
        assert!(id == 1 || id == 2, "record from outside the written set");
        assert_eq!(sink.recorded(), 2);
        assert_eq!(sink.dropped(), 1);
        assert_eq!(settled.len() as u64 + sink.dropped(), sink.recorded());
    });
}

/// `recorded()`/`dropped()` observed mid-flight never move backwards,
/// and after quiescing the drained count plus drops equals the total.
#[test]
fn drop_accounting_is_monotone_under_concurrency() {
    loom::model(|| {
        let sink = Arc::new(RingBufferSink::with_capacity_exact(1));
        let writer = {
            let sink = Arc::clone(&sink);
            thread::spawn(move || {
                sink.record(SimTime::from_nanos(7), probe(7));
                sink.record(SimTime::from_nanos(8), probe(8));
            })
        };
        // recorded() and dropped() each snapshot `head` independently,
        // so only per-counter monotonicity and earlier-drops ≤
        // later-records are coherent claims across separate calls.
        let r0 = sink.recorded();
        let d0 = sink.dropped();
        let r1 = sink.recorded();
        let d1 = sink.dropped();
        assert!(r1 >= r0, "recorded went backwards: {r0} -> {r1}");
        assert!(d1 >= d0, "dropped went backwards: {d0} -> {d1}");
        assert!(d0 <= r1, "drops outran the records that caused them");
        writer.join().expect("writer thread");
        let settled = sink.drain();
        for r in &settled {
            check(r);
        }
        assert_eq!(settled.len() as u64 + sink.dropped(), sink.recorded());
        assert_eq!(sink.recorded(), 2);
    });
}
