//! Criterion microbenchmarks of the emulator's hot paths.
//!
//! These measure *emulator* (host wall-clock) performance, not simulated
//! device performance: how fast the L2P cache, mapping table, flash timing
//! model and full device paths execute per operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use conzone_core::ConZone;
use conzone_flash::FlashArray;
use conzone_ftl::{L2pCache, MapBitmap, MappingTable};
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{
    CellType, ChipId, DeviceConfig, IoRequest, Lpn, MapGranularity, Ppa, SimTime, StorageDevice,
    ZonedDevice,
};

fn bench_l2p_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2p_cache");
    group.throughput(Throughput::Elements(1));

    group.bench_function("lookup_hit_page", |b| {
        let mut cache = L2pCache::new(3072, 1024, 4096);
        for i in 0..3000u64 {
            cache.insert(Lpn(i * 4096), MapGranularity::Page, false);
        }
        let mut i = 0u64;
        b.iter(|| {
            let lpn = Lpn((i % 3000) * 4096);
            i += 1;
            black_box(cache.lookup(lpn))
        });
    });

    group.bench_function("lookup_miss", |b| {
        let mut cache = L2pCache::new(3072, 1024, 4096);
        let mut i = 0u64;
        b.iter(|| {
            let lpn = Lpn(i % 1_000_000);
            i += 1;
            black_box(cache.lookup(lpn))
        });
    });

    group.bench_function("insert_evict_churn", |b| {
        let mut cache = L2pCache::new(3072, 1024, 4096);
        let mut i = 0u64;
        b.iter(|| {
            cache.insert(Lpn(i), MapGranularity::Page, false);
            i += 4096;
        });
    });
    group.finish();
}

fn bench_mapping_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_table");
    group.throughput(Throughput::Elements(1));

    group.bench_function("set_page_entry", |b| {
        let mut table = MappingTable::new(1 << 20, 1024, 4096);
        let mut i = 0u64;
        b.iter(|| {
            table.set(Lpn(i % (1 << 20)), Ppa(i), true);
            i += 1;
        });
    });

    group.bench_function("aggregate_chunk_1024", |b| {
        b.iter_with_setup(
            || {
                let mut table = MappingTable::new(4096, 1024, 4096);
                for i in 0..1024u64 {
                    table.set(Lpn(i), Ppa(i), true);
                }
                table
            },
            |mut table| black_box(table.try_aggregate_chunk(Lpn(0))),
        );
    });

    group.bench_function("bitmap_set_get", |b| {
        let mut bitmap = MapBitmap::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            let lpn = Lpn(i % (1 << 20));
            bitmap.set(lpn, MapGranularity::Chunk);
            i += 1;
            black_box(bitmap.get(lpn))
        });
    });
    group.finish();
}

fn bench_flash_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash_timing");
    group.throughput(Throughput::Elements(1));

    group.bench_function("timed_page_read", |b| {
        let mut array = FlashArray::new(&DeviceConfig::paper_evaluation());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let r = array.timed_page_read(t, ChipId(0), CellType::Slc, 16 * 1024);
            t = r.end;
            black_box(r.end)
        });
    });
    group.finish();
}

fn bench_device_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_paths");

    // Emulated 512 KiB sequential writes per second of host wall time.
    group.throughput(Throughput::Bytes(512 * 1024));
    group.bench_function("conzone_seq_write_512k", |b| {
        b.iter_with_setup(
            || (ConZone::new(DeviceConfig::paper_evaluation()), 0u64),
            |(mut dev, _)| {
                let mut t = SimTime::ZERO;
                for i in 0..8u64 {
                    let req = IoRequest::write(i * 512 * 1024, 512 * 1024);
                    t = dev.submit(t, &req).expect("write").finished;
                }
                black_box(t)
            },
        );
    });

    // Emulated 4 KiB random reads per second of host wall time.
    group.throughput(Throughput::Elements(256));
    group.bench_function("conzone_rand_read_4k_x256", |b| {
        let mut dev = ConZone::new(DeviceConfig::paper_evaluation());
        let fill = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
            .zone_bytes(16 << 20)
            .region(0, 64 << 20)
            .bytes_per_thread(64 << 20);
        let t0 = run_job(&mut dev, &fill).expect("fill").finished;
        let mut seed = 0u64;
        b.iter(|| {
            let job = FioJob::new(AccessPattern::RandRead, 4096)
                .region(0, 64 << 20)
                .ops_per_thread(256)
                .bytes_per_thread(u64::MAX)
                .seed(seed)
                .start_at(t0);
            seed += 1;
            black_box(run_job(&mut dev, &job).expect("read").kiops())
        });
    });
    group.finish();
}

/// The tracing tax on the hot write path: a detached [`Probe`] must cost
/// nothing (the `null_probe` case is the regression gate — it should stay
/// within ±2 % of `device_paths/conzone_seq_write_512k`, which has no
/// probe calls at all in the seed), and an attached ring sink should stay
/// cheap enough to leave on during figure runs.
fn bench_probe_overhead(c: &mut Criterion) {
    use conzone_sim::RingBufferSink;
    use conzone_types::Probe;
    use std::sync::Arc;

    let mut group = c.benchmark_group("probe_overhead");
    group.throughput(Throughput::Bytes(8 * 512 * 1024));

    let seq_burst = |mut dev: ConZone| {
        let mut t = SimTime::ZERO;
        for i in 0..8u64 {
            let req = IoRequest::write(i * 512 * 1024, 512 * 1024);
            t = dev.submit(t, &req).expect("write").finished;
        }
        t
    };

    group.bench_function("seq_write_null_probe", |b| {
        b.iter_with_setup(
            || {
                let mut dev = ConZone::new(DeviceConfig::paper_evaluation());
                dev.set_probe(Probe::disabled());
                dev
            },
            |dev| black_box(seq_burst(dev)),
        );
    });

    group.bench_function("seq_write_ring_sink", |b| {
        let sink = Arc::new(RingBufferSink::with_capacity(64 * 1024));
        b.iter_with_setup(
            || {
                let mut dev = ConZone::new(DeviceConfig::paper_evaluation());
                dev.set_probe(Probe::attached(sink.clone()));
                dev
            },
            |dev| black_box(seq_burst(dev)),
        );
    });
    group.finish();
}

fn bench_conflict_and_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("stress_paths");

    // The Fig. 6(b) conflict path: two zones fighting over one buffer.
    group.throughput(Throughput::Bytes(2 * 48 * 1024));
    group.bench_function("conflict_write_pair_48k", |b| {
        b.iter_with_setup(
            || {
                let mut dev = ConZone::new(DeviceConfig::paper_evaluation());
                // Prime both zones so the steady-state conflict cycle runs.
                let mut t = SimTime::ZERO;
                for &(zone, off) in &[(0u64, 0u64), (2, 0)] {
                    let req = IoRequest::write(zone * (16 << 20) + off, 48 * 1024);
                    t = dev.submit(t, &req).expect("prime").finished;
                }
                (dev, t, 48 * 1024u64)
            },
            |(mut dev, mut t, off)| {
                for &zone in &[0u64, 2] {
                    let req = IoRequest::write(zone * (16 << 20) + off, 48 * 1024);
                    t = dev.submit(t, &req).expect("conflict write").finished;
                }
                black_box(t)
            },
        );
    });

    // One full SLC GC pass (victim selection + migration + erase).
    group.bench_function("slc_gc_cycle", |b| {
        b.iter_with_setup(
            || {
                // Fill the SLC region with conflict churn so GC has work.
                let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
                let mut t = SimTime::ZERO;
                let zone = 1024 * 1024u64;
                'fill: for round in 0..128u64 {
                    for &z in &[0u64, 2] {
                        let off = z * zone + round * 4096;
                        if round * 4096 >= zone {
                            break 'fill;
                        }
                        let req = IoRequest::write(off, 4096);
                        t = dev.submit(t, &req).expect("fill").finished;
                    }
                }
                (dev, t)
            },
            |(mut dev, t)| {
                // Resets invalidate SLC data; the next allocation GCs.
                let c = dev.reset_zone(t, conzone_types::ZoneId(0)).expect("reset");
                black_box(c.finished)
            },
        );
    });

    // Legacy random-write path with device GC amortised in.
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("legacy_rand_write_4k", |b| {
        let mut dev = conzone_legacy::LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let cap = {
            use conzone_types::StorageDevice;
            dev.capacity_bytes()
        };
        let mut rng = conzone_sim::SimRng::new(3);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let off = rng.below(cap / 4096) * 4096;
            let req = IoRequest::write(off, 4096);
            t = dev.submit(t, &req).expect("write").finished;
            black_box(t)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_l2p_cache, bench_mapping_table, bench_flash_timing, bench_device_paths,
        bench_probe_overhead, bench_conflict_and_gc
}
criterion_main!(benches);
