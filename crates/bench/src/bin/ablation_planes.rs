//! Ablation: multi-plane dies and the write-buffer conflict penalty.
//!
//! We initially attributed our Fig. 6(b) overstatement (+148 % vs the
//! paper's +65 %) partly to modelling single-plane dies. This sweep tests
//! that hypothesis by re-running Fig. 6(b) with 1–4 planes per chip —
//! and *refutes* it: plane parallelism accelerates the no-conflict case
//! at least as much as the conflict case (two zones on different planes
//! of one die program concurrently), so the relative penalty does not
//! shrink. The remaining gap must come from controller-level overlap
//! (cache programming, internal staging SRAM) that no geometry knob
//! recovers — see EXPERIMENTS.md.

use conzone_bench::{print_expectations, print_table, ExpectedRelation};
use conzone_core::ConZone;
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{DeviceConfig, Geometry};

fn run_case(planes: usize, zones: [u64; 2]) -> (f64, f64) {
    let mut geometry = Geometry::consumer_1p5gb();
    geometry.planes_per_chip = planes;
    let cfg = DeviceConfig::builder(geometry).build().expect("config");
    let zone_bytes = cfg.zone_size_bytes();
    let mut dev = ConZone::new(cfg);
    let job = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
        .zone_bytes(zone_bytes)
        .threads(2)
        .with_thread_zones(vec![vec![zones[0]], vec![zones[1]]])
        .bytes_per_thread(zone_bytes);
    let r = run_job(&mut dev, &job).expect("run");
    (r.bandwidth_mibs(), r.waf())
}

fn main() {
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for planes in [1usize, 2, 4] {
        let (conflict_bw, conflict_waf) = run_case(planes, [0, 2]);
        let (clean_bw, _) = run_case(planes, [0, 1]);
        let gain = (clean_bw / conflict_bw - 1.0) * 100.0;
        gains.push(gain);
        rows.push(vec![
            planes.to_string(),
            format!("{conflict_bw:.0}"),
            format!("{clean_bw:.0}"),
            format!("{gain:+.0}%"),
            format!("{conflict_waf:.3}"),
        ]);
    }
    print_table(
        "Ablation: planes per chip vs the Fig. 6(b) conflict penalty",
        &[
            "planes",
            "conflict MiB/s",
            "no-conflict MiB/s",
            "no-conflict gain",
            "conflict waf",
        ],
        &rows,
    );
    println!("\npaper-reported gain on real hardware: ~+65 %");
    print_expectations(&[ExpectedRelation {
        claim: "plane parallelism does NOT close the conflict gap — a \
                negative result that narrows the deviation analysis",
        holds: gains.iter().all(|g| *g > 100.0),
        evidence: format!(
            "gains {:.0}% / {:.0}% / {:.0}% with 1 / 2 / 4 planes",
            gains[0], gains[1], gains[2]
        ),
    }]);
}
