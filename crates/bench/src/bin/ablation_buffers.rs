//! Ablation: number of shared write buffers.
//!
//! The paper's §II-B arithmetic — six F2FS logs need 6 × 384 KiB of
//! buffers but consumer devices only have ~1 MiB — motivates ConZone's
//! configurable buffer count. This sweep writes six zones round-robin
//! (the F2FS open-zone pattern) with 48 KiB sync granularity and shows
//! how conflicts, SLC traffic and bandwidth change from 1 to 6 buffers.

use conzone_bench::print_table;
use conzone_core::ConZone;
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{DeviceConfig, Geometry, StorageDevice};

fn main() {
    let zone_bytes = 16 * 1024 * 1024u64;
    let mut rows = Vec::new();
    for buffers in [1usize, 2, 3, 4, 6] {
        let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
            .write_buffers(buffers)
            .build()
            .expect("ablation config");
        let mut dev = ConZone::new(cfg);
        // Six threads, one zone each (zones 0..6), interleaved 48 KiB
        // writes — the §II-B worst case.
        let job = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
            .zone_bytes(zone_bytes)
            .threads(6)
            .with_thread_zones((0..6u64).map(|z| vec![z]).collect())
            .bytes_per_thread(zone_bytes / 2);
        let r = run_job(&mut dev, &job).expect("ablation run");
        rows.push(vec![
            buffers.to_string(),
            format!("{:.0}", r.bandwidth_mibs()),
            format!("{:.3}", r.waf()),
            r.counters.buffer_conflicts.to_string(),
            r.counters.premature_flushes.to_string(),
            format!(
                "{:.1}",
                r.counters.flash_program_bytes_slc as f64 / (1024.0 * 1024.0)
            ),
            dev.counters().gc_runs.to_string(),
        ]);
    }
    print_table(
        "Ablation: write-buffer count under 6 interleaved zone writers (48 KiB)",
        &[
            "buffers",
            "bw MiB/s",
            "waf",
            "conflicts",
            "premature",
            "slc MiB",
            "gc runs",
        ],
        &rows,
    );
    println!(
        "\nexpectation: conflicts and SLC traffic shrink as buffers approach the\n\
         six open logs; 6 buffers eliminate contention entirely (paper §II-B)."
    );
}
