//! Table II: media access latencies.
//!
//! Measures one program and one read per media type on a live flash array
//! (channel bandwidth disabled so the bare media latency is visible) and
//! compares against the paper's published values.

use conzone_bench::print_table;
use conzone_flash::FlashArray;
use conzone_types::{CellType, ChipId, DeviceConfig, Geometry, SimTime};

fn measure(cell: CellType) -> (f64, f64) {
    let cfg = DeviceConfig::builder(Geometry::tiny())
        .chunk_bytes(256 * 1024)
        .normal_cell(if cell == CellType::Slc {
            CellType::Tlc // normal region must be MLC; SLC measured in its own region
        } else {
            cell
        })
        .model_channel_bandwidth(false)
        .build()
        .expect("table2 config");
    let mut array = FlashArray::new(&cfg);

    let (block, program_us) = if cell == CellType::Slc {
        let out = array
            .program_slc(SimTime::ZERO, ChipId(0), 0, 1, None)
            .expect("slc program");
        (0usize, (out.finish - SimTime::ZERO).as_micros_f64())
    } else {
        let block = cfg.geometry.slc_blocks_per_chip;
        let out = array
            .program_unit(SimTime::ZERO, ChipId(0), block, None)
            .expect("mlc program");
        (block, (out.finish - SimTime::ZERO).as_micros_f64())
    };

    let start = SimTime::from_nanos(100_000_000);
    let base = array.block_base(ChipId(0), block);
    let read = array.read_slices(start, &[base]).expect("read");
    let read_us = (read.finish - start).as_micros_f64();
    (program_us, read_us)
}

fn main() {
    let expected = [
        (CellType::Slc, 75.0, 20.0),
        (CellType::Tlc, 937.5, 32.0),
        (CellType::Qlc, 6400.0, 85.0),
    ];
    let mut rows = Vec::new();
    let mut all_match = true;
    for (cell, prog_paper, read_paper) in expected {
        let (prog, read) = measure(cell);
        let ok = (prog - prog_paper).abs() < 0.01 && (read - read_paper).abs() < 0.01;
        all_match &= ok;
        rows.push(vec![
            cell.to_string().to_uppercase(),
            format!("{prog:.1}"),
            format!("{prog_paper:.1}"),
            format!("{read:.1}"),
            format!("{read_paper:.1}"),
            if ok { "ok" } else { "MISMATCH" }.to_string(),
        ]);
    }
    print_table(
        "Table II: media latency (us), measured vs paper",
        &[
            "media",
            "program (measured)",
            "program (paper)",
            "read (measured)",
            "read (paper)",
            "check",
        ],
        &rows,
    );
    println!(
        "\n{}",
        if all_match {
            "all media latencies match Table II exactly"
        } else {
            "some latencies deviate from Table II"
        }
    );
}
