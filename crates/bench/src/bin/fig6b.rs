//! Fig. 6(b): the cost of write-buffer conflicts.
//!
//! Two threads each write one full zone with 48 KiB granularity (below the
//! 96 KiB programming unit, so every buffer eviction is premature). Odd
//! and even zones map to the two write buffers; when both threads write
//! zones of the *same parity* they share one buffer and every switch
//! evicts the other thread's sub-unit data into SLC. The paper reports
//! ~65 % higher bandwidth and ~24 % lower write amplification without
//! conflicts.

use conzone_bench::{conzone_device, print_expectations, print_table, ExpectedRelation};
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{MapGranularity, SearchStrategy};

fn run_case(zones: [u64; 2]) -> (f64, f64, u64) {
    let mut dev = conzone_device(MapGranularity::Zone, SearchStrategy::Bitmap);
    let zone_bytes = 16 * 1024 * 1024u64;
    let job = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
        .zone_bytes(zone_bytes)
        .threads(2)
        .with_thread_zones(vec![vec![zones[0]], vec![zones[1]]])
        .bytes_per_thread(zone_bytes);
    let r = run_job(&mut dev, &job).expect("fig6b run");
    (r.bandwidth_mibs(), r.waf(), r.counters.buffer_conflicts)
}

fn main() {
    // Same parity: zones 0 and 2 share buffer 0 → conflicts.
    let (bw_conflict, waf_conflict, conflicts) = run_case([0, 2]);
    // Different parity: zones 0 and 1 use separate buffers.
    let (bw_clean, waf_clean, clean_conflicts) = run_case([0, 1]);

    print_table(
        "Fig. 6(b): write-buffer conflicts (2 threads, 48 KiB writes, one zone each)",
        &["case", "bandwidth MiB/s", "waf", "buffer conflicts"],
        &[
            vec![
                "conflict (same parity)".into(),
                format!("{bw_conflict:.0}"),
                format!("{waf_conflict:.3}"),
                conflicts.to_string(),
            ],
            vec![
                "no conflict (split parity)".into(),
                format!("{bw_clean:.0}"),
                format!("{waf_clean:.3}"),
                clean_conflicts.to_string(),
            ],
        ],
    );

    let bw_gain = (bw_clean / bw_conflict - 1.0) * 100.0;
    let waf_drop = (1.0 - waf_clean / waf_conflict) * 100.0;
    println!(
        "\nno-conflict bandwidth gain: {bw_gain:+.1} % (paper: ~+65 %)\n\
         write-amplification reduction: {waf_drop:.1} % (paper: ~24 %)"
    );

    print_expectations(&[
        ExpectedRelation {
            claim: "conflicts cause premature flushes and extra SLC writes",
            holds: conflicts > 0 && clean_conflicts == 0,
            evidence: format!("{conflicts} vs {clean_conflicts} conflicts"),
        },
        ExpectedRelation {
            claim: "no-conflict bandwidth is substantially higher (paper ~65 %)",
            holds: bw_gain > 30.0,
            evidence: format!("{bw_gain:+.1} %"),
        },
        ExpectedRelation {
            claim: "no-conflict write amplification is lower (paper ~24 %)",
            holds: waf_drop > 10.0,
            evidence: format!("-{waf_drop:.1} %"),
        },
    ]);
}
