//! Table I: the emulator feature matrix.
//!
//! Unlike the paper's static table, each cell here is probed from the live
//! device models where possible: media latencies below the virtualization
//! floor, heterogeneous cell types, configurable write buffers, an L2P
//! cache, and the mapping scheme.

use conzone_bench::{conzone_device, femu_device, legacy_device, print_table};
use conzone_types::{CellType, MapGranularity, SearchStrategy, StorageDevice};

fn main() {
    let cz = conzone_device(MapGranularity::Zone, SearchStrategy::Bitmap);
    let fm = femu_device();
    let lg = legacy_device();

    // Probe: low-latency media means the model can express sub-25 µs reads
    // (SLC) without a virtualization overhead floor above that.
    let cz_low_latency = cz.config().timings.slc.read.as_micros_f64() <= 25.0
        && cz.config().host_overhead.as_micros_f64() < 20.0;
    // FEMU's jitter model has a ~25 µs median per I/O on top of media.
    let femu_low_latency = false;

    // Probe: heterogeneous media = SLC region + multi-level normal region.
    let cz_hetero =
        cz.config().geometry.slc_blocks_per_chip > 0 && cz.config().normal_cell != CellType::Slc;

    let rows = vec![
        vec![
            "Low-latency media".to_string(),
            "No (KVM floor)".into(),
            "No".into(),
            "Yes".into(),
            if cz_low_latency { "Yes" } else { "No" }.into(),
        ],
        vec![
            "Heterogeneous media".to_string(),
            "No".into(),
            "No".into(),
            "No".into(),
            if cz_hetero {
                "Yes (SLC + TLC/QLC)"
            } else {
                "No"
            }
            .into(),
        ],
        vec![
            "# of write buffers".to_string(),
            "Yes".into(),
            "No".into(),
            "No".into(),
            format!("Yes ({} configured)", cz.config().write_buffers),
        ],
        vec![
            "L2P cache".to_string(),
            "No".into(),
            "No".into(),
            "No".into(),
            format!("Yes ({} entries)", cz.config().l2p_cache_entries()),
        ],
        vec![
            "L2P mapping".to_string(),
            "No".into(),
            "Zone".into(),
            "No".into(),
            format!("Hybrid (page/chunk/zone, {})", cz.config().search_strategy),
        ],
    ];
    print_table(
        "Table I: zoned flash storage emulators",
        &[
            "feature",
            "FEMU",
            "ConfZNS",
            "NVMeVirt",
            "ConZone (this repo)",
        ],
        &rows,
    );

    println!(
        "\nlive models in this repository: {} (full internals), {} (gap model), {} (page-mapped baseline)",
        cz.model_name(),
        fm.model_name(),
        lg.model_name()
    );
    println!(
        "femu gap model: channel bandwidth {}, vm jitter median ~25 us",
        if fm.config().model_channel_bandwidth {
            "modelled"
        } else {
            "not modelled"
        }
    );
    let _ = femu_low_latency;
}
