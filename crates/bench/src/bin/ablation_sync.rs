//! Ablation: synchronous writes and the SLC secondary buffer (paper
//! §II-A).
//!
//! "Due to the lack of power loss protection, consumer systems frequently
//! issue synchronous writes" — every fsync forces sub-programming-unit
//! data out of the volatile buffer. ConZone absorbs it with 4 KiB SLC
//! partial programming; a device without the SLC region (the FEMU-style
//! model) must pad whole TLC units. This sweep measures both across sync
//! write sizes.

use conzone_bench::{print_expectations, print_table, ExpectedRelation};
use conzone_core::ConZone;
use conzone_femu::FemuZns;
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{DeviceConfig, Geometry, StorageDevice, ZonedDevice};

fn run_sync<D: StorageDevice>(dev: &mut D, zone_bytes: u64, bs: u64) -> (f64, f64, f64) {
    let volume = 32u64 << 20;
    let job = FioJob::new(AccessPattern::SeqWrite, bs)
        .zone_bytes(zone_bytes)
        .region(0, 64 << 20)
        .bytes_per_thread(volume)
        .fsync_every(1);
    let r = run_job(dev, &job).expect("sync run");
    (r.bandwidth_mibs(), r.latency.p50.as_micros_f64(), r.waf())
}

fn main() {
    let mut rows = Vec::new();
    for bs_kib in [4u64, 16, 48, 96] {
        let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
            .build()
            .expect("config");
        let mut cz = ConZone::new(cfg.clone());
        let cz_zone = cz.zone_size();
        let (cz_bw, cz_lat, cz_waf) = run_sync(&mut cz, cz_zone, bs_kib * 1024);
        let mut fm = FemuZns::new(cfg);
        let femu_zone = fm.zone_size();
        let (fm_bw, fm_lat, fm_waf) = run_sync(&mut fm, femu_zone, bs_kib * 1024);
        rows.push(vec![
            format!("{bs_kib} KiB"),
            format!("{cz_bw:.0}"),
            format!("{cz_lat:.0}"),
            format!("{cz_waf:.2}"),
            format!("{fm_bw:.0}"),
            format!("{fm_lat:.0}"),
            format!("{fm_waf:.2}"),
        ]);
    }
    print_table(
        "Ablation: fsync-per-write (sync I/O), with vs without an SLC buffer",
        &[
            "sync write",
            "ConZone MiB/s",
            "p50 us",
            "waf",
            "no-SLC MiB/s",
            "p50 us",
            "waf",
        ],
        &rows,
    );

    // The headline cell: 4 KiB sync writes.
    let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
        .build()
        .expect("config");
    let mut cz = ConZone::new(cfg.clone());
    let cz_zone = cz.zone_size();
    let (_, cz4_lat, cz4_waf) = run_sync(&mut cz, cz_zone, 4096);
    let mut fm = FemuZns::new(cfg);
    let femu_zone = fm.zone_size();
    let (_, fm4_lat, fm4_waf) = run_sync(&mut fm, femu_zone, 4096);

    print_expectations(&[
        ExpectedRelation {
            claim: "SLC partial programming makes small sync writes an order \
                    of magnitude faster (75 us vs a padded 937.5 us TLC unit)",
            holds: fm4_lat > cz4_lat * 4.0,
            evidence: format!("p50 {cz4_lat:.0} vs {fm4_lat:.0} us at 4 KiB"),
        },
        ExpectedRelation {
            claim: "and an order of magnitude less write amplification",
            holds: fm4_waf > cz4_waf * 4.0,
            evidence: format!("waf {cz4_waf:.2} vs {fm4_waf:.2} at 4 KiB"),
        },
    ]);
    println!(
        "\nthis is the §II-A design argument in numbers: the SLC secondary\n\
         buffer exists because consumer workloads fsync constantly."
    );
}
