//! `bench_snapshot`: one schema-versioned performance snapshot of the
//! emulator *itself* — the committed `BENCH_<date>.json` trajectory
//! (ROADMAP item 2, `docs/internals.md` §9).
//!
//! Unlike the figure binaries, which measure the modelled device, this one
//! measures the model: simulated operations per wall-clock second on two
//! reference workloads, the wall cost of attaching the observability layer
//! (which must not change simulated results at all), per-subsystem wall
//! shares from the `selfprof` profiler when compiled in, and peak RSS.
//!
//! ```text
//! cargo run --release -p conzone-bench --features selfprof --bin bench_snapshot -- \
//!     [--smoke] [--out BENCH_2026-08-08.json]
//! ```
//!
//! `--smoke` shrinks the workloads for CI; the committed trajectory uses
//! the full scale. Emitted JSON is parseable by `conzone_sim::json` and
//! validated by `cargo xtask bench`.

use std::sync::Arc;
use std::time::Instant;

use conzone_bench::conzone_device;
use conzone_core::{ArbiterKind, ConZone, QueueFrontEnd};
use conzone_host::{
    run_job, run_tenants, AccessPattern, FioJob, JobReport, MultiReport, QdOptions, TenantSpec,
};
use conzone_sim::json::Json;
use conzone_sim::{alloc_guard, profile, RingBufferSink, SpanBuffer};
use conzone_types::{
    IoRequest, MapGranularity, Probe, SearchStrategy, SimDuration, SimTime, StorageDevice,
};

/// Schema tag of the emitted JSON; bump on any incompatible shape change.
const SCHEMA: &str = "conzone-bench/1";

/// Workload scale: the committed trajectory uses `FULL`, CI uses `SMOKE`.
///
/// `reps` repeats each measured run on a fresh device and averages the
/// wall time — single runs finish in milliseconds, where scheduler noise
/// would swamp the trajectory.
struct Scale {
    seq_bytes: u64,
    read_fill_bytes: u64,
    read_range: u64,
    read_ops: u64,
    qd_ops_per_tenant: u64,
    reps: u32,
    guard_seq_warmup_ops: u64,
    guard_seq_ops: u64,
    guard_read_warmup_ops: u64,
    guard_read_ops: u64,
    guard_qd_warmup_ops: u64,
    guard_qd_ops: u64,
}

const FULL: Scale = Scale {
    seq_bytes: 1 << 30,
    read_fill_bytes: 256 << 20,
    read_range: 128 << 20,
    read_ops: 100_000,
    qd_ops_per_tenant: 50_000,
    reps: 5,
    guard_seq_warmup_ops: 1900,
    guard_seq_ops: 1000,
    guard_read_warmup_ops: 20_000,
    guard_read_ops: 50_000,
    guard_qd_warmup_ops: 20_000,
    guard_qd_ops: 50_000,
};

const SMOKE: Scale = Scale {
    seq_bytes: 16 << 20,
    read_fill_bytes: 16 << 20,
    read_range: 8 << 20,
    read_ops: 2_000,
    qd_ops_per_tenant: 1_000,
    reps: 1,
    guard_seq_warmup_ops: 32,
    guard_seq_ops: 32,
    guard_read_warmup_ops: 1_000,
    guard_read_ops: 1_000,
    guard_qd_warmup_ops: 1_000,
    guard_qd_ops: 1_000,
};

fn device() -> ConZone {
    conzone_device(MapGranularity::Zone, SearchStrategy::Bitmap)
}

fn seq_job(bytes: u64, zone_bytes: u64) -> FioJob {
    FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
        .zone_bytes(zone_bytes)
        .region(0, bytes)
        .bytes_per_thread(bytes)
}

/// One measured workload: the (deterministic, rep-invariant) job report
/// plus the average wall seconds one run took.
struct Measured {
    report: JobReport,
    wall_seconds: f64,
}

/// The sequential-write reference workload, optionally with the full
/// observability layer (span sink + event probe) attached. Each rep uses
/// a fresh device; wall time is the per-run average.
fn run_seqwrite(scale: &Scale, instrumented: bool) -> (Measured, u64) {
    let mut total_wall = 0.0;
    let mut last: Option<(JobReport, u64)> = None;
    for _ in 0..scale.reps {
        let mut dev = device();
        let zone_bytes = dev.config().zone_size_bytes();
        let spans = Arc::new(SpanBuffer::with_capacity(1 << 22));
        if instrumented {
            dev.set_span_sink(spans.clone());
            dev.set_probe(Probe::attached(Arc::new(RingBufferSink::with_capacity(
                1 << 22,
            ))));
        }
        let t0 = Instant::now();
        let report = run_job(&mut dev, &seq_job(scale.seq_bytes, zone_bytes)).expect("seqwrite");
        total_wall += t0.elapsed().as_secs_f64();
        last = Some((report, spans.recorded()));
    }
    let (report, spans_recorded) = last.expect("reps >= 1");
    (
        Measured {
            report,
            wall_seconds: total_wall / f64::from(scale.reps),
        },
        spans_recorded,
    )
}

/// The random-read reference workload (fill, then measure reads only).
fn run_randread(scale: &Scale) -> Measured {
    let mut total_wall = 0.0;
    let mut last: Option<JobReport> = None;
    for _ in 0..scale.reps {
        let mut dev = device();
        let zone_bytes = dev.config().zone_size_bytes();
        let fill = run_job(&mut dev, &seq_job(scale.read_fill_bytes, zone_bytes)).expect("fill");
        let job = FioJob::new(AccessPattern::RandRead, 4096)
            .region(0, scale.read_range)
            .ops_per_thread(scale.read_ops)
            .bytes_per_thread(u64::MAX)
            .seed(7)
            .start_at(fill.finished);
        let t0 = Instant::now();
        let report = run_job(&mut dev, &job).expect("randread");
        total_wall += t0.elapsed().as_secs_f64();
        last = Some(report);
    }
    Measured {
        report: last.expect("reps >= 1"),
        wall_seconds: total_wall / f64::from(scale.reps),
    }
}

/// The queue-pair reference workload: two tenants of 4 KiB random reads
/// at queue depth 8 behind a round-robin front end with a non-zero fetch
/// cost, so the snapshot tracks the asynchronous driver's wall throughput
/// (arbitration, slab reuse and event-queue churn included), not just the
/// synchronous path's.
fn run_qd(scale: &Scale) -> (MultiReport, f64) {
    let mut total_wall = 0.0;
    let mut last: Option<MultiReport> = None;
    for _ in 0..scale.reps {
        let mut dev = device();
        let zone_bytes = dev.config().zone_size_bytes();
        let fill = run_job(&mut dev, &seq_job(scale.read_fill_bytes, zone_bytes)).expect("fill");
        let tenant = |name: &str, seed: u64| {
            let job = FioJob::new(AccessPattern::RandRead, 4096)
                .region(0, scale.read_range)
                .ops_per_thread(scale.qd_ops_per_tenant)
                .bytes_per_thread(u64::MAX)
                .queue_depth(8)
                .seed(seed)
                .start_at(fill.finished);
            TenantSpec::new(name, job)
        };
        let specs = [tenant("a", 7), tenant("b", 11)];
        let opts = QdOptions {
            fetch_cost: SimDuration::from_nanos(500),
            ..QdOptions::default()
        };
        let t0 = Instant::now();
        let report = run_tenants(&mut dev, &specs, &opts).expect("qd randread");
        total_wall += t0.elapsed().as_secs_f64();
        last = Some(report);
    }
    (last.expect("reps >= 1"), total_wall / f64::from(scale.reps))
}

/// One steady-state allocation guard result: `warmup_ops` operations fault
/// in scratch capacity and cache slabs, then `measured_ops` operations must
/// not touch the global allocator at all. Only meaningful when the
/// `counting-alloc` feature is compiled in (`cargo xtask bench` passes it);
/// without it the loops still run but count nothing.
struct AllocGuard {
    name: &'static str,
    warmup_ops: u64,
    measured_ops: u64,
    allocations: u64,
    /// SLC garbage-collection passes inside the measured window — proves
    /// GC itself (reachable from the write hot path) ran allocation-free,
    /// rather than merely not running.
    gc_runs: u64,
}

impl AllocGuard {
    fn json(&self) -> Json {
        let per_op = if self.measured_ops > 0 {
            self.allocations as f64 / self.measured_ops as f64
        } else {
            0.0
        };
        Json::obj([
            ("name", Json::from(self.name)),
            ("warmup_ops", Json::U64(self.warmup_ops)),
            ("measured_ops", Json::U64(self.measured_ops)),
            ("allocations", Json::U64(self.allocations)),
            ("allocations_per_op", Json::F64(per_op)),
            ("gc_runs", Json::U64(self.gc_runs)),
        ])
    }
}

/// Sequential-write guard: direct 512 KiB `submit` calls (no `run_job`
/// harness, whose per-run setup allocates) over a fresh device, each
/// followed by a flush — the paper's synchronous-write pattern the SLC
/// secondary buffer exists for (§II-A). Every flush premature-flushes the
/// sub-unit remainder into SLC, so at full scale the region fills and GC
/// runs inside the measured window; GC is part of the steady-state write
/// path and must be allocation-free too. Warmup deliberately extends past
/// the *first* GC pass: one-time capacity growth (and, under `selfprof`,
/// first-visit profiler nodes) belongs to warmup, recurring GC to the
/// measured window.
fn guard_seqwrite(scale: &Scale) -> AllocGuard {
    let mut dev = device();
    let block = 512 * 1024u64;
    let mut offset = 0u64;
    let mut now = SimTime::ZERO;
    for _ in 0..scale.guard_seq_warmup_ops {
        let c = dev.submit(now, &IoRequest::write(offset, block));
        now = c.expect("guard seqwrite warmup").finished;
        now = dev.flush(now).expect("guard flush warmup").finished;
        offset += block;
    }
    let gc_before = dev.counters().gc_runs;
    let before = alloc_guard::allocation_count();
    for _ in 0..scale.guard_seq_ops {
        let c = dev.submit(now, &IoRequest::write(offset, block));
        now = c.expect("guard seqwrite").finished;
        now = dev.flush(now).expect("guard flush").finished;
        offset += block;
    }
    let allocations = alloc_guard::allocation_count() - before;
    AllocGuard {
        name: "seqwrite-512k",
        warmup_ops: scale.guard_seq_warmup_ops,
        measured_ops: scale.guard_seq_ops,
        allocations,
        gc_runs: dev.counters().gc_runs - gc_before,
    }
}

/// Random-read guard: fill the read range, then direct seeded 4 KiB reads.
/// The fill phase may allocate freely; the measured reads — L2P lookups,
/// mapping fetches, flash data reads — must not. The xorshift sequence
/// here only spreads offsets; it need not match `run_job`'s generator.
fn guard_randread(scale: &Scale) -> AllocGuard {
    let mut dev = device();
    let zone_bytes = dev.config().zone_size_bytes();
    let fill = run_job(&mut dev, &seq_job(scale.read_fill_bytes, zone_bytes)).expect("guard fill");
    let mut now = fill.finished;
    let slots = scale.read_range / 4096;
    let mut state = 7u64 ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..scale.guard_read_warmup_ops {
        let off = (next() % slots) * 4096;
        let c = dev.submit(now, &IoRequest::read(off, 4096));
        now = c.expect("guard randread warmup").finished;
    }
    let before = alloc_guard::allocation_count();
    for _ in 0..scale.guard_read_ops {
        let off = (next() % slots) * 4096;
        let c = dev.submit(now, &IoRequest::read(off, 4096));
        now = c.expect("guard randread").finished;
    }
    AllocGuard {
        name: "randread-4k",
        warmup_ops: scale.guard_read_warmup_ops,
        measured_ops: scale.guard_read_ops,
        allocations: alloc_guard::allocation_count() - before,
        gc_runs: 0,
    }
}

/// Queue-pair guard: the new submission/arbitration entry points —
/// doorbell, arbiter pick, fetch-stage acquire, then the device submit —
/// driven directly across two queues. After warmup (which faults in the
/// fetch resource's history and the L2P/scratch slabs) every granted
/// command must reach the device without touching the global allocator.
fn guard_qd(scale: &Scale) -> AllocGuard {
    let mut dev = device();
    let zone_bytes = dev.config().zone_size_bytes();
    let fill = run_job(&mut dev, &seq_job(scale.read_fill_bytes, zone_bytes)).expect("guard fill");
    let mut fe = QueueFrontEnd::new(
        2,
        SimDuration::from_nanos(500),
        ArbiterKind::RoundRobin.build(&[1, 1]),
    );
    let mut now = fill.finished;
    let slots = scale.read_range / 4096;
    let mut state = 11u64 ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut step = |dev: &mut ConZone, fe: &mut QueueFrontEnd, now: SimTime, q: usize| {
        fe.doorbell(q);
        let (_, at) = fe.grant(now).expect("a doorbell is pending");
        let off = (next() % slots) * 4096;
        let c = dev.submit(at, &IoRequest::read(off, 4096));
        c.expect("guard qd read").finished
    };
    for i in 0..scale.guard_qd_warmup_ops {
        now = step(&mut dev, &mut fe, now, (i & 1) as usize);
    }
    let before = alloc_guard::allocation_count();
    for i in 0..scale.guard_qd_ops {
        now = step(&mut dev, &mut fe, now, (i & 1) as usize);
    }
    AllocGuard {
        name: "qd-arbitrate-4k",
        warmup_ops: scale.guard_qd_warmup_ops,
        measured_ops: scale.guard_qd_ops,
        allocations: alloc_guard::allocation_count() - before,
        gc_runs: 0,
    }
}

fn ops_per_wall_second(m: &Measured) -> f64 {
    if m.wall_seconds > 0.0 {
        m.report.ops as f64 / m.wall_seconds
    } else {
        f64::INFINITY
    }
}

fn workload_json(name: &str, m: &Measured) -> Json {
    let sim_seconds = m.report.duration().as_nanos() as f64 / 1e9;
    Json::obj([
        ("name", Json::from(name)),
        ("sim_ops", Json::U64(m.report.ops)),
        ("sim_bytes", Json::U64(m.report.bytes)),
        ("sim_seconds", Json::F64(sim_seconds)),
        ("wall_seconds", Json::F64(m.wall_seconds)),
        ("ops_per_wall_second", Json::F64(ops_per_wall_second(m))),
    ])
}

/// Same shape for the queue-pair workload, plus the conservation bit
/// (per-tenant counters summing to the device-wide delta).
fn qd_workload_json(name: &str, m: &MultiReport, wall_seconds: f64) -> Json {
    let sim_seconds = m.duration().as_nanos() as f64 / 1e9;
    let ops_per_wall = if wall_seconds > 0.0 {
        m.ops as f64 / wall_seconds
    } else {
        f64::INFINITY
    };
    Json::obj([
        ("name", Json::from(name)),
        ("sim_ops", Json::U64(m.ops)),
        ("sim_bytes", Json::U64(m.bytes)),
        ("sim_seconds", Json::F64(sim_seconds)),
        ("wall_seconds", Json::F64(wall_seconds)),
        ("ops_per_wall_second", Json::F64(ops_per_wall)),
        ("tenants", Json::U64(m.tenants.len() as u64)),
        (
            "tenants_sum_consistent",
            Json::Bool(m.tenants_sum_consistent()),
        ),
    ])
}

/// Per-top-level-scope wall shares from the folded profile: each folded
/// line carries *self* nanoseconds, so summing lines by their root frame
/// yields inclusive time per subsystem entry point.
fn profile_shares(folded: &str) -> Vec<(String, u64)> {
    let mut by_root: Vec<(String, u64)> = Vec::new();
    for line in folded.lines() {
        let Some((path, ns)) = line.rsplit_once(' ') else {
            continue;
        };
        let root = path.split(';').next().unwrap_or(path).to_string();
        let ns: u64 = ns.parse().unwrap_or(0);
        match by_root.iter_mut().find(|(r, _)| *r == root) {
            Some((_, total)) => *total += ns,
            None => by_root.push((root, ns)),
        }
    }
    by_root.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_root
}

fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0; // not Linux: the field stays 0 rather than guessing
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale = if smoke { &SMOKE } else { &FULL };

    // Reference workloads, null instrumentation (the headline numbers).
    let (seq, _) = run_seqwrite(scale, false);
    let read1 = run_randread(scale);
    let (qd_report, qd_wall) = run_qd(scale);
    let qd_consistent = qd_report.tenants_sum_consistent();

    // Reproducibility: the headline read workload again, fresh device,
    // same seed. Simulated results must be identical; wall throughput
    // should agree within ±10 % on a quiet machine.
    let read2 = run_randread(scale);
    let repro_identical = read1.report.finished == read2.report.finished
        && read1.report.counters == read2.report.counters;
    let a = ops_per_wall_second(&read1);
    let b = ops_per_wall_second(&read2);
    let delta_pct = if a > 0.0 {
        (a - b).abs() / a * 100.0
    } else {
        0.0
    };

    // Overhead guard: attaching the span recorder and the event probe must
    // not change a single simulated result. Wall cost is reported for the
    // trajectory but is machine-dependent; the identity check is not.
    let (seq_instr, spans_recorded) = run_seqwrite(scale, true);
    let instrumented_identical = seq.report.finished == seq_instr.report.finished
        && seq.report.counters == seq_instr.report.counters;
    let wall_overhead_pct = if seq.wall_seconds > 0.0 {
        (seq_instr.wall_seconds - seq.wall_seconds) / seq.wall_seconds * 100.0
    } else {
        0.0
    };

    // Self-profiled pass over both workloads (only meaningful with
    // `--features selfprof`; the null build leaves `folded` empty).
    profile::reset();
    let (_prof_w, _) = run_seqwrite(scale, false);
    let _prof_r = run_randread(scale);
    let folded = profile::folded();
    let shares = profile_shares(&folded);
    let share_total: u64 = shares.iter().map(|(_, ns)| ns).sum::<u64>().max(1);

    // Steady-state allocation guard: the runtime cross-check of the static
    // hot-path effect analysis (`cargo xtask lint`). After warmup the
    // reference workloads must complete every op without touching the
    // global allocator.
    let guards = [
        guard_seqwrite(scale),
        guard_randread(scale),
        guard_qd(scale),
    ];
    let guard_enabled = alloc_guard::counting_enabled();
    let steady_state_zero = guard_enabled && guards.iter().all(|g| g.allocations == 0);

    let json = Json::obj([
        ("schema", Json::from(SCHEMA)),
        ("smoke", Json::Bool(smoke)),
        ("config", Json::from("paper")),
        (
            "workloads",
            Json::Arr(vec![
                workload_json("seqwrite-512k", &seq),
                workload_json("randread-4k", &read1),
                qd_workload_json("qd8-randread-4k-2t", &qd_report, qd_wall),
            ]),
        ),
        (
            "repro",
            Json::obj([
                ("workload", Json::from("randread-4k")),
                ("sim_identical", Json::Bool(repro_identical)),
                ("first_ops_per_wall_second", Json::F64(a)),
                ("second_ops_per_wall_second", Json::F64(b)),
                ("delta_pct", Json::F64(delta_pct)),
            ]),
        ),
        (
            "overhead",
            Json::obj([
                ("workload", Json::from("seqwrite-512k")),
                ("instrumented_identical", Json::Bool(instrumented_identical)),
                ("spans_recorded", Json::U64(spans_recorded)),
                ("null_wall_seconds", Json::F64(seq.wall_seconds)),
                (
                    "instrumented_wall_seconds",
                    Json::F64(seq_instr.wall_seconds),
                ),
                ("wall_overhead_pct", Json::F64(wall_overhead_pct)),
            ]),
        ),
        (
            "selfprof",
            Json::obj([
                ("enabled", Json::Bool(profile::enabled())),
                ("folded", Json::from(folded.as_str())),
                (
                    "wall_shares",
                    Json::Obj(
                        shares
                            .iter()
                            .map(|(root, ns)| {
                                (root.clone(), Json::F64(*ns as f64 / share_total as f64))
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "alloc_guard",
            Json::obj([
                ("enabled", Json::Bool(guard_enabled)),
                (
                    "workloads",
                    Json::Arr(guards.iter().map(AllocGuard::json).collect()),
                ),
                ("steady_state_zero", Json::Bool(steady_state_zero)),
            ]),
        ),
        ("peak_rss_bytes", Json::U64(peak_rss_bytes())),
    ]);

    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{json}\n")).expect("write snapshot");
            eprintln!("bench snapshot written to {path}");
        }
        None => println!("{json}"),
    }

    if !instrumented_identical || !repro_identical {
        eprintln!(
            "bench_snapshot: FAILED — observability attachment or rerun \
             changed simulated results (must be bit-identical)"
        );
        std::process::exit(1);
    }
    if !qd_consistent {
        eprintln!(
            "bench_snapshot: FAILED — queue-pair per-tenant counters do not \
             sum to the device totals"
        );
        std::process::exit(1);
    }
    if guard_enabled && !steady_state_zero {
        for g in &guards {
            eprintln!(
                "alloc guard: {} — {} allocations over {} measured ops",
                g.name, g.allocations, g.measured_ops
            );
        }
        eprintln!(
            "bench_snapshot: FAILED — steady-state hot paths touched the \
             global allocator (must be zero allocations per op)"
        );
        std::process::exit(1);
    }
}
