//! Latency versus offered load: open-loop Poisson 4 KiB random reads
//! against the paper device, for page vs hybrid mapping.
//!
//! The closed-loop figures (Fig. 7/8) measure service latency at queue
//! depth 1; real phone workloads arrive asynchronously. This sweep offers
//! increasing read rates and reports mean and tail latency — the knee
//! arrives much earlier under page mapping because every L2P miss
//! consumes extra chip time on mapping fetches, shrinking the capacity
//! left for data.

use conzone_bench::{fill_zoned, print_table, randread_job};
use conzone_core::ConZone;
use conzone_host::run_job;
use conzone_types::{DeviceConfig, Geometry, MapGranularity, SimTime};

const RANGE: u64 = 1 << 30;
const OPS: u64 = 20_000;

fn run(agg: MapGranularity, iops: f64) -> (f64, f64, f64) {
    let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
        .max_aggregation(agg)
        .build()
        .expect("config");
    let mut dev = ConZone::new(cfg);
    let t = fill_zoned(&mut dev, RANGE, 16 << 20, SimTime::ZERO).expect("fill");
    let warm = run_job(&mut dev, &randread_job(RANGE, OPS / 2, t).seed(5)).expect("warm");
    let job = randread_job(RANGE, OPS, warm.finished).arrival_iops(iops);
    let r = run_job(&mut dev, &job).expect("open loop");
    (
        r.kiops() * 1000.0,
        r.latency.mean.as_micros_f64(),
        r.latency.p999.as_micros_f64(),
    )
}

fn main() {
    let mut rows = Vec::new();
    for &offered in &[5_000.0f64, 20_000.0, 40_000.0, 60_000.0, 70_000.0, 76_000.0] {
        let (pa, pm, pt) = run(MapGranularity::Page, offered);
        let (ha, hm, ht) = run(MapGranularity::Zone, offered);
        rows.push(vec![
            format!("{:.0}", offered),
            format!("{pa:.0}"),
            format!("{pm:.0}"),
            format!("{pt:.0}"),
            format!("{ha:.0}"),
            format!("{hm:.0}"),
            format!("{ht:.0}"),
        ]);
    }
    print_table(
        "Latency vs offered load: open-loop 4 KiB random reads over 1 GiB",
        &[
            "offered IOPS",
            "page achieved",
            "page mean us",
            "page p99.9 us",
            "hybrid achieved",
            "hybrid mean us",
            "hybrid p99.9 us",
        ],
        &rows,
    );
    println!(
        "\nexpectation: hybrid mapping rides flat to the media's capacity;\n\
         page mapping saturates earlier because ~99 % of reads burn an\n\
         extra mapping fetch — its achieved rate clips and the tail\n\
         explodes at lower offered load."
    );
}
