//! Runs every table and figure binary in sequence (the paper's full
//! evaluation). Equivalent to executing `table1`, `table2`, `fig6a`,
//! `fig6b`, `fig7` and `fig8` one after another, plus the three
//! ablations.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "table2",
        "fig6a",
        "fig6b",
        "fig7",
        "fig8",
        "ablation_buffers",
        "ablation_cache",
        "ablation_slc",
        "ablation_l2p_log",
        "ablation_media",
        "ablation_planes",
        "ablation_sync",
        "latency_vs_load",
        "lifespan",
    ];
    // When invoked via `cargo run --bin all_figures`, the sibling binaries
    // live next to this executable.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n########## {bin} ##########");
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo for `cargo run` without prebuilt siblings.
            Command::new("cargo")
                .args(["run", "--release", "-p", "conzone-bench", "--bin", bin])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => failures.push(format!("{bin}: exit {s}")),
            Err(e) => failures.push(format!("{bin}: {e}")),
        }
    }
    if failures.is_empty() {
        println!("\nall tables and figures regenerated");
    } else {
        eprintln!("\nfailures:\n{}", failures.join("\n"));
        std::process::exit(1);
    }
}
