//! Fig. 7: impact of the mapping mechanism on 4 KiB random reads.
//!
//! Same data volume, three read ranges (1 MiB / 16 MiB / 1 GiB). With
//! page mapping the 12 KiB L2P cache only covers ~12 MiB of mappings, so
//! KIOPS decays as the range grows (paper: −16.5 % at 16 MiB, −33.5 % at
//! 1 GiB) while hybrid mapping stays flat at ~20 KIOPS with ~50 µs tail
//! latency.

use conzone_bench::{
    conzone_device, event_totals, fill_zoned, kiops, print_expectations, print_table, randread_job,
    trace_out_path, trace_sink, us, write_chrome_trace, ExpectedRelation,
};
use conzone_host::run_job;
use conzone_types::{
    DeviceEvent, L2pOutcome, MapGranularity, Probe, SearchStrategy, SimTime, TraceRecord,
};

const RANGES: [(u64, &str); 3] = [(1 << 20, "1MiB"), (16 << 20, "16MiB"), (1 << 30, "1GiB")];
const OPS: u64 = 20_000;

struct MappingRun {
    /// Per range: (KIOPS, p99.9 µs, L2P miss rate).
    perf: Vec<(f64, f64, f64)>,
    /// Per range: event counts by kind from the measured phase's trace.
    events: Vec<[u64; DeviceEvent::KIND_COUNT]>,
    /// Drained trace of the last (largest-range) measured phase.
    last_trace: Vec<TraceRecord>,
}

fn run_mapping(max_aggregation: MapGranularity) -> MappingRun {
    let mut perf = Vec::new();
    let mut events = Vec::new();
    let mut last_trace = Vec::new();
    for &(range, _) in RANGES.iter() {
        let mut dev = conzone_device(max_aggregation, SearchStrategy::Bitmap);
        // Same data volume in every case: fill 1 GiB once.
        let t = fill_zoned(&mut dev, 1 << 30, 16 << 20, SimTime::ZERO).expect("fill");
        // Warm the L2P cache to steady state so the measured tail
        // reflects capacity misses, not cold-start compulsory misses.
        let warm = run_job(&mut dev, &randread_job(range, OPS / 2, t).seed(7)).expect("warmup");
        // Trace only the measured phase: the probe attaches after warmup.
        let sink = trace_sink();
        dev.set_probe(Probe::attached(sink.clone()));
        let r = run_job(&mut dev, &randread_job(range, OPS, warm.finished)).expect("randread");
        perf.push((
            r.kiops(),
            r.latency.p999.as_micros_f64(),
            r.counters.l2p_miss_rate(),
        ));
        let records = sink.drain();
        events.push(event_totals(&records));
        last_trace = records;
    }
    MappingRun {
        perf,
        events,
        last_trace,
    }
}

fn main() {
    let page = run_mapping(MapGranularity::Page);
    let hybrid = run_mapping(MapGranularity::Zone);

    let mut rows = Vec::new();
    for (i, &(_, label)) in RANGES.iter().enumerate() {
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", page.perf[i].0),
            format!("{:.1}", page.perf[i].1),
            format!("{:.1}%", page.perf[i].2 * 100.0),
            format!("{:.1}", hybrid.perf[i].0),
            format!("{:.1}", hybrid.perf[i].1),
            format!("{:.1}%", hybrid.perf[i].2 * 100.0),
        ]);
    }
    print_table(
        "Fig. 7: 4 KiB random reads, page vs hybrid mapping",
        &[
            "range",
            "page KIOPS",
            "page p99.9 us",
            "page miss",
            "hybrid KIOPS",
            "hybrid p99.9 us",
            "hybrid miss",
        ],
        &rows,
    );

    // The same story told by the event trace: hybrid mapping turns the
    // page-mapping misses into hits, request by request.
    let hit_idx = DeviceEvent::L2pLookup {
        outcome: L2pOutcome::HitZone,
    }
    .kind_index();
    let miss_idx = DeviceEvent::L2pLookup {
        outcome: L2pOutcome::Miss,
    }
    .kind_index();
    let mut event_rows = Vec::new();
    for (i, &(_, label)) in RANGES.iter().enumerate() {
        event_rows.push(vec![
            label.to_string(),
            page.events[i][hit_idx].to_string(),
            page.events[i][miss_idx].to_string(),
            hybrid.events[i][hit_idx].to_string(),
            hybrid.events[i][miss_idx].to_string(),
        ]);
    }
    print_table(
        "Fig. 7 trace: L2P lookup events in the measured phase",
        &[
            "range",
            "page hits",
            "page misses",
            "hybrid hits",
            "hybrid misses",
        ],
        &event_rows,
    );

    if let Some(path) = trace_out_path() {
        write_chrome_trace(&path, &hybrid.last_trace).expect("write trace");
        println!(
            "wrote Chrome trace of the hybrid 1 GiB measured phase \
             ({} events) to {path}",
            hybrid.last_trace.len()
        );
    }

    let page_drop16 = (1.0 - page.perf[1].0 / page.perf[0].0) * 100.0;
    let page_drop1g = (1.0 - page.perf[2].0 / page.perf[0].0) * 100.0;
    println!(
        "\npage-mapping KIOPS drop vs 1 MiB range: 16 MiB {page_drop16:.1} % \
         (paper 16.5 %), 1 GiB {page_drop1g:.1} % (paper 33.5 %)"
    );

    print_expectations(&[
        ExpectedRelation {
            claim: "both mechanisms match at 1 MiB (everything cached, ~20 KIOPS)",
            holds: (page.perf[0].0 / hybrid.perf[0].0 - 1.0).abs() < 0.05,
            evidence: format!("{:.1} vs {:.1} KIOPS", page.perf[0].0, hybrid.perf[0].0),
        },
        ExpectedRelation {
            claim: "page mapping degrades at 16 MiB (paper −16.5 %)",
            holds: page_drop16 > 5.0,
            evidence: format!("−{page_drop16:.1} %"),
        },
        ExpectedRelation {
            claim: "page mapping degrades further at 1 GiB (paper −33.5 %)",
            holds: page_drop1g > page_drop16,
            evidence: format!("−{page_drop1g:.1} %"),
        },
        ExpectedRelation {
            claim: "hybrid mapping stays flat across ranges",
            holds: (hybrid.perf[2].0 / hybrid.perf[0].0 - 1.0).abs() < 0.05,
            evidence: format!("{:.1} vs {:.1} KIOPS", hybrid.perf[0].0, hybrid.perf[2].0),
        },
        ExpectedRelation {
            claim: "hybrid tail latency stays ~50 us at 1 GiB",
            holds: hybrid.perf[2].1 < 80.0,
            evidence: format!("p99.9 {:.1} us", hybrid.perf[2].1),
        },
        ExpectedRelation {
            claim: "page-mapping tail latency grows with range",
            holds: page.perf[2].1 > hybrid.perf[2].1,
            evidence: format!("{:.1} vs {:.1} us", page.perf[2].1, hybrid.perf[2].1),
        },
    ]);

    let _ = (kiops, us); // formatting helpers used by sibling binaries
}
