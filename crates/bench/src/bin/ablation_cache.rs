//! Ablation: L2P cache size sweep under page vs hybrid mapping.
//!
//! Complements Fig. 7 by sweeping the cache size at a fixed 256 MiB random
//! read range (65536 page mappings, 16 zones): hybrid mapping reaches the
//! flat ~20 KIOPS plateau with tens of bytes of cache (one entry per
//! zone), while page mapping needs a 256 KiB cache to cover the range.

use conzone_bench::{fill_zoned, print_table, randread_job};
use conzone_core::ConZone;
use conzone_host::run_job;
use conzone_types::{DeviceConfig, Geometry, MapGranularity, SimTime};

fn run(cache_bytes: u64, max_aggregation: MapGranularity) -> (f64, f64) {
    let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
        .l2p_cache_bytes(cache_bytes)
        .max_aggregation(max_aggregation)
        .build()
        .expect("ablation config");
    let mut dev = ConZone::new(cfg);
    let range = 256u64 << 20;
    let t = fill_zoned(&mut dev, range, 16 << 20, SimTime::ZERO).expect("fill");
    // Warm to steady state — one sequential sweep touches every mapping
    // exactly once, then a random pass settles LRU order — so measured
    // misses are capacity misses rather than cold misses.
    let seq = conzone_host::FioJob::new(conzone_host::AccessPattern::SeqRead, 512 * 1024)
        .region(0, range)
        .bytes_per_thread(range)
        .start_at(t);
    let warm = run_job(&mut dev, &seq).expect("seq warmup");
    let warm = run_job(
        &mut dev,
        &randread_job(range, range / 4096, warm.finished).seed(3),
    )
    .expect("rand warmup");
    let r = run_job(&mut dev, &randread_job(range, 20_000, warm.finished)).expect("randread");
    (r.kiops(), r.counters.l2p_miss_rate())
}

fn main() {
    let sizes = [1u64, 4, 12, 64, 256, 1024];
    // Each sweep point builds an independent 1.5 GB device; run them on
    // real threads to cut wall-clock time.
    let rows: Vec<Vec<String>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&cache_kib| {
                s.spawn(move |_| {
                    let (pk, pm) = run(cache_kib * 1024, MapGranularity::Page);
                    let (hk, hm) = run(cache_kib * 1024, MapGranularity::Zone);
                    vec![
                        format!("{cache_kib} KiB"),
                        format!("{pk:.1}"),
                        format!("{:.1}%", pm * 100.0),
                        format!("{hk:.1}"),
                        format!("{:.1}%", hm * 100.0),
                    ]
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread"))
            .collect()
    })
    .expect("crossbeam scope");
    print_table(
        "Ablation: L2P cache size, 4 KiB random reads over 256 MiB",
        &[
            "cache",
            "page KIOPS",
            "page miss",
            "hybrid KIOPS",
            "hybrid miss",
        ],
        &rows,
    );
    println!(
        "\nexpectation: hybrid mapping is already flat at the smallest cache\n\
         (16 zone entries cover 256 MiB); page mapping needs a 256 KiB cache\n\
         (65536 entries) to cover the same range."
    );
}
