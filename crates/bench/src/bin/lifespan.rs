//! Lifespan comparison: the paper's §I motivation, quantified.
//!
//! Legacy consumer storage suffers a "time gap between the host
//! invalidating data and the flash storage recognizing that the data is
//! invalid": without a trim, a deleted file's LBAs look live until the
//! file system recycles them, so device GC migrates garbage. With zone
//! abstraction the host cleans: it copies only data it *knows* is live
//! and resets the zone — dead data is never moved.
//!
//! Workload: 256 KiB extents at ~60 % space utilisation; every step
//! deletes a uniformly random live extent and writes a new one (the
//! scattered-deletion pattern of real file systems, which mixes hot and
//! cold data inside every superblock). End-to-end write amplification is
//! measured against *user* bytes, so ConZone's host-side cleaning copies
//! are charged fairly.

use conzone_bench::{print_expectations, print_table, ExpectedRelation};
use conzone_core::ConZone;
use conzone_legacy::LegacyDevice;
use conzone_sim::SimRng;
use conzone_types::{
    DeviceConfig, Geometry, IoRequest, SimTime, StorageDevice, ZoneId, ZonedDevice,
};
use std::collections::VecDeque;

const EXTENT: u64 = 256 * 1024;
const STEPS: usize = 6000;

fn small_device() -> DeviceConfig {
    // 24 normal zones of 16 MiB so aging converges quickly.
    let mut g = Geometry::consumer_1p5gb();
    g.blocks_per_chip = 32;
    DeviceConfig::builder(g).build().expect("lifespan config")
}

struct Outcome {
    user_waf: f64,
    erases: u64,
    device_migrated_mib: f64,
    host_copied_mib: f64,
    lifetime_tib: f64,
    user_gib: f64,
}

/// Legacy: random deletion, FIFO LBA recycling. With `trim`, the host
/// tells the device about each deletion immediately (closing the §I time
/// gap); without it, the device's GC migrates the garbage.
fn run_legacy(use_trim: bool) -> Outcome {
    let mut dev = LegacyDevice::new(small_device());
    let total_extents = dev.capacity_bytes() / EXTENT;
    let live_target = (total_extents * 6 / 10) as usize;
    let mut rng = SimRng::new(0xdead_f11e);
    let mut free: VecDeque<u64> = (0..total_extents).collect();
    let mut live: Vec<u64> = Vec::new();
    let mut t = SimTime::ZERO;
    let mut user_extents = 0u64;
    let write = |dev: &mut LegacyDevice, t: SimTime, extent: u64| -> SimTime {
        dev.submit(t, &IoRequest::write(extent * EXTENT, EXTENT))
            .expect("legacy write")
            .finished
    };
    for _ in 0..live_target {
        let e = free.pop_front().expect("space");
        t = write(&mut dev, t, e);
        live.push(e);
        user_extents += 1;
    }
    for _ in 0..STEPS {
        let victim = rng.below(live.len() as u64) as usize;
        let dead = live.swap_remove(victim);
        if use_trim {
            t = dev.trim(t, dead * EXTENT, EXTENT).expect("trim").finished;
        }
        free.push_back(dead);
        let e = free.pop_front().expect("free extent");
        t = write(&mut dev, t, e);
        live.push(e);
        user_extents += 1;
    }
    let c = dev.counters();
    let wear = dev.wear_report();
    let user_bytes = user_extents * EXTENT;
    Outcome {
        user_waf: c.flash_program_bytes() as f64 / user_bytes as f64,
        erases: c.erases_normal + c.erases_slc,
        device_migrated_mib: (c.gc_migrated_slices * 4096) as f64 / f64::from(1 << 20),
        host_copied_mib: 0.0,
        lifetime_tib: user_bytes as f64
            / wear
                .slc
                .wear_fraction()
                .max(wear.normal.wear_fraction())
                .max(1e-12)
            / (1u64 << 40) as f64,
        user_gib: user_bytes as f64 / (1u64 << 30) as f64,
    }
}

/// ConZone: the host packs extents into zones, tracks liveness itself,
/// and cleans greedily — copying only live extents before a reset.
fn run_conzone() -> Outcome {
    let mut dev = ConZone::new(small_device());
    let zone_bytes = dev.zone_size();
    let epz = (zone_bytes / EXTENT) as usize; // extents per zone
    let nzones = dev.zone_count();
    let live_target = nzones * epz * 6 / 10;
    let mut rng = SimRng::new(0xdead_f11e);
    let mut t = SimTime::ZERO;
    let mut user_extents = 0u64;
    let mut host_copied = 0u64;

    // Host-side allocation state.
    let mut free_zones: VecDeque<usize> = (0..nzones).collect();
    let mut zone_live: Vec<Vec<bool>> = vec![vec![false; epz]; nzones];
    let mut zone_written: Vec<usize> = vec![0; nzones];
    let mut open_zone: Option<usize> = None;
    // Live extents as (zone, slot).
    let mut live: Vec<(usize, usize)> = Vec::new();

    fn alloc_slot(
        dev: &mut ConZone,
        t: &mut SimTime,
        open_zone: &mut Option<usize>,
        free_zones: &mut VecDeque<usize>,
        zone_written: &mut [usize],
        epz: usize,
        zone_bytes: u64,
    ) -> (usize, usize) {
        let zone = match *open_zone {
            Some(z) => z,
            None => {
                let z = free_zones.pop_front().expect("free zone");
                *open_zone = Some(z);
                z
            }
        };
        let slot = zone_written[zone];
        let offset = zone as u64 * zone_bytes + slot as u64 * EXTENT;
        *t = dev
            .submit(*t, &IoRequest::write(offset, EXTENT))
            .expect("conzone write")
            .finished;
        zone_written[zone] += 1;
        if zone_written[zone] == epz {
            *open_zone = None;
        }
        (zone, slot)
    }

    let write_new = |dev: &mut ConZone,
                     t: &mut SimTime,
                     open_zone: &mut Option<usize>,
                     free_zones: &mut VecDeque<usize>,
                     zone_written: &mut Vec<usize>,
                     zone_live: &mut Vec<Vec<bool>>,
                     live: &mut Vec<(usize, usize)>| {
        let (z, s) = alloc_slot(dev, t, open_zone, free_zones, zone_written, epz, zone_bytes);
        zone_live[z][s] = true;
        live.push((z, s));
    };

    for _ in 0..live_target {
        write_new(
            &mut dev,
            &mut t,
            &mut open_zone,
            &mut free_zones,
            &mut zone_written,
            &mut zone_live,
            &mut live,
        );
        user_extents += 1;
    }

    for _ in 0..STEPS {
        // Random delete: the host knows instantly.
        let victim = rng.below(live.len() as u64) as usize;
        let (z, s) = live.swap_remove(victim);
        zone_live[z][s] = false;

        // Host cleaning when space runs low: pick the fullest-written zone
        // with the fewest live extents, copy the live ones out, reset it.
        while free_zones.len() < 2 {
            let victim_zone = (0..nzones)
                .filter(|&z| zone_written[z] == epz && open_zone != Some(z))
                .min_by_key(|&z| zone_live[z].iter().filter(|l| **l).count())
                .expect("cleanable zone");
            // Copy live extents to the open log.
            let live_slots: Vec<usize> = (0..epz).filter(|&s| zone_live[victim_zone][s]).collect();
            for s in live_slots {
                let src = victim_zone as u64 * zone_bytes + s as u64 * EXTENT;
                let c = dev
                    .submit(t, &IoRequest::read(src, EXTENT))
                    .expect("clean read");
                t = c.finished;
                let (nz, ns) = alloc_slot(
                    &mut dev,
                    &mut t,
                    &mut open_zone,
                    &mut free_zones,
                    &mut zone_written,
                    epz,
                    zone_bytes,
                );
                zone_live[nz][ns] = true;
                // Re-point the live record.
                let idx = live
                    .iter()
                    .position(|&(lz, ls)| lz == victim_zone && ls == s)
                    .expect("live record");
                live[idx] = (nz, ns);
                zone_live[victim_zone][s] = false;
                host_copied += 1;
            }
            t = dev
                .reset_zone(t, ZoneId(victim_zone as u64))
                .expect("reset")
                .finished;
            zone_written[victim_zone] = 0;
            free_zones.push_back(victim_zone);
        }

        write_new(
            &mut dev,
            &mut t,
            &mut open_zone,
            &mut free_zones,
            &mut zone_written,
            &mut zone_live,
            &mut live,
        );
        user_extents += 1;
    }

    let c = dev.counters();
    let wear = dev.wear_report();
    let user_bytes = user_extents * EXTENT;
    Outcome {
        user_waf: c.flash_program_bytes() as f64 / user_bytes as f64,
        erases: c.erases_normal + c.erases_slc,
        device_migrated_mib: (c.gc_migrated_slices * 4096) as f64 / f64::from(1 << 20),
        host_copied_mib: (host_copied * EXTENT) as f64 / f64::from(1 << 20),
        lifetime_tib: user_bytes as f64
            / wear
                .slc
                .wear_fraction()
                .max(wear.normal.wear_fraction())
                .max(1e-12)
            / (1u64 << 40) as f64,
        user_gib: user_bytes as f64 / (1u64 << 30) as f64,
    }
}

fn main() {
    let cz = run_conzone();
    let lg = run_legacy(false);
    let lt = run_legacy(true);
    print_table(
        &format!(
            "Lifespan under random file churn (~{:.1} GiB user writes, 60 % live)",
            cz.user_gib
        ),
        &[
            "device",
            "end-to-end waf",
            "erases",
            "device-GC MiB",
            "host-clean MiB",
            "lifetime (user TiB)",
        ],
        &[
            vec![
                "ConZone (host cleaning)".into(),
                format!("{:.3}", cz.user_waf),
                cz.erases.to_string(),
                format!("{:.0}", cz.device_migrated_mib),
                format!("{:.0}", cz.host_copied_mib),
                format!("{:.2}", cz.lifetime_tib),
            ],
            vec![
                "Legacy (no trim)".into(),
                format!("{:.3}", lg.user_waf),
                lg.erases.to_string(),
                format!("{:.0}", lg.device_migrated_mib),
                format!("{:.0}", lg.host_copied_mib),
                format!("{:.2}", lg.lifetime_tib),
            ],
            vec![
                "Legacy + trim".into(),
                format!("{:.3}", lt.user_waf),
                lt.erases.to_string(),
                format!("{:.0}", lt.device_migrated_mib),
                format!("{:.0}", lt.host_copied_mib),
                format!("{:.2}", lt.lifetime_tib),
            ],
        ],
    );

    print_expectations(&[
        ExpectedRelation {
            claim: "legacy device GC migrates data the host already deleted (§I trim gap)",
            holds: lg.device_migrated_mib > 0.0,
            evidence: format!("{:.0} MiB migrated by device GC", lg.device_migrated_mib),
        },
        ExpectedRelation {
            claim: "zone abstraction lowers end-to-end write amplification",
            holds: cz.user_waf < lg.user_waf,
            evidence: format!("{:.3} vs {:.3}", cz.user_waf, lg.user_waf),
        },
        ExpectedRelation {
            claim: "and extends the projected device lifespan",
            holds: cz.lifetime_tib > lg.lifetime_tib,
            evidence: format!("{:.2} vs {:.2} user TiB", cz.lifetime_tib, lg.lifetime_tib),
        },
        ExpectedRelation {
            claim: "trim closes most of the gap — the deficit is the missing                     signal, not the page-mapped FTL itself",
            holds: lt.user_waf < lg.user_waf && lt.device_migrated_mib < lg.device_migrated_mib,
            evidence: format!(
                "waf {:.3} (trim) vs {:.3} (no trim); {:.0} vs {:.0} MiB migrated",
                lt.user_waf, lg.user_waf, lt.device_migrated_mib, lg.device_migrated_mib
            ),
        },
    ]);
}
