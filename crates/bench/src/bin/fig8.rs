//! Fig. 8: impact of the L2P search strategy on random reads with hybrid
//! mapping.
//!
//! When the hybrid map cannot hold every aggregated entry, each miss must
//! discover the aggregation level of the missed address. The
//! performance-optimised BITMAP keeps the map bits in SRAM (one flash
//! fetch per miss, ~0.006 % capacity overhead); the capacity-optimised
//! MULTIPLE probes the mapping table zone → chunk → page (up to three
//! fetches). The paper measures a 27.4 % miss rate at which MULTIPLE is
//! ~10 % slower with a higher tail; its proposed fix — PINNED aggregated
//! entries (a full-zone entry per zone, 256 KiB of SRAM per TiB) — removes
//! the misses entirely.
//!
//! Setup: 88 zones (352 chunks) filled; the L2P cache is scaled to 256
//! entries so uniform random reads miss at ~27 % under chunk-granularity
//! hybrid mapping, matching the paper's operating point.

use conzone_bench::{fill_zoned, print_expectations, print_table, randread_job, ExpectedRelation};
use conzone_core::ConZone;
use conzone_host::run_job;
use conzone_types::{
    DeviceConfig, Geometry, MapGranularity, SearchStrategy, SimTime, StorageDevice,
};

const FILL_ZONES: u64 = 88;
const ZONE_BYTES: u64 = 16 * 1024 * 1024;
const OPS: u64 = 20_000;

fn run_strategy(strategy: SearchStrategy, max_aggregation: MapGranularity) -> (f64, f64, f64) {
    let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
        .search_strategy(strategy)
        .max_aggregation(max_aggregation)
        .l2p_cache_bytes(1024) // 256 entries: forces the paper's miss rate
        .build()
        .expect("fig8 config");
    let mut dev = ConZone::new(cfg);
    let range = FILL_ZONES * ZONE_BYTES;
    let t = fill_zoned(&mut dev, range, ZONE_BYTES, SimTime::ZERO).expect("fill");
    let before = dev.counters();
    let r = run_job(&mut dev, &randread_job(range, OPS, t)).expect("randread");
    let _ = before;
    (
        r.kiops(),
        r.latency.p999.as_micros_f64(),
        r.counters.l2p_miss_rate(),
    )
}

fn main() {
    // BITMAP and MULTIPLE run chunk-granularity hybrid mapping (the
    // partially aggregated state the paper's case study examines);
    // PINNED runs the paper's proposed zone-entry design.
    let (bm_kiops, bm_tail, bm_miss) = run_strategy(SearchStrategy::Bitmap, MapGranularity::Chunk);
    let (mu_kiops, mu_tail, mu_miss) =
        run_strategy(SearchStrategy::Multiple, MapGranularity::Chunk);
    let (pin_kiops, pin_tail, pin_miss) =
        run_strategy(SearchStrategy::Pinned, MapGranularity::Zone);

    print_table(
        "Fig. 8: L2P search strategy under hybrid mapping (4 KiB random reads)",
        &["strategy", "KIOPS", "p99.9 us", "miss rate"],
        &[
            vec![
                "BITMAP".into(),
                format!("{bm_kiops:.1}"),
                format!("{bm_tail:.1}"),
                format!("{:.1}%", bm_miss * 100.0),
            ],
            vec![
                "MULTIPLE".into(),
                format!("{mu_kiops:.1}"),
                format!("{mu_tail:.1}"),
                format!("{:.1}%", mu_miss * 100.0),
            ],
            vec![
                "PINNED (zone entries)".into(),
                format!("{pin_kiops:.1}"),
                format!("{pin_tail:.1}"),
                format!("{:.1}%", pin_miss * 100.0),
            ],
        ],
    );

    let gap = (1.0 - mu_kiops / bm_kiops) * 100.0;
    println!(
        "\nMULTIPLE vs BITMAP KIOPS gap: {gap:.1} % at {:.1} % miss rate \
         (paper: ~10 % at 27.4 %)",
        bm_miss * 100.0
    );

    print_expectations(&[
        ExpectedRelation {
            claim: "operating point near the paper's 27.4 % miss rate",
            holds: (0.15..0.40).contains(&bm_miss),
            evidence: format!("{:.1} %", bm_miss * 100.0),
        },
        ExpectedRelation {
            claim: "MULTIPLE is ~10 % slower than BITMAP",
            holds: gap > 4.0,
            evidence: format!("{gap:.1} %"),
        },
        ExpectedRelation {
            claim: "MULTIPLE has a higher tail latency",
            holds: mu_tail > bm_tail,
            evidence: format!("{mu_tail:.1} vs {bm_tail:.1} us"),
        },
        ExpectedRelation {
            claim: "PINNED zone entries eliminate misses without the bitmap's SRAM",
            holds: pin_miss < 0.01 && pin_kiops >= bm_kiops,
            evidence: format!("{:.2} % miss, {pin_kiops:.1} KIOPS", pin_miss * 100.0),
        },
        ExpectedRelation {
            claim: "PINNED tail stays at the flash-read floor",
            holds: pin_tail <= bm_tail,
            evidence: format!("{pin_tail:.1} vs {bm_tail:.1} us"),
        },
    ]);
}
