//! Ablation: SLC region size under sustained premature-flush pressure.
//!
//! The SLC secondary buffer absorbs premature flushes; a smaller region
//! garbage-collects more often, stealing bandwidth and adding erases.
//! This sweep runs the Fig. 6(b) conflict workload across several zone
//! fills for different SLC region sizes.

use conzone_bench::print_table;
use conzone_core::ConZone;
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{DeviceConfig, Geometry, SimTime, StorageDevice, ZoneId, ZonedDevice};

fn main() {
    let mut rows = Vec::new();
    for slc_blocks in [2usize, 4, 8, 16] {
        let mut geometry = Geometry::consumer_1p5gb();
        geometry.slc_blocks_per_chip = slc_blocks;
        let cfg = DeviceConfig::builder(geometry)
            .build()
            .expect("ablation config");
        let zone_bytes = cfg.zone_size_bytes();
        let mut dev = ConZone::new(cfg);

        // Three rounds of the conflict workload with zone resets between
        // them, so SLC pressure accumulates.
        let mut start = SimTime::ZERO;
        for _round in 0..3 {
            let job = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
                .zone_bytes(zone_bytes)
                .threads(2)
                .with_thread_zones(vec![vec![0], vec![2]])
                .bytes_per_thread(zone_bytes)
                .start_at(start);
            let r = run_job(&mut dev, &job).expect("ablation run");
            start = r.finished;
            for z in [0u64, 2] {
                start = dev.reset_zone(start, ZoneId(z)).expect("reset").finished;
            }
        }
        let c = dev.counters();
        let total_mib = c.host_write_bytes as f64 / (1024.0 * 1024.0);
        let secs = start.as_secs_f64();
        rows.push(vec![
            format!("{slc_blocks} blocks/chip"),
            format!("{:.0}", total_mib / secs),
            format!("{:.3}", c.write_amplification()),
            c.gc_runs.to_string(),
            c.erases_slc.to_string(),
            c.gc_migrated_slices.to_string(),
        ]);
    }
    print_table(
        "Ablation: SLC region size under the conflict workload (3 zone fills)",
        &[
            "slc region",
            "bw MiB/s",
            "waf",
            "gc runs",
            "slc erases",
            "migrated slices",
        ],
        &rows,
    );
    println!(
        "\nexpectation: smaller SLC regions trigger GC sooner and erase SLC\n\
         blocks more often at similar bandwidth (GC of fully-dead staging\n\
         blocks is cheap); larger regions defer GC entirely."
    );
}
