//! Ablation: L2P mapping-table persistence (paper §III-E future work).
//!
//! Mapping updates accumulate in an L2P log that must eventually be
//! persisted to flash; the flush blocks host requests. This sweep varies
//! the log threshold (updates accumulated per flush) and measures the
//! write-bandwidth cost of persistence on a sequential fill.

use conzone_bench::{fill_zoned, print_table};
use conzone_core::ConZone;
use conzone_types::{DeviceConfig, Geometry, SimTime, StorageDevice};

fn run(l2p_log_entries: u64) -> (f64, u64) {
    let cfg = DeviceConfig::builder(Geometry::consumer_1p5gb())
        .l2p_log_entries(l2p_log_entries)
        .build()
        .expect("ablation config");
    let mut dev = ConZone::new(cfg);
    let bytes = 256u64 << 20;
    let t = fill_zoned(&mut dev, bytes, 16 << 20, SimTime::ZERO).expect("fill");
    let c = dev.counters();
    let bw = bytes as f64 / (1024.0 * 1024.0) / t.as_secs_f64();
    (bw, c.l2p_log_flushes)
}

fn main() {
    let mut rows = Vec::new();
    let baseline = run(0);
    rows.push(vec![
        "disabled".into(),
        format!("{:.0}", baseline.0),
        "0".into(),
        "—".into(),
    ]);
    for entries in [64u64, 256, 1024, 4096, 16384] {
        let (bw, flushes) = run(entries);
        rows.push(vec![
            entries.to_string(),
            format!("{bw:.0}"),
            flushes.to_string(),
            format!("{:+.1}%", (bw / baseline.0 - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Ablation: L2P persistence-log threshold (256 MiB sequential fill)",
        &["log entries/flush", "bw MiB/s", "flushes", "vs disabled"],
        &rows,
    );
    println!(
        "\nexpectation: tiny logs flush constantly and visibly tax write\n\
         bandwidth; a few thousand entries amortise the cost to noise —\n\
         quantifying the §III-E design question the paper leaves open."
    );
}
