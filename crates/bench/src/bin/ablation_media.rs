//! Ablation: TLC vs QLC normal media (the paper's §I motivation).
//!
//! "Compared to TLC, QLC exhibits a significant reduction in write
//! bandwidth, an increase in read latency by several tens of
//! microseconds, and a decrease in program/erase cycles." This sweep runs
//! the same workloads on both media and shows exactly that — and how the
//! SLC secondary buffer's value grows with denser media (a QLC premature
//! flush avoided saves 6.4 ms of programming, not 0.94 ms).

use conzone_bench::{print_expectations, print_table, randread_job, ExpectedRelation};
use conzone_core::ConZone;
use conzone_flash::erase_budget;
use conzone_host::{run_job, AccessPattern, FioJob};
use conzone_types::{CellType, DeviceConfig, Geometry};

/// QLC variant of the paper geometry: 64 KiB programming unit (4 pages,
/// as §III-B's example), power-of-two superblocks.
fn geometry_for(cell: CellType) -> Geometry {
    match cell {
        CellType::Tlc => Geometry::consumer_1p5gb(),
        CellType::Qlc => Geometry {
            channels: 2,
            chips_per_channel: 2,
            blocks_per_chip: 104,
            slc_blocks_per_chip: 8,
            pages_per_block: 256,
            page_bytes: 16 * 1024,
            program_unit_bytes: 64 * 1024,
            planes_per_chip: 1,
        },
        CellType::Slc => unreachable!("normal region is never SLC"),
    }
}

struct MediaResult {
    seq_write: f64,
    conflict_write: f64,
    read_p99_us: f64,
    budget: u64,
}

fn run_media(cell: CellType) -> MediaResult {
    let cfg = DeviceConfig::builder(geometry_for(cell))
        .normal_cell(cell)
        .build()
        .expect("media config");
    let zone = cfg.zone_size_bytes();

    // Sequential write bandwidth.
    let mut dev = ConZone::new(cfg.clone());
    let seq = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
        .zone_bytes(zone)
        .region(0, 8 * zone)
        .bytes_per_thread(8 * zone);
    let w = run_job(&mut dev, &seq).expect("seq write");

    // Conflict (premature-flush) write bandwidth: Fig. 6(b) pattern.
    let mut dev2 = ConZone::new(cfg);
    let conflict = FioJob::new(AccessPattern::SeqWrite, 48 * 1024)
        .zone_bytes(zone)
        .threads(2)
        .with_thread_zones(vec![vec![0], vec![2]])
        .bytes_per_thread(zone / 2);
    let cw = run_job(&mut dev2, &conflict).expect("conflict write");

    // 4 KiB random read tail latency over the sequentially written area.
    let r = run_job(&mut dev, &randread_job(4 * zone, 5000, w.finished)).expect("randread");

    MediaResult {
        seq_write: w.bandwidth_mibs(),
        conflict_write: cw.bandwidth_mibs(),
        read_p99_us: r.latency.p99.as_micros_f64(),
        budget: erase_budget(cell),
    }
}

fn main() {
    let tlc = run_media(CellType::Tlc);
    let qlc = run_media(CellType::Qlc);

    print_table(
        "Ablation: TLC vs QLC normal media on ConZone",
        &[
            "media",
            "seq write MiB/s",
            "conflict write MiB/s",
            "4K read p99 us",
            "P/E budget",
        ],
        &[
            vec![
                "TLC".into(),
                format!("{:.0}", tlc.seq_write),
                format!("{:.0}", tlc.conflict_write),
                format!("{:.1}", tlc.read_p99_us),
                tlc.budget.to_string(),
            ],
            vec![
                "QLC".into(),
                format!("{:.0}", qlc.seq_write),
                format!("{:.0}", qlc.conflict_write),
                format!("{:.1}", qlc.read_p99_us),
                qlc.budget.to_string(),
            ],
        ],
    );

    print_expectations(&[
        ExpectedRelation {
            claim: "QLC write bandwidth significantly below TLC (paper §I)",
            holds: qlc.seq_write < tlc.seq_write * 0.5,
            evidence: format!("{:.0} vs {:.0} MiB/s", qlc.seq_write, tlc.seq_write),
        },
        ExpectedRelation {
            claim: "QLC read latency tens of microseconds above TLC (paper §I)",
            holds: qlc.read_p99_us - tlc.read_p99_us > 30.0,
            evidence: format!("{:.1} vs {:.1} us p99", qlc.read_p99_us, tlc.read_p99_us),
        },
        ExpectedRelation {
            claim: "buffer conflicts halve write bandwidth on either media \
                    (SLC partial programs are cheap next to MLC tPROG)",
            holds: tlc.seq_write / tlc.conflict_write > 1.5
                && qlc.seq_write / qlc.conflict_write > 1.5,
            evidence: format!(
                "seq/conflict ratios {:.2} (TLC) and {:.2} (QLC)",
                tlc.seq_write / tlc.conflict_write,
                qlc.seq_write / qlc.conflict_write
            ),
        },
        ExpectedRelation {
            claim: "QLC endurance budget far below TLC (paper §I)",
            holds: qlc.budget < tlc.budget,
            evidence: format!("{} vs {} P/E cycles", qlc.budget, tlc.budget),
        },
    ]);
}
