//! Fig. 6(a): 512 KiB sequential read/write bandwidth, single-threaded
//! (ST) and multi-threaded (MT, 4 threads), for ConZone, Legacy and the
//! FEMU-like baseline on the paper's §IV-A configuration.
//!
//! ZMS itself is closed hardware; the paper validates ConZone against the
//! *relationships* quoted in §IV-B/§IV-C, which this binary checks:
//! ConZone write ≈ ZMS write, ConZone MT read ≈ ZMS, ConZone read above
//! Legacy (~1 % ST / ~10 % MT), FEMU write above ZMS, FEMU read far below.

use conzone_bench::{
    conzone_device, femu_device, legacy_device, mibs, print_expectations, print_table, run_seq_rw,
    ExpectedRelation,
};
use conzone_types::{MapGranularity, SearchStrategy, StorageDevice};

fn main() {
    let zone_bytes = 16 * 1024 * 1024;

    // For fairness against Legacy's chunk-sized prefetch, ConZone only
    // aggregates mapping entries at chunk range here (paper §IV-C).
    let mut results: Vec<(String, f64, f64)> = Vec::new(); // (label, write, read)
    let mut rows = Vec::new();

    for threads in [1usize, 4] {
        let tag = if threads == 1 { "ST" } else { "MT" };

        let mut cz = conzone_device(MapGranularity::Chunk, SearchStrategy::Bitmap);
        let (w, r) = run_seq_rw(&mut cz, threads, Some(zone_bytes)).expect("conzone run");
        rows.push(vec![
            format!("ConZone {tag}"),
            mibs(&w),
            mibs(&r),
            format!("{:.3}", w.waf()),
        ]);
        results.push((
            format!("conzone-{tag}"),
            w.bandwidth_mibs(),
            r.bandwidth_mibs(),
        ));

        let mut lg = legacy_device();
        let (w, r) = run_seq_rw(&mut lg, threads, None).expect("legacy run");
        rows.push(vec![
            format!("Legacy {tag}"),
            mibs(&w),
            mibs(&r),
            format!("{:.3}", w.waf()),
        ]);
        results.push((
            format!("legacy-{tag}"),
            w.bandwidth_mibs(),
            r.bandwidth_mibs(),
        ));

        let mut fm = femu_device();
        let femu_zone = fm.config().geometry.superblock_bytes();
        let (w, r) = run_seq_rw(&mut fm, threads, Some(femu_zone)).expect("femu run");
        rows.push(vec![
            format!("FEMU {tag}"),
            mibs(&w),
            mibs(&r),
            format!("{:.3}", w.waf()),
        ]);
        results.push((
            format!("femu-{tag}"),
            w.bandwidth_mibs(),
            r.bandwidth_mibs(),
        ));
    }

    print_table(
        "Fig. 6(a): sequential 512 KiB I/O bandwidth (MiB/s)",
        &["series", "write", "read", "waf"],
        &rows,
    );

    let get = |name: &str| {
        results
            .iter()
            .find(|(n, _, _)| n == name)
            .cloned()
            .expect("series present")
    };
    let (_, cz_w_st, cz_r_st) = get("conzone-ST");
    let (_, cz_w_mt, cz_r_mt) = get("conzone-MT");
    let (_, lg_w_st, lg_r_st) = get("legacy-ST");
    let (_, _lg_w_mt, lg_r_mt) = get("legacy-MT");
    let (_, fm_w_st, fm_r_st) = get("femu-ST");

    print_expectations(&[
        ExpectedRelation {
            claim: "ConZone write bandwidth comparable to Legacy",
            holds: (cz_w_st / lg_w_st - 1.0).abs() < 0.25,
            evidence: format!("ST write {cz_w_st:.0} vs {lg_w_st:.0} MiB/s"),
        },
        ExpectedRelation {
            claim: "ConZone ST read at or above Legacy ST read (~1 %)",
            holds: cz_r_st >= lg_r_st * 0.99,
            evidence: format!("{cz_r_st:.0} vs {lg_r_st:.0} MiB/s"),
        },
        ExpectedRelation {
            claim: "ConZone MT read above Legacy MT read (~10 %)",
            holds: cz_r_mt > lg_r_mt,
            evidence: format!(
                "{cz_r_mt:.0} vs {lg_r_mt:.0} MiB/s ({:+.1} %)",
                (cz_r_mt / lg_r_mt - 1.0) * 100.0
            ),
        },
        ExpectedRelation {
            claim: "FEMU write at ConZone's level or above (no UFS channel model)",
            holds: fm_w_st >= cz_w_st * 0.9,
            evidence: format!("{fm_w_st:.0} vs {cz_w_st:.0} MiB/s"),
        },
        ExpectedRelation {
            claim: "FEMU read far below ConZone (KVM switching latency)",
            holds: fm_r_st < cz_r_st * 0.8,
            evidence: format!("{fm_r_st:.0} vs {cz_r_st:.0} MiB/s"),
        },
        ExpectedRelation {
            claim: "ConZone MT write stays media-bound (WAF-bounded conflict cost)",
            holds: cz_w_mt > cz_w_st * 0.5,
            evidence: format!("{cz_w_mt:.0} vs ST {cz_w_st:.0} MiB/s"),
        },
    ]);
}
