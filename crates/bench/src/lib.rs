//! Shared harness code for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index). This library provides the
//! paper's §IV-A evaluation configuration, device factories, the workload
//! recipes behind each figure, and plain-text table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use conzone_core::ConZone;
use conzone_femu::FemuZns;
use conzone_host::{run_job, AccessPattern, FioJob, HostError, JobReport};
use conzone_legacy::LegacyDevice;
use conzone_sim::{export, LatencyHistogram, LatencySummary, RingBufferSink};
use conzone_types::{
    DeviceConfig, DeviceEvent, Geometry, MapGranularity, SearchStrategy, SimTime, StorageDevice,
    TraceRecord,
};

/// The paper's §IV-A configuration: TLC media, 2 channels × 2 chips,
/// 3200 MiB/s channels, 96 KiB programming unit, two 384 KiB write
/// buffers, 12 KiB L2P cache, ~1.5 GB flash with 16 MiB zones.
pub fn paper_config() -> DeviceConfig {
    DeviceConfig::paper_evaluation()
}

/// ConZone with the given mapping cap and search strategy on the paper
/// configuration.
pub fn conzone_device(max_aggregation: MapGranularity, strategy: SearchStrategy) -> ConZone {
    ConZone::new(
        DeviceConfig::builder(Geometry::consumer_1p5gb())
            .max_aggregation(max_aggregation)
            .search_strategy(strategy)
            .build()
            .expect("paper config"),
    )
}

/// The Legacy baseline on the paper configuration (prefetch window = one
/// chunk of entries, matching the paper's 1023-entry window).
pub fn legacy_device() -> LegacyDevice {
    LegacyDevice::new(paper_config())
}

/// The FEMU-like baseline on the paper configuration.
pub fn femu_device() -> FemuZns {
    FemuZns::new(paper_config())
}

/// Target I/O volume of the Fig. 6(a) sequential runs (rounded down to a
/// whole number of zones per thread for zoned devices).
pub const SEQ_VOLUME_BYTES: u64 = 256 * 1024 * 1024;

/// Fig. 6(a)'s fio recipe: 512 KiB sequential I/O over `region` bytes.
pub fn seq_job(pattern: AccessPattern, threads: usize, region: u64) -> FioJob {
    FioJob::new(pattern, 512 * 1024)
        .threads(threads)
        .bytes_per_thread(region / threads as u64)
        .region(0, region)
}

/// Runs write-then-read sequential jobs and returns `(write, read)`
/// reports, as Fig. 6(a) measures. For zoned devices the region rounds
/// down to a whole number of zones per thread so every thread's volume is
/// fully zone-covered (and thus fully readable afterwards).
///
/// # Errors
///
/// Propagates [`HostError`] from either phase.
pub fn run_seq_rw<D: StorageDevice + ?Sized>(
    dev: &mut D,
    threads: usize,
    zone_bytes: Option<u64>,
) -> Result<(JobReport, JobReport), HostError> {
    let region = match zone_bytes {
        Some(zb) => {
            let stride = zb * threads as u64;
            (SEQ_VOLUME_BYTES / stride) * stride
        }
        None => SEQ_VOLUME_BYTES,
    };
    let mut write = seq_job(AccessPattern::SeqWrite, threads, region);
    if let Some(zb) = zone_bytes {
        write = write.zone_bytes(zb);
    }
    let w = run_job(dev, &write)?;
    let r = run_job(
        dev,
        &seq_job(AccessPattern::SeqRead, threads, region).start_at(w.finished),
    )?;
    Ok((w, r))
}

/// Fills `[0, bytes)` of a zoned device sequentially, returning the finish
/// time.
///
/// # Errors
///
/// Propagates [`HostError`].
pub fn fill_zoned<D: StorageDevice + ?Sized>(
    dev: &mut D,
    bytes: u64,
    zone_bytes: u64,
    start: SimTime,
) -> Result<SimTime, HostError> {
    let job = FioJob::new(AccessPattern::SeqWrite, 512 * 1024)
        .zone_bytes(zone_bytes)
        .region(0, bytes)
        .bytes_per_thread(bytes)
        .start_at(start);
    Ok(run_job(dev, &job)?.finished)
}

/// A 4 KiB single-thread random-read job over `[0, range)` with a fixed op
/// count (the Fig. 7 / Fig. 8 recipe).
pub fn randread_job(range: u64, ops: u64, start: SimTime) -> FioJob {
    FioJob::new(AccessPattern::RandRead, 4096)
        .region(0, range)
        .ops_per_thread(ops)
        .bytes_per_thread(u64::MAX)
        .start_at(start)
}

/// Whether `--csv` was passed to the current binary (machine-readable
/// output for plotting scripts).
pub fn csv_mode() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Renders a plain-text table, or CSV when the binary was invoked with
/// `--csv`.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if csv_mode() {
        println!("# {title}");
        println!("{}", headers.join(","));
        for row in rows {
            println!("{}", row.join(","));
        }
        return;
    }
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Formats a bandwidth cell; non-finite values (degenerate zero-duration
/// reports) print as `n/a` instead of a misleading number.
pub fn mibs(report: &JobReport) -> String {
    let v = report.bandwidth_mibs();
    if v.is_finite() {
        format!("{v:.0}")
    } else {
        "n/a".to_string()
    }
}

/// Formats a KIOPS cell; non-finite values print as `n/a`.
pub fn kiops(report: &JobReport) -> String {
    let v = report.kiops();
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "n/a".to_string()
    }
}

/// Formats a microseconds latency cell.
pub fn us(d: conzone_types::SimDuration) -> String {
    format!("{:.1}", d.as_micros_f64())
}

/// A ring sink big enough for one measured phase of a figure run
/// (256 Ki events, ~10 MiB), for attaching to a device under test.
pub fn trace_sink() -> Arc<RingBufferSink> {
    Arc::new(RingBufferSink::with_capacity(256 * 1024))
}

/// Event counts per [`DeviceEvent::kind_index`] of a drained trace.
pub fn event_totals(records: &[TraceRecord]) -> [u64; DeviceEvent::KIND_COUNT] {
    let mut totals = [0u64; DeviceEvent::KIND_COUNT];
    for r in records {
        totals[r.event.kind_index()] += 1;
    }
    totals
}

/// Rows `(kind, count, first µs, last µs)` per event kind present in a
/// drained trace, ready for [`print_table`].
pub fn trace_summary_rows(records: &[TraceRecord]) -> Vec<Vec<String>> {
    // (kind index, name, count, first ns, last ns)
    let mut by_kind: Vec<(usize, &'static str, u64, u64, u64)> = Vec::new();
    for r in records {
        let idx = r.event.kind_index();
        let t = r.time.as_nanos();
        match by_kind.iter_mut().find(|e| e.0 == idx) {
            Some(e) => {
                e.2 += 1;
                e.3 = e.3.min(t);
                e.4 = e.4.max(t);
            }
            None => by_kind.push((idx, r.event.kind_name(), 1, t, t)),
        }
    }
    by_kind.sort_by_key(|e| e.0);
    by_kind
        .into_iter()
        .map(|(_, name, count, first, last)| {
            vec![
                name.to_string(),
                count.to_string(),
                format!("{:.1}", first as f64 / 1000.0),
                format!("{:.1}", last as f64 / 1000.0),
            ]
        })
        .collect()
}

/// GC pause distribution from paired `GcBegin`/`GcEnd` events in a
/// drained trace.
pub fn gc_pauses(records: &[TraceRecord]) -> LatencySummary {
    let mut hist = LatencyHistogram::new();
    let mut begin: Option<SimTime> = None;
    for r in records {
        match r.event {
            DeviceEvent::GcBegin { .. } => begin = Some(r.time),
            DeviceEvent::GcEnd { .. } => {
                if let Some(b) = begin.take() {
                    hist.record(r.time - b);
                }
            }
            _ => {}
        }
    }
    hist.summary()
}

/// `--trace-out <path>` passed to the current binary: where to write a
/// Chrome trace-event file of the measured run, if requested.
pub fn trace_out_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next();
        }
    }
    None
}

/// Writes a drained trace as Chrome trace-event JSON (loadable in
/// Perfetto / about:tracing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &str, records: &[TraceRecord]) -> std::io::Result<()> {
    std::fs::write(path, export::chrome_trace(records).to_string())
}

/// A paper-stated relationship between two measured values, checked and
/// reported by the harness (the ZMS hardware itself is closed; the paper
/// gives these relations in §IV-B/§IV-C/§IV-D prose).
#[derive(Debug)]
pub struct ExpectedRelation {
    /// What the paper claims, verbatim-ish.
    pub claim: &'static str,
    /// Whether our measurements satisfy it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// Prints a block of expectation checks.
pub fn print_expectations(expectations: &[ExpectedRelation]) {
    println!("\n-- paper-shape checks --");
    for e in expectations {
        println!(
            "[{}] {}  ({})",
            if e.holds { "ok" } else { "DEVIATES" },
            e.claim,
            e.evidence
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_build() {
        let c = conzone_device(MapGranularity::Chunk, SearchStrategy::Bitmap);
        assert_eq!(c.config().zone_size_bytes(), 16 * 1024 * 1024);
        let l = legacy_device();
        assert!(l.capacity_bytes() > 1_000_000_000);
        let f = femu_device();
        assert!(!f.config().model_channel_bandwidth);
    }

    #[test]
    fn seq_job_recipe_matches_paper() {
        let j = seq_job(AccessPattern::SeqWrite, 4, 256 * 1024 * 1024);
        assert_eq!(j.block_bytes, 512 * 1024);
        assert_eq!(j.threads, 4);
        assert_eq!(j.bytes_per_thread, 64 * 1024 * 1024);
    }

    #[test]
    fn trace_helpers_summarize_a_real_run() {
        use conzone_types::Probe;
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let sink = trace_sink();
        dev.set_probe(Probe::attached(sink.clone()));
        let job = FioJob::new(AccessPattern::SeqWrite, 256 * 1024)
            .zone_bytes(1024 * 1024)
            .region(0, 2 * 1024 * 1024)
            .bytes_per_thread(2 * 1024 * 1024);
        run_job(&mut dev, &job).expect("write");
        let records = sink.drain();
        assert!(!records.is_empty());
        let totals = event_totals(&records);
        assert_eq!(totals.iter().sum::<u64>(), records.len() as u64);
        let rows = trace_summary_rows(&records);
        assert!(!rows.is_empty());
        for row in &rows {
            assert_eq!(row.len(), 4);
        }
        // A pure sequential write on a fresh device runs no GC.
        assert_eq!(gc_pauses(&records).count, 0);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
