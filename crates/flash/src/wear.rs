//! Wear accounting and lifespan projection.
//!
//! The paper's introduction motivates zone abstraction with lifespan:
//! legacy devices move host-invalidated data during GC (the trim gap),
//! consuming program/erase cycles. This module turns the per-block erase
//! counters into a lifespan report: cycles used, budget fraction, and the
//! projected total host writes until the budget is exhausted.

use conzone_types::CellType;

/// Typical program/erase cycle budgets for 3D NAND (data-sheet order of
/// magnitude; the paper cites the QLC endurance decrease in §I).
pub fn erase_budget(cell: CellType) -> u64 {
    match cell {
        CellType::Slc => 60_000,
        CellType::Tlc => 3_000,
        CellType::Qlc => 1_000,
    }
}

/// Wear snapshot of one media region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionWear {
    /// Cell technology of the region.
    pub cell: CellType,
    /// Blocks in the region.
    pub blocks: u64,
    /// Highest per-block erase count.
    pub max_erases: u64,
    /// Mean per-block erase count.
    // xtask-lint: allow(float-determinism) — derived report ratio; never read back by the sim
    pub mean_erases: f64,
    /// Erase budget per block for this media.
    pub budget: u64,
}

impl RegionWear {
    /// Fraction of the region's worst block budget consumed, `[0, 1+]`.
    pub fn wear_fraction(&self) -> f64 {
        self.max_erases as f64 / self.budget as f64
    }

    /// Whether any block exceeded its budget.
    pub fn is_exhausted(&self) -> bool {
        self.max_erases >= self.budget
    }
}

/// Combined wear report for both regions of the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearReport {
    /// The SLC secondary-buffer region.
    pub slc: RegionWear,
    /// The normal (zoned) region.
    pub normal: RegionWear,
    /// Host bytes written so far (filled in by the device model).
    pub host_bytes_written: u64,
}

impl WearReport {
    /// Projected total host bytes writable before the worst region hits
    /// its budget, extrapolating linearly from wear so far. `None` until
    /// any wear accumulates.
    pub fn projected_lifetime_host_bytes(&self) -> Option<f64> {
        let worst = self.slc.wear_fraction().max(self.normal.wear_fraction());
        if worst <= 0.0 || self.host_bytes_written == 0 {
            None
        } else {
            Some(self.host_bytes_written as f64 / worst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(cell: CellType, max: u64) -> RegionWear {
        RegionWear {
            cell,
            blocks: 8,
            max_erases: max,
            mean_erases: max as f64 / 2.0,
            budget: erase_budget(cell),
        }
    }

    #[test]
    fn budgets_ordered_by_density() {
        assert!(erase_budget(CellType::Slc) > erase_budget(CellType::Tlc));
        assert!(erase_budget(CellType::Tlc) > erase_budget(CellType::Qlc));
    }

    #[test]
    fn wear_fraction_and_exhaustion() {
        let r = region(CellType::Tlc, 1500);
        assert!((r.wear_fraction() - 0.5).abs() < 1e-9);
        assert!(!r.is_exhausted());
        let r = region(CellType::Qlc, 1000);
        assert!(r.is_exhausted());
    }

    #[test]
    fn lifetime_projection() {
        let report = WearReport {
            slc: region(CellType::Slc, 600),    // 1 % worn
            normal: region(CellType::Tlc, 300), // 10 % worn — the binding one
            host_bytes_written: 1 << 30,
        };
        let projected = report.projected_lifetime_host_bytes().unwrap();
        assert!((projected - 10.0 * (1u64 << 30) as f64).abs() < 1.0);

        let fresh = WearReport {
            slc: region(CellType::Slc, 0),
            normal: region(CellType::Tlc, 0),
            host_bytes_written: 0,
        };
        assert!(fresh.projected_lifetime_host_bytes().is_none());
    }
}
