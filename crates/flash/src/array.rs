//! The timed flash array: chips, channels, blocks and Table-II latencies.
//!
//! [`FlashArray`] owns every block's state plus one [`Resource`] per chip
//! and per channel. Operations reserve those resources in submission order,
//! so queueing delay and parallelism fall out of the reservation times:
//!
//! * **read**: the chip senses one flash page (media read latency), then the
//!   channel transfers the requested bytes to the controller;
//! * **program**: the channel transfers the payload to the chip's page
//!   buffer, then the chip programs (media program latency);
//! * **erase**: the chip is busy for the media erase latency.
//!
//! SLC blocks partial-program one 4 KiB slice per program operation;
//! multi-level-cell blocks program whole multi-page programming units
//! (paper §II-A).

use conzone_sim::{Reservation, Resource, ResourceBank};
use conzone_types::{
    CellType, ChipId, DeviceConfig, DeviceEvent, FaultKind, Geometry, MediaOp, MediaTimings, Ppa,
    Probe, SimDuration, SimTime, SuperblockId, SLICE_BYTES,
};

use crate::block::Block;
use crate::error::FlashError;
use crate::fault::FaultPlane;
use crate::store::DataStore;

/// Cumulative media-level statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlashStats {
    /// Bytes programmed into SLC blocks.
    pub program_bytes_slc: u64,
    /// Bytes programmed into TLC blocks.
    pub program_bytes_tlc: u64,
    /// Bytes programmed into QLC blocks.
    pub program_bytes_qlc: u64,
    /// Flash page sense operations.
    pub page_reads: u64,
    /// Block erases in the SLC region.
    pub erases_slc: u64,
    /// Block erases in the normal region.
    pub erases_normal: u64,
    /// Read-retry steps paid across all page senses.
    pub read_retries: u64,
    /// Blocks permanently retired (failed erases + grown bad blocks).
    pub blocks_retired: u64,
}

/// Result of a program operation.
///
/// Real controllers free the volatile buffer once the payload has been
/// transferred into the chip's page register; the cell programming itself
/// (`tPROG`) continues in the background while the chip stays busy. The
/// two timestamps expose that distinction: host-visible write completion
/// follows `buffer_free`, while subsequent operations on the same chip
/// queue behind `finish`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramOutcome {
    /// Physical address of the first programmed slice; the programmed run
    /// is linear (`first`, `first + 1`, …).
    pub first: Ppa,
    /// Number of slices programmed.
    pub slices: u64,
    /// When the channel transfer ends and the source buffer is reusable.
    pub buffer_free: SimTime,
    /// When the cell programming completes (chip becomes free).
    pub finish: SimTime,
}

/// Result of a read operation.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// When the last page's data arrives at the controller.
    pub finish: SimTime,
    /// Payload in request order, when the data store is enabled.
    pub data: Option<Vec<u8>>,
}

/// The flash media model.
#[derive(Debug)]
pub struct FlashArray {
    geometry: Geometry,
    timings: MediaTimings,
    normal_cell: CellType,
    channel_bytes_per_sec: u64,
    model_channel_bandwidth: bool,
    /// Blocks in chip-major order: `blocks[chip * blocks_per_chip + block]`.
    blocks: Vec<Block>,
    /// One resource per plane (`chip * planes + block % planes`):
    /// operations on different planes of a die overlap; within a plane
    /// they serialise.
    planes: ResourceBank,
    channels: ResourceBank,
    store: DataStore,
    stats: FlashStats,
    probe: Probe,
    fault: FaultPlane,
    /// Scratch for `read_slices` page grouping — `(chip, block, page,
    /// bytes)` per flash-page sense — reused across calls so the per-IO
    /// read path performs no heap allocation in steady state.
    read_scratch: Vec<(ChipId, usize, usize, u64)>,
}

impl FlashArray {
    /// Builds an erased array from a validated configuration.
    pub fn new(cfg: &DeviceConfig) -> FlashArray {
        let g = cfg.geometry;
        let slices = g.slices_per_block() as usize;
        let mut blocks = Vec::with_capacity(g.nchips() * g.blocks_per_chip);
        for _chip in 0..g.nchips() {
            for block in 0..g.blocks_per_chip {
                let cell = if block < g.slc_blocks_per_chip {
                    CellType::Slc
                } else {
                    cfg.normal_cell
                };
                blocks.push(Block::new(cell, slices));
            }
        }
        FlashArray {
            geometry: g,
            timings: cfg.timings,
            normal_cell: cfg.normal_cell,
            channel_bytes_per_sec: cfg.channel_bytes_per_sec,
            model_channel_bandwidth: cfg.model_channel_bandwidth,
            blocks,
            planes: ResourceBank::new(g.nplanes()),
            channels: ResourceBank::new(g.channels),
            store: DataStore::new(cfg.data_backing),
            stats: FlashStats::default(),
            probe: Probe::disabled(),
            fault: FaultPlane::new(cfg.fault, g.nchips() * g.blocks_per_chip),
            // One group per touched (chip, block, page); a whole-superblock
            // GC read is the largest caller, so pre-size to its page count
            // rather than growing mid-workload.
            read_scratch: Vec::with_capacity(g.nchips() * g.pages_per_block),
        }
    }

    /// Attaches a trace probe that receives every media program / read /
    /// erase as a [`DeviceEvent::Media`]. Disabled by default.
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// The array geometry.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Media statistics so far.
    #[inline]
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Whether payload bytes are retained for verification.
    #[inline]
    pub fn stores_data(&self) -> bool {
        self.store.is_enabled()
    }

    /// Cell technology of a block index (same on every chip).
    #[inline]
    pub fn cell_of_block(&self, block: usize) -> CellType {
        if block < self.geometry.slc_blocks_per_chip {
            CellType::Slc
        } else {
            self.normal_cell
        }
    }

    fn block_index(&self, chip: ChipId, block: usize) -> usize {
        debug_assert!((chip.raw() as usize) < self.geometry.nchips());
        debug_assert!(block < self.geometry.blocks_per_chip);
        chip.raw() as usize * self.geometry.blocks_per_chip + block
    }

    /// Immutable view of one block's state.
    pub fn block(&self, chip: ChipId, block: usize) -> &Block {
        &self.blocks[self.block_index(chip, block)]
    }

    /// Physical address of in-block slice 0 of a block. Slices within a
    /// block are linear from this base.
    pub fn block_base(&self, chip: ChipId, block: usize) -> Ppa {
        self.geometry.encode_ppa(chip, block, 0, 0)
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.model_channel_bandwidth {
            SimDuration::for_transfer(bytes, self.channel_bytes_per_sec)
        } else {
            SimDuration::ZERO
        }
    }

    fn count_program(&mut self, now: SimTime, cell: CellType, bytes: u64) {
        match cell {
            CellType::Slc => self.stats.program_bytes_slc += bytes,
            CellType::Tlc => self.stats.program_bytes_tlc += bytes,
            CellType::Qlc => self.stats.program_bytes_qlc += bytes,
        }
        self.probe.emit(
            now,
            DeviceEvent::Media {
                op: MediaOp::Program,
                cell,
                bytes,
            },
        );
    }

    /// Programs one full programming unit at the block's cursor on a
    /// multi-level-cell block.
    ///
    /// # Errors
    ///
    /// * [`FlashError::PartialProgramOnMlc`] if called on an SLC block,
    /// * [`FlashError::UnalignedUnit`] if the cursor is mid-unit (cannot
    ///   happen when all programming goes through this method),
    /// * [`FlashError::BlockFull`] when the block has no room,
    /// * [`FlashError::DataLength`] when a payload of the wrong size is
    ///   given.
    // xtask-effect: hot_path
    pub fn program_unit(
        &mut self,
        now: SimTime,
        chip: ChipId,
        block: usize,
        data: Option<&[u8]>,
    ) -> Result<ProgramOutcome, FlashError> {
        let cell = self.cell_of_block(block);
        let unit_slices = self.geometry.slices_per_unit();
        if cell == CellType::Slc {
            return Err(FlashError::PartialProgramOnMlc {
                requested: unit_slices,
                unit: 1,
            });
        }
        let unit_bytes = self.geometry.program_unit_bytes;
        if let Some(d) = data {
            if d.len() != unit_bytes {
                return Err(FlashError::DataLength {
                    expected: unit_bytes,
                    got: d.len(),
                });
            }
        }
        let idx = self.block_index(chip, block);
        if !self.blocks[idx].cursor().is_multiple_of(unit_slices) {
            return Err(FlashError::UnalignedUnit {
                cursor: self.blocks[idx].cursor(),
            });
        }
        if self.fault.is_retired(idx) {
            // The zone's fixed LPN→PPA mapping still owns these slices, so
            // the cursor advances (burning them) even though nothing lands.
            self.burn_slices(idx, unit_slices)?;
            return Err(FlashError::BlockRetired {
                chip: chip.raw(),
                block: block as u64,
            });
        }
        if self.fault.program_fails() {
            self.burn_slices(idx, unit_slices)?;
            // The chip still pays transfer + tPROG for the failed attempt.
            let plane = self.geometry.plane_of(chip, block);
            self.schedule_program(now, chip, plane, unit_bytes as u64, cell, 1);
            self.note_program_failure(now, chip, block, idx);
            return Err(FlashError::ProgramFailed {
                chip: chip.raw(),
                block: block as u64,
            });
        }
        let start_slice = self.blocks[idx].program(unit_slices)?;
        let first = self.block_base(chip, block).offset(start_slice as u64);
        if let Some(d) = data {
            for (i, chunk) in d.chunks_exact(SLICE_BYTES as usize).enumerate() {
                self.store.put(first.offset(i as u64), chunk);
            }
        }
        self.count_program(now, cell, unit_bytes as u64);
        let plane = self.geometry.plane_of(chip, block);
        let (buffer_free, finish) =
            self.schedule_program(now, chip, plane, unit_bytes as u64, cell, 1);
        Ok(ProgramOutcome {
            first,
            slices: unit_slices as u64,
            buffer_free,
            finish,
        })
    }

    /// Partial-programs `count` 4 KiB slices at the cursor of an SLC block
    /// (paper §II-A: SLC programs partially with a 4 KiB unit). Slices
    /// arriving together that share a flash page are programmed in one
    /// operation, so the chip pays one `tPROG` per *page touched*, not per
    /// slice.
    ///
    /// # Errors
    ///
    /// * [`FlashError::PartialProgramOnMlc`] if the block is not SLC,
    /// * [`FlashError::BlockFull`] when fewer than `count` slices remain,
    /// * [`FlashError::DataLength`] for a mis-sized payload.
    // xtask-effect: hot_path
    pub fn program_slc(
        &mut self,
        now: SimTime,
        chip: ChipId,
        block: usize,
        count: usize,
        data: Option<&[u8]>,
    ) -> Result<ProgramOutcome, FlashError> {
        if self.cell_of_block(block) != CellType::Slc {
            return Err(FlashError::PartialProgramOnMlc {
                requested: count,
                unit: self.geometry.slices_per_unit(),
            });
        }
        let bytes = count as u64 * SLICE_BYTES;
        if let Some(d) = data {
            if d.len() as u64 != bytes {
                return Err(FlashError::DataLength {
                    expected: bytes as usize,
                    got: d.len(),
                });
            }
        }
        let idx = self.block_index(chip, block);
        if self.fault.is_retired(idx) {
            // SLC placement is flexible: no burn, the caller just picks
            // another block.
            return Err(FlashError::BlockRetired {
                chip: chip.raw(),
                block: block as u64,
            });
        }
        let start_slice = self.blocks[idx].program(count)?;
        let first = self.block_base(chip, block).offset(start_slice as u64);
        // One program operation per flash page covered by the run.
        let spp = self.geometry.slices_per_page();
        let first_page = start_slice / spp;
        let last_page = (start_slice + count - 1) / spp;
        let ops = (last_page - first_page + 1) as u64;
        if self.fault.program_fails() {
            // Burn the just-claimed slices; the chip still pays the
            // transfer + tPROG of the failed attempt.
            for i in start_slice..start_slice + count {
                self.blocks[idx].invalidate(i)?;
            }
            let plane = self.geometry.plane_of(chip, block);
            self.schedule_program(now, chip, plane, bytes, CellType::Slc, ops);
            self.note_program_failure(now, chip, block, idx);
            return Err(FlashError::ProgramFailed {
                chip: chip.raw(),
                block: block as u64,
            });
        }
        if let Some(d) = data {
            for (i, chunk) in d.chunks_exact(SLICE_BYTES as usize).enumerate() {
                self.store.put(first.offset(i as u64), chunk);
            }
        }
        self.count_program(now, CellType::Slc, bytes);
        let plane = self.geometry.plane_of(chip, block);
        let (buffer_free, finish) =
            self.schedule_program(now, chip, plane, bytes, CellType::Slc, ops);
        Ok(ProgramOutcome {
            first,
            slices: count as u64,
            buffer_free,
            finish,
        })
    }

    /// Advances a block's cursor by `count` slices and marks them dead.
    /// The fixed zone→block mapping requires failed unit programs to
    /// consume their slices so later units still land at the expected
    /// physical addresses.
    fn burn_slices(&mut self, idx: usize, count: usize) -> Result<(), FlashError> {
        let start = self.blocks[idx].program(count)?;
        for i in start..start + count {
            self.blocks[idx].invalidate(i)?;
        }
        Ok(())
    }

    /// Bookkeeping for one injected program failure: trace event plus
    /// grown-bad promotion when the block's failure count crosses the
    /// configured threshold.
    fn note_program_failure(&mut self, now: SimTime, chip: ChipId, block: usize, idx: usize) {
        self.probe.emit(
            now,
            DeviceEvent::FaultInjected {
                kind: FaultKind::Program,
                chip: chip.raw(),
                block: block as u64,
            },
        );
        if self.fault.record_program_failure(idx) {
            self.stats.blocks_retired += 1;
            self.probe.emit(
                now,
                DeviceEvent::BlockRetired {
                    chip: chip.raw(),
                    block: block as u64,
                },
            );
        }
    }

    /// Whether a block is permanently retired (failed erase or grown bad).
    #[inline]
    pub fn is_block_retired(&self, chip: ChipId, block: usize) -> bool {
        self.fault.is_retired(self.block_index(chip, block))
    }

    /// Number of permanently retired blocks.
    #[inline]
    pub fn retired_blocks(&self) -> u64 {
        self.fault.retired_count()
    }

    /// Reserves `ops` transfer-then-program rounds on the chip (one round
    /// per partial program for SLC, a single round for a whole unit).
    /// Transfers wait for the chip's page register — i.e. for the previous
    /// program on that chip to complete. Returns `(last transfer end, last
    /// program end)`.
    fn schedule_program(
        &mut self,
        now: SimTime,
        chip: ChipId,
        plane: usize,
        bytes: u64,
        cell: CellType,
        ops: u64,
    ) -> (SimTime, SimTime) {
        let channel = self.geometry.channel_of(chip).raw() as usize;
        let per_op = self.transfer_time(bytes / ops);
        let prog = self.timings.latency(cell).program;
        let mut cursor = now;
        let mut buffer_free = now;
        let mut finish = now;
        for _ in 0..ops {
            let register_free = self.planes.free_at(plane);
            let xfer = self
                .channels
                .acquire(channel, cursor.max(register_free), per_op);
            cursor = xfer.end;
            buffer_free = xfer.end;
            finish = self.planes.acquire(plane, xfer.end, prog).end;
        }
        (buffer_free, finish)
    }

    /// Reads the given slices, grouping them into flash-page senses, and
    /// returns the completion time (and payload when the store is enabled).
    ///
    /// Slices must hold live data.
    ///
    /// # Errors
    ///
    /// [`FlashError::ReadDead`] if any slice is erased or invalidated.
    // xtask-effect: hot_path
    pub fn read_slices(&mut self, now: SimTime, ppas: &[Ppa]) -> Result<ReadOutcome, FlashError> {
        // Group into flash pages preserving first-appearance order so
        // resource reservation stays deterministic. The group list is a
        // reused scratch buffer and dedup is a linear scan — one IO spans
        // at most a handful of flash pages, and the hot read path must
        // not allocate.
        let mut order = std::mem::take(&mut self.read_scratch);
        order.clear();
        let mut dead: Option<Ppa> = None;
        for &ppa in ppas {
            let parts = self.geometry.decode_ppa(ppa);
            let blk = self.block(parts.chip, parts.block);
            let in_block = parts.page * self.geometry.slices_per_page() + parts.slice;
            if !blk.is_written(in_block) || !blk.is_valid(in_block) {
                dead = Some(ppa);
                break;
            }
            let key = (parts.chip, parts.block, parts.page);
            match order
                .iter_mut()
                .find(|g| (g.0, g.1, g.2) == (key.0, key.1, key.2))
            {
                Some(g) => g.3 += SLICE_BYTES,
                None => order.push((parts.chip, parts.block, parts.page, SLICE_BYTES)),
            }
        }
        if let Some(ppa) = dead {
            self.read_scratch = order;
            return Err(FlashError::ReadDead { ppa });
        }
        let mut finish = now;
        for &(chip, block, _page, bytes) in &order {
            let cell = self.cell_of_block(block);
            let plane = self.geometry.plane_of(chip, block);
            let mut sense_lat = self.timings.latency(cell).read;
            let steps = self.fault.read_retry_steps();
            if steps > 0 {
                // Each retry step re-senses at a shifted reference
                // voltage, stretching this page's chip occupancy.
                sense_lat += self.fault.retry_penalty(steps);
                self.stats.read_retries += u64::from(steps);
                self.probe.emit(now, DeviceEvent::ReadRetry { steps });
            }
            let sense = self.planes.acquire(plane, now, sense_lat);
            let channel = self.geometry.channel_of(chip).raw() as usize;
            let xfer = self
                .channels
                .acquire(channel, sense.end, self.transfer_time(bytes));
            finish = finish.max(xfer.end);
            self.stats.page_reads += 1;
            self.probe.emit(
                now,
                DeviceEvent::Media {
                    op: MediaOp::Read,
                    cell,
                    bytes,
                },
            );
        }
        self.read_scratch = order;
        let data = if self.store.is_enabled() {
            // xtask-lint: allow(hot-path-effects) — returned payload buffer, only built with data backing enabled; the reference workloads run timing-only and the steady-state guard holds there
            let mut buf = Vec::with_capacity(ppas.len() * SLICE_BYTES as usize);
            for &ppa in ppas {
                match self.store.get(ppa) {
                    Some(slice) => buf.extend_from_slice(slice),
                    // Programmed without a payload (timing-only write):
                    // reads back as zeroes.
                    None => buf.resize(buf.len() + SLICE_BYTES as usize, 0),
                }
            }
            Some(buf)
        } else {
            None
        };
        Ok(ReadOutcome { finish, data })
    }

    /// A timing-only program of `bytes` on `chip` with `cell` latency,
    /// split into `ops` transfer-then-program rounds. Counts programmed
    /// bytes but touches no block state — for baseline models without a
    /// real FTL (FEMU's ZNS mode). Returns `(buffer_free, finish)`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is zero.
    pub fn timed_program(
        &mut self,
        now: SimTime,
        chip: ChipId,
        cell: CellType,
        bytes: u64,
        ops: u64,
    ) -> (SimTime, SimTime) {
        // xtask-lint: allow(hot-path-effects) — documented precondition: a zero-op program is a caller bug and aborting is the correct response
        assert!(ops > 0, "at least one program operation");
        self.count_program(now, cell, bytes);
        let plane = self.geometry.plane_of(chip, 0);
        self.schedule_program(now, chip, plane, bytes, cell, ops)
    }

    /// A timing-only page read of `bytes` on `chip` with `cell` latency,
    /// used for mapping-table fetches (no block state is touched).
    pub fn timed_page_read(
        &mut self,
        now: SimTime,
        chip: ChipId,
        cell: CellType,
        bytes: u64,
    ) -> Reservation {
        self.probe.emit(
            now,
            DeviceEvent::Media {
                op: MediaOp::Read,
                cell,
                bytes,
            },
        );
        let plane = self.geometry.plane_of(chip, 0);
        let sense = self
            .planes
            .acquire(plane, now, self.timings.latency(cell).read);
        let channel = self.geometry.channel_of(chip).raw() as usize;
        self.channels
            .acquire(channel, sense.end, self.transfer_time(bytes))
    }

    /// Marks one slice dead.
    ///
    /// # Errors
    ///
    /// [`FlashError::InvalidSlice`] if the slice was never programmed.
    pub fn invalidate(&mut self, ppa: Ppa) -> Result<(), FlashError> {
        let parts = self.geometry.decode_ppa(ppa);
        let in_block = parts.page * self.geometry.slices_per_page() + parts.slice;
        let idx = self.block_index(parts.chip, parts.block);
        self.blocks[idx].invalidate(in_block)?;
        self.store.remove(ppa);
        Ok(())
    }

    /// Moves a retained payload between physical slices (GC migration).
    pub fn relocate_data(&mut self, from: Ppa, to: Ppa) {
        self.store.relocate(from, to);
    }

    /// Fetches the retained payload of a slice, if any.
    pub fn data_of(&self, ppa: Ppa) -> Option<&[u8]> {
        self.store.get(ppa)
    }

    /// Erases one block; live data (if any) is destroyed.
    ///
    /// Erases of retired blocks are zero-time no-ops (the controller skips
    /// them), though the block state is still reset so superblock erase
    /// accounting stays consistent. A failed erase retires the block
    /// permanently — it drops out of its superblock's usable set — but
    /// still occupies the chip for the full erase latency.
    pub fn erase_block(&mut self, now: SimTime, chip: ChipId, block: usize) -> Reservation {
        let cell = self.cell_of_block(block);
        let idx = self.block_index(chip, block);
        let plane = self.geometry.plane_of(chip, block);
        let base = self.block_base(chip, block);
        if self.fault.is_retired(idx) {
            self.blocks[idx].erase();
            self.store
                .remove_range(base, self.geometry.slices_per_block());
            return self.planes.acquire(plane, now, SimDuration::ZERO);
        }
        self.blocks[idx].erase();
        self.store
            .remove_range(base, self.geometry.slices_per_block());
        if self.fault.erase_fails() {
            self.fault.retire(idx);
            self.stats.blocks_retired += 1;
            self.probe.emit(
                now,
                DeviceEvent::FaultInjected {
                    kind: FaultKind::Erase,
                    chip: chip.raw(),
                    block: block as u64,
                },
            );
            self.probe.emit(
                now,
                DeviceEvent::BlockRetired {
                    chip: chip.raw(),
                    block: block as u64,
                },
            );
        }
        if cell == CellType::Slc {
            self.stats.erases_slc += 1;
        } else {
            self.stats.erases_normal += 1;
        }
        self.probe.emit(
            now,
            DeviceEvent::Media {
                op: MediaOp::Erase,
                cell,
                bytes: 0,
            },
        );
        self.planes
            .acquire(plane, now, self.timings.latency(cell).erase)
    }

    /// Erases one superblock (the same block on every chip, in parallel)
    /// and returns when the last chip finishes.
    pub fn erase_superblock(&mut self, now: SimTime, sb: SuperblockId) -> SimTime {
        let mut finish = now;
        for chip in 0..self.geometry.nchips() {
            let r = self.erase_block(now, ChipId(chip as u64), sb.raw() as usize);
            finish = finish.max(r.end);
        }
        finish
    }

    /// Live slices in a superblock, summed over all chips.
    pub fn superblock_valid_slices(&self, sb: SuperblockId) -> usize {
        (0..self.geometry.nchips())
            .map(|c| {
                self.block(ChipId(c as u64), sb.raw() as usize)
                    .valid_count()
            })
            .sum()
    }

    /// Whether every chip's block of this superblock is fully programmed.
    pub fn superblock_full(&self, sb: SuperblockId) -> bool {
        (0..self.geometry.nchips())
            .all(|c| self.block(ChipId(c as u64), sb.raw() as usize).is_full())
    }

    /// Whether every chip's block of this superblock is erased.
    pub fn superblock_erased(&self, sb: SuperblockId) -> bool {
        (0..self.geometry.nchips())
            .all(|c| self.block(ChipId(c as u64), sb.raw() as usize).is_erased())
    }

    /// Physical addresses of all live slices in a superblock, chip-major.
    pub fn superblock_valid_ppas(&self, sb: SuperblockId) -> Vec<Ppa> {
        let mut out = Vec::new();
        self.superblock_valid_ppas_into(sb, &mut out);
        out
    }

    /// Appends all live slice addresses of a superblock to `out`,
    /// chip-major — the allocation-free variant GC uses with a reused
    /// scratch buffer.
    pub fn superblock_valid_ppas_into(&self, sb: SuperblockId, out: &mut Vec<Ppa>) {
        for c in 0..self.geometry.nchips() {
            let chip = ChipId(c as u64);
            let base = self.block_base(chip, sb.raw() as usize);
            for idx in self.block(chip, sb.raw() as usize).iter_valid() {
                out.push(base.offset(idx as u64));
            }
        }
    }

    /// Per-region wear snapshot (the device model fills in host bytes).
    pub fn wear_report(&self) -> crate::WearReport {
        let g = &self.geometry;
        let region = |range: std::ops::Range<usize>, cell: CellType| {
            let mut max = 0u64;
            let mut sum = 0u64;
            let mut blocks = 0u64;
            for chip in 0..g.nchips() {
                for block in range.clone() {
                    let e = self.block(ChipId(chip as u64), block).erase_count();
                    max = max.max(e);
                    sum += e;
                    blocks += 1;
                }
            }
            crate::RegionWear {
                cell,
                blocks,
                max_erases: max,
                mean_erases: if blocks == 0 {
                    0.0
                } else {
                    sum as f64 / blocks as f64
                },
                budget: crate::erase_budget(cell),
            }
        };
        crate::WearReport {
            slc: region(0..g.slc_blocks_per_chip, CellType::Slc),
            normal: region(g.slc_blocks_per_chip..g.blocks_per_chip, self.normal_cell),
            host_bytes_written: 0,
        }
    }

    /// Maximum erase count across all blocks (wear indicator).
    pub fn max_erase_count(&self) -> u64 {
        self.blocks
            .iter()
            .map(Block::erase_count)
            .max()
            .unwrap_or(0)
    }

    /// Mean erase count across all blocks.
    pub fn mean_erase_count(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(Block::erase_count).sum::<u64>() as f64 / self.blocks.len() as f64
    }

    /// When every plane and channel has drained.
    pub fn all_idle_at(&self) -> SimTime {
        self.planes.all_free_at().max(self.channels.all_free_at())
    }

    /// When the chip's earliest-free plane becomes available (used by
    /// placement policies that prefer idle dies).
    pub fn chip_free_at(&self, chip: ChipId) -> SimTime {
        let planes = self.geometry.planes_per_chip;
        let base = chip.raw() as usize * planes;
        (base..base + planes)
            .map(|p| self.planes.free_at(p))
            .min()
            // xtask-lint: allow(unwrap-expect, hot-path-effects) — Geometry::validate
            // rejects planes_per_chip == 0, so the range is never empty.
            .expect("chip has at least one plane")
    }
}

/// Convenience: a standalone resource for host-side overheads, re-exported
/// for device models that need an extra serial stage.
pub type HostStage = Resource;

#[cfg(test)]
mod tests {
    use super::*;
    use conzone_types::DeviceConfig;

    fn array() -> FlashArray {
        FlashArray::new(&DeviceConfig::tiny_for_tests())
    }

    #[test]
    fn cell_layout_matches_config() {
        let a = array();
        assert_eq!(a.cell_of_block(0), CellType::Slc);
        assert_eq!(a.cell_of_block(3), CellType::Slc);
        assert_eq!(a.cell_of_block(4), CellType::Tlc);
    }

    #[test]
    fn program_unit_timing_is_transfer_plus_program() {
        let mut a = array();
        let out = a.program_unit(SimTime::ZERO, ChipId(0), 4, None).unwrap();
        // 64 KiB over 3200 MiB/s ≈ 19.5 us, plus 937.5 us TLC program.
        let xfer = SimDuration::for_transfer(64 * 1024, 3200 * 1024 * 1024);
        let expect = SimTime::ZERO + xfer + SimDuration::from_nanos(937_500);
        assert_eq!(out.finish, expect);
        assert_eq!(out.slices, 16);
        assert_eq!(a.stats().program_bytes_tlc, 64 * 1024);
    }

    #[test]
    fn slc_partial_program_costs_per_page_touched() {
        let mut a = array();
        // One slice: one partial-program op (75 us chip time).
        let one = a.program_slc(SimTime::ZERO, ChipId(1), 0, 1, None).unwrap();
        assert!(one.finish - SimTime::ZERO >= SimDuration::from_micros(75));
        assert!(one.buffer_free < one.finish, "buffer frees before tPROG");
        // Three more slices complete page 0: still a single op, but it
        // queues behind the first program on the chip.
        let three = a.program_slc(one.finish, ChipId(1), 0, 3, None).unwrap();
        let busy = three.finish - one.finish;
        assert!(
            busy >= SimDuration::from_micros(75) && busy < SimDuration::from_micros(160),
            "{busy}"
        );
        // Eight slices spanning two pages: two ops back to back.
        let eight = a.program_slc(three.finish, ChipId(1), 0, 8, None).unwrap();
        let busy = eight.finish - three.finish;
        assert!(busy >= SimDuration::from_micros(150), "{busy}");
        assert_eq!(a.stats().program_bytes_slc, 12 * 4096);
    }

    #[test]
    fn mlc_partial_program_rejected_and_vice_versa() {
        let mut a = array();
        assert!(matches!(
            a.program_slc(SimTime::ZERO, ChipId(0), 5, 1, None),
            Err(FlashError::PartialProgramOnMlc { .. })
        ));
        assert!(matches!(
            a.program_unit(SimTime::ZERO, ChipId(0), 0, None),
            Err(FlashError::PartialProgramOnMlc { .. })
        ));
    }

    #[test]
    fn read_after_program_returns_data() {
        let mut a = array();
        let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        let out = a
            .program_unit(SimTime::ZERO, ChipId(2), 6, Some(&payload))
            .unwrap();
        let ppas: Vec<Ppa> = (0..out.slices).map(|i| out.first.offset(i)).collect();
        let read = a.read_slices(out.finish, &ppas).unwrap();
        assert_eq!(read.data.as_deref(), Some(&payload[..]));
        assert!(read.finish > out.finish);
    }

    #[test]
    fn read_of_dead_slice_fails() {
        let mut a = array();
        let out = a.program_slc(SimTime::ZERO, ChipId(0), 1, 2, None).unwrap();
        a.invalidate(out.first).unwrap();
        assert!(matches!(
            a.read_slices(out.finish, &[out.first]),
            Err(FlashError::ReadDead { .. })
        ));
        // The sibling slice is still readable.
        a.read_slices(out.finish, &[out.first.offset(1)]).unwrap();
    }

    #[test]
    fn reads_of_same_page_sense_once() {
        let mut a = array();
        let out = a.program_slc(SimTime::ZERO, ChipId(0), 2, 4, None).unwrap();
        let before = a.stats().page_reads;
        let ppas: Vec<Ppa> = (0..4).map(|i| out.first.offset(i)).collect();
        a.read_slices(out.finish, &ppas).unwrap();
        assert_eq!(a.stats().page_reads, before + 1);
    }

    #[test]
    fn erase_superblock_clears_all_chips() {
        let mut a = array();
        for chip in 0..4 {
            a.program_unit(SimTime::ZERO, ChipId(chip), 7, None)
                .unwrap();
        }
        assert!(!a.superblock_erased(SuperblockId(7)));
        let t = a.erase_superblock(SimTime::ZERO, SuperblockId(7));
        assert!(a.superblock_erased(SuperblockId(7)));
        assert!(t >= SimTime::ZERO + SimDuration::from_millis(3));
        assert_eq!(a.stats().erases_normal, 4);
        assert_eq!(a.max_erase_count(), 1);
        assert!(a.mean_erase_count() > 0.0);
    }

    #[test]
    fn superblock_valid_accounting() {
        let mut a = array();
        let sb = SuperblockId(1); // SLC superblock
        a.program_slc(SimTime::ZERO, ChipId(0), 1, 3, None).unwrap();
        a.program_slc(SimTime::ZERO, ChipId(2), 1, 2, None).unwrap();
        assert_eq!(a.superblock_valid_slices(sb), 5);
        let ppas = a.superblock_valid_ppas(sb);
        assert_eq!(ppas.len(), 5);
        a.invalidate(ppas[0]).unwrap();
        assert_eq!(a.superblock_valid_slices(sb), 4);
    }

    #[test]
    fn channel_contention_serializes_transfers() {
        let mut a = array();
        // Chips 0 and 2 share channel 0 in the tiny geometry.
        let r1 = a.timed_page_read(SimTime::ZERO, ChipId(0), CellType::Slc, 16 * 1024);
        let r2 = a.timed_page_read(SimTime::ZERO, ChipId(2), CellType::Slc, 16 * 1024);
        // Both sense in parallel (different chips) but the second transfer
        // queues behind the first on the shared channel.
        assert_eq!(r2.start, r1.end);
    }

    #[test]
    fn planes_overlap_programs_on_one_die() {
        let mut g = conzone_types::Geometry::tiny();
        g.planes_per_chip = 2;
        let cfg = conzone_types::DeviceConfig::builder(g)
            .chunk_bytes(256 * 1024)
            .build()
            .unwrap();
        let mut a = FlashArray::new(&cfg);
        // Blocks 4 and 5 sit on different planes of chip 0: their unit
        // programs overlap in time.
        let p1 = a.program_unit(SimTime::ZERO, ChipId(0), 4, None).unwrap();
        let p2 = a.program_unit(SimTime::ZERO, ChipId(0), 5, None).unwrap();
        assert!(
            p2.finish < p1.finish + SimDuration::from_micros(500),
            "overlapped"
        );
        // Blocks 4 and 6 share plane 0: they serialise.
        let mut a = FlashArray::new(&cfg);
        let p1 = a.program_unit(SimTime::ZERO, ChipId(0), 4, None).unwrap();
        let p3 = a.program_unit(SimTime::ZERO, ChipId(0), 6, None).unwrap();
        assert!(p3.finish >= p1.finish + SimDuration::from_nanos(937_500));
    }

    fn faulty_array(program: f64, erase: f64, retry: f64) -> FlashArray {
        let cfg = conzone_types::DeviceConfig::builder(conzone_types::Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .fault(conzone_types::FaultConfig::with_rates(
                program, erase, retry,
            ))
            .build()
            .unwrap();
        FlashArray::new(&cfg)
    }

    #[test]
    fn program_failure_burns_the_unit_and_reports() {
        let mut a = faulty_array(1.0, 0.0, 0.0);
        let err = a
            .program_unit(SimTime::ZERO, ChipId(0), 4, None)
            .unwrap_err();
        assert!(matches!(
            err,
            FlashError::ProgramFailed { chip: 0, block: 4 }
        ));
        // The cursor advanced past the burned unit; nothing is live.
        let blk = a.block(ChipId(0), 4);
        assert_eq!(blk.cursor(), a.geometry().slices_per_unit());
        assert_eq!(blk.valid_count(), 0);
        // The chip was still occupied by the failed attempt.
        assert!(a.chip_free_at(ChipId(0)) > SimTime::ZERO);
        // No bytes counted as durably programmed.
        assert_eq!(a.stats().program_bytes_tlc, 0);
    }

    #[test]
    fn grown_bad_block_retires_after_threshold_failures() {
        let mut a = faulty_array(1.0, 0.0, 0.0); // threshold 2 via with_rates
        assert!(a.program_unit(SimTime::ZERO, ChipId(0), 4, None).is_err());
        assert!(!a.is_block_retired(ChipId(0), 4));
        assert!(a.program_unit(SimTime::ZERO, ChipId(0), 4, None).is_err());
        assert!(a.is_block_retired(ChipId(0), 4));
        assert_eq!(a.stats().blocks_retired, 1);
        // Further programs hit the retirement bitmap, still burning slices.
        let err = a
            .program_unit(SimTime::ZERO, ChipId(0), 4, None)
            .unwrap_err();
        assert!(matches!(err, FlashError::BlockRetired { .. }));
        assert_eq!(
            a.block(ChipId(0), 4).cursor(),
            3 * a.geometry().slices_per_unit()
        );
    }

    #[test]
    fn slc_program_failure_burns_only_claimed_slices() {
        let mut a = faulty_array(1.0, 0.0, 0.0);
        let err = a
            .program_slc(SimTime::ZERO, ChipId(1), 0, 3, None)
            .unwrap_err();
        assert!(matches!(
            err,
            FlashError::ProgramFailed { chip: 1, block: 0 }
        ));
        let blk = a.block(ChipId(1), 0);
        assert_eq!(blk.cursor(), 3);
        assert_eq!(blk.valid_count(), 0);
        assert_eq!(a.stats().program_bytes_slc, 0);
    }

    #[test]
    fn erase_failure_retires_block_and_next_erase_is_free() {
        let mut a = faulty_array(0.0, 1.0, 0.0);
        let r = a.erase_block(SimTime::ZERO, ChipId(0), 4);
        assert!(r.end > SimTime::ZERO, "failed erase still takes time");
        assert!(a.is_block_retired(ChipId(0), 4));
        assert_eq!(a.stats().blocks_retired, 1);
        assert_eq!(a.retired_blocks(), 1);
        let before = a.stats().erases_normal;
        let r = a.erase_block(r.end, ChipId(0), 4);
        assert_eq!(r.end, r.start, "retired block erases are no-ops");
        assert_eq!(a.stats().erases_normal, before);
    }

    #[test]
    fn read_retry_stretches_the_sense() {
        let mut clean = faulty_array(0.0, 0.0, 0.0);
        let mut faulty = faulty_array(0.0, 0.0, 1.0);
        for a in [&mut clean, &mut faulty] {
            a.program_slc(SimTime::ZERO, ChipId(0), 0, 2, None).unwrap();
        }
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let base = clean
            .read_slices(t, &[clean.block_base(ChipId(0), 0)])
            .unwrap();
        let slow = faulty
            .read_slices(t, &[faulty.block_base(ChipId(0), 0)])
            .unwrap();
        // Every sense retries (rate 1.0) by 1..=3 steps of 25 us.
        assert!(slow.finish >= base.finish + SimDuration::from_micros(25));
        let retries = faulty.stats().read_retries;
        assert!((1..=3).contains(&retries), "{retries}");
        assert_eq!(clean.stats().read_retries, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = || {
            let mut a = faulty_array(0.3, 0.3, 0.3);
            let mut log = Vec::new();
            for i in 0..12 {
                let chip = ChipId(i % 4);
                log.push(a.program_unit(SimTime::ZERO, chip, 4, None).is_err());
                log.push(a.program_slc(SimTime::ZERO, chip, 0, 2, None).is_err());
            }
            (log, a.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rates_never_draw_from_the_fault_rng() {
        // With all-zero rates every fault check early-outs before touching
        // the RNG, so the fault seed cannot influence state or timing —
        // a default-configured array is bit-identical to a fault-free one.
        let run = |seed: u64| {
            let fault = conzone_types::FaultConfig {
                seed,
                ..Default::default()
            };
            let cfg = conzone_types::DeviceConfig::builder(conzone_types::Geometry::tiny())
                .chunk_bytes(256 * 1024)
                .fault(fault)
                .build()
                .unwrap();
            let mut a = FlashArray::new(&cfg);
            let mut log = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..8 {
                let chip = ChipId(i % 4);
                let p = a.program_unit(t, chip, 4, None).unwrap();
                log.push(p.finish);
                let r = a.read_slices(p.finish, &[a.block_base(chip, 4)]).unwrap();
                log.push(r.finish);
                t = r.finish;
                let e = a.erase_block(t, chip, 5);
                log.push(e.end);
            }
            (log, a.stats())
        };
        assert_eq!(run(1), run(0xdead_beef));
        let (_, stats) = run(7);
        assert_eq!(stats.read_retries, 0);
        assert_eq!(stats.blocks_retired, 0);
    }

    #[test]
    fn bandwidth_model_can_be_disabled() {
        let cfg = conzone_types::DeviceConfig::builder(conzone_types::Geometry::tiny())
            .chunk_bytes(256 * 1024)
            .model_channel_bandwidth(false)
            .build()
            .unwrap();
        let mut a = FlashArray::new(&cfg);
        let r = a.timed_page_read(SimTime::ZERO, ChipId(0), CellType::Slc, 1 << 20);
        // Only the 20 us sense remains.
        assert_eq!(r.end, SimTime::ZERO + SimDuration::from_micros(20));
    }
}
