//! Optional data backing store for read-after-write verification.
//!
//! Timing studies over gigabytes of flash do not want to hold the data in
//! host memory, so payload storage is opt-in
//! ([`DeviceConfig::data_backing`](conzone_types::DeviceConfig)). When
//! enabled, every programmed 4 KiB slice's bytes are retained and reads
//! return them, letting integration and property tests assert data
//! integrity through buffering, SLC staging, combines and GC migration.

// xtask-lint: allow(hash-collections) — keyed per-slice payload accesses on
// the data-backed hot path; the store is never iterated, so hash order
// cannot reach simulated behaviour.
use std::collections::HashMap;

use conzone_types::{Ppa, SLICE_BYTES};

/// Per-slice payload store, keyed by physical address.
#[derive(Debug, Default)]
pub struct DataStore {
    enabled: bool,
    // xtask-lint: allow(hash-collections) — keyed lookups only, never iterated
    slices: HashMap<u64, Box<[u8]>>,
}

impl DataStore {
    /// Creates a store; a disabled store ignores writes and returns `None`.
    pub fn new(enabled: bool) -> DataStore {
        DataStore {
            enabled,
            // xtask-lint: allow(hash-collections) — keyed lookups only
            slices: HashMap::new(),
        }
    }

    /// Whether payloads are retained.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stores the bytes of one slice.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly 4 KiB.
    pub fn put(&mut self, ppa: Ppa, data: &[u8]) {
        if !self.enabled {
            return;
        }
        // xtask-lint: allow(hot-path-effects) — 4 KiB slice invariant: a mis-sized payload is a harness bug and aborting is the correct response
        assert_eq!(
            data.len() as u64,
            SLICE_BYTES,
            "slice payload must be 4 KiB"
        );
        self.slices.insert(ppa.raw(), data.into());
    }

    /// Fetches the bytes of one slice, if retained.
    pub fn get(&self, ppa: Ppa) -> Option<&[u8]> {
        self.slices.get(&ppa.raw()).map(|b| b.as_ref())
    }

    /// Moves a slice's payload to a new physical address (GC migration).
    pub fn relocate(&mut self, from: Ppa, to: Ppa) {
        if let Some(data) = self.slices.remove(&from.raw()) {
            self.slices.insert(to.raw(), data);
        }
    }

    /// Drops the payload of one slice.
    pub fn remove(&mut self, ppa: Ppa) {
        self.slices.remove(&ppa.raw());
    }

    /// Drops all payloads in `[first, first + count)` linear slice
    /// addresses (used on block erase).
    pub fn remove_range(&mut self, first: Ppa, count: u64) {
        for i in 0..count {
            self.slices.remove(&(first.raw() + i));
        }
    }

    /// Number of retained slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether no payloads are retained.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice_of(byte: u8) -> Vec<u8> {
        vec![byte; SLICE_BYTES as usize]
    }

    #[test]
    fn disabled_store_ignores_everything() {
        let mut s = DataStore::new(false);
        s.put(Ppa(1), &slice_of(7));
        assert!(s.get(Ppa(1)).is_none());
        assert!(s.is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn put_get_relocate_remove() {
        let mut s = DataStore::new(true);
        s.put(Ppa(5), &slice_of(1));
        assert_eq!(s.get(Ppa(5)).unwrap()[0], 1);
        s.relocate(Ppa(5), Ppa(9));
        assert!(s.get(Ppa(5)).is_none());
        assert_eq!(s.get(Ppa(9)).unwrap()[0], 1);
        s.remove(Ppa(9));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_range_clears_block() {
        let mut s = DataStore::new(true);
        for i in 0..10 {
            s.put(Ppa(100 + i), &slice_of(i as u8));
        }
        s.remove_range(Ppa(100), 5);
        assert_eq!(s.len(), 5);
        assert!(s.get(Ppa(104)).is_none());
        assert!(s.get(Ppa(105)).is_some());
    }

    #[test]
    #[should_panic(expected = "4 KiB")]
    fn wrong_size_payload_panics() {
        DataStore::new(true).put(Ppa(0), &[0u8; 100]);
    }
}
