//! Per-block NAND state: program cursor, slice validity and wear.
//!
//! A flash block programs strictly sequentially (the NAND append
//! constraint) and erases as a whole. Multi-level-cell blocks program a
//! whole multi-page programming unit at a time; SLC blocks may partial-
//! program at 4 KiB slice granularity (paper §II-A).

use conzone_types::CellType;

use crate::bitvec::BitVec;
use crate::error::FlashError;

/// State of one flash block.
#[derive(Debug, Clone)]
pub struct Block {
    cell: CellType,
    /// Next programmable slice index (NAND sequential-program cursor).
    cursor: usize,
    /// Slices that have been programmed since the last erase.
    written: BitVec,
    /// Programmed slices that still hold live data.
    valid: BitVec,
    erase_count: u64,
    slices: usize,
}

impl Block {
    /// Creates an erased block of `slices` 4 KiB slices.
    pub fn new(cell: CellType, slices: usize) -> Block {
        Block {
            cell,
            cursor: 0,
            written: BitVec::new(slices),
            valid: BitVec::new(slices),
            erase_count: 0,
            slices,
        }
    }

    /// The block's cell technology.
    #[inline]
    pub fn cell(&self) -> CellType {
        self.cell
    }

    /// Slices per block.
    #[inline]
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Next programmable slice index.
    #[inline]
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Whether the program cursor reached the end of the block.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.cursor == self.slices
    }

    /// Whether nothing has been programmed since the last erase.
    #[inline]
    pub fn is_erased(&self) -> bool {
        self.cursor == 0
    }

    /// Times the block has been erased.
    #[inline]
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Live slices in the block.
    #[inline]
    pub fn valid_count(&self) -> usize {
        self.valid.count_ones()
    }

    /// Iterates over the in-block indices of live slices.
    pub fn iter_valid(&self) -> impl Iterator<Item = usize> + '_ {
        self.valid.iter_ones()
    }

    /// Whether slice `idx` holds live data.
    #[inline]
    pub fn is_valid(&self, idx: usize) -> bool {
        self.valid.get(idx)
    }

    /// Whether slice `idx` has been programmed since the last erase.
    #[inline]
    pub fn is_written(&self, idx: usize) -> bool {
        self.written.get(idx)
    }

    /// Programs `count` slices at the cursor, marking them valid, and
    /// returns the index of the first slice programmed.
    ///
    /// # Errors
    ///
    /// [`FlashError::BlockFull`] when fewer than `count` slices remain.
    pub fn program(&mut self, count: usize) -> Result<usize, FlashError> {
        if self.cursor + count > self.slices {
            return Err(FlashError::BlockFull {
                cursor: self.cursor,
                requested: count,
                slices: self.slices,
            });
        }
        let start = self.cursor;
        for i in start..start + count {
            self.written.set(i, true);
            self.valid.set(i, true);
        }
        self.cursor += count;
        Ok(start)
    }

    /// Marks a programmed slice dead (superseded or host-invalidated).
    ///
    /// # Errors
    ///
    /// [`FlashError::InvalidSlice`] if the slice was never programmed.
    pub fn invalidate(&mut self, idx: usize) -> Result<(), FlashError> {
        if !self.written.get(idx) {
            return Err(FlashError::InvalidSlice { index: idx });
        }
        self.valid.set(idx, false);
        Ok(())
    }

    /// Erases the block, clearing all state and bumping the wear counter.
    pub fn erase(&mut self) {
        self.cursor = 0;
        self.written.clear_all();
        self.valid.clear_all();
        self.erase_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_program_and_validity() {
        let mut b = Block::new(CellType::Slc, 8);
        assert!(b.is_erased());
        assert_eq!(b.program(3).unwrap(), 0);
        assert_eq!(b.program(2).unwrap(), 3);
        assert_eq!(b.cursor(), 5);
        assert_eq!(b.valid_count(), 5);
        assert!(b.is_valid(4));
        assert!(!b.is_written(5));
    }

    #[test]
    fn program_past_end_rejected() {
        let mut b = Block::new(CellType::Tlc, 4);
        b.program(4).unwrap();
        assert!(b.is_full());
        assert!(matches!(b.program(1), Err(FlashError::BlockFull { .. })));
    }

    #[test]
    fn invalidate_and_iter_valid() {
        let mut b = Block::new(CellType::Slc, 6);
        b.program(5).unwrap();
        b.invalidate(1).unwrap();
        b.invalidate(3).unwrap();
        assert_eq!(b.valid_count(), 3);
        assert_eq!(b.iter_valid().collect::<Vec<_>>(), vec![0, 2, 4]);
        // Idempotent on already-dead slices.
        b.invalidate(1).unwrap();
        assert_eq!(b.valid_count(), 3);
        // But never-written slices are an error.
        assert!(matches!(
            b.invalidate(5),
            Err(FlashError::InvalidSlice { .. })
        ));
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = Block::new(CellType::Qlc, 4);
        b.program(4).unwrap();
        b.erase();
        assert!(b.is_erased());
        assert_eq!(b.valid_count(), 0);
        assert_eq!(b.erase_count(), 1);
        b.program(2).unwrap();
        b.erase();
        assert_eq!(b.erase_count(), 2);
    }
}
