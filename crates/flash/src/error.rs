//! Flash-layer errors.

use core::fmt;

use conzone_types::Ppa;

/// Errors raised by the flash media model. These normally indicate a bug in
/// the FTL above (programming rules violated) or a read of dead data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// Programming past the end of a block.
    BlockFull {
        /// Current program cursor (slices).
        cursor: usize,
        /// Slices requested.
        requested: usize,
        /// Slices per block.
        slices: usize,
    },
    /// Operating on a slice that was never programmed.
    InvalidSlice {
        /// In-block slice index.
        index: usize,
    },
    /// Reading a slice that is erased or invalidated.
    ReadDead {
        /// The offending physical address.
        ppa: Ppa,
    },
    /// Partial (sub-unit) programming attempted on a multi-level-cell block.
    PartialProgramOnMlc {
        /// Slices attempted.
        requested: usize,
        /// Slices per programming unit of the block's media.
        unit: usize,
    },
    /// Multi-level-cell programming not aligned to a programming unit.
    UnalignedUnit {
        /// Current cursor (slices).
        cursor: usize,
    },
    /// Payload length does not match the programmed extent.
    DataLength {
        /// Bytes expected.
        expected: usize,
        /// Bytes provided.
        got: usize,
    },
    /// Address component outside the geometry.
    OutOfGeometry {
        /// Description of the offending component.
        what: String,
    },
    /// The fault plane failed this program operation (transient). The
    /// targeted slices are burned (cursor advanced, marked dead); the
    /// caller must re-issue the payload elsewhere.
    ProgramFailed {
        /// Chip of the failed program.
        chip: u64,
        /// Block (in-chip index) of the failed program.
        block: u64,
    },
    /// The targeted block is permanently retired (failed erase or grown
    /// bad); the caller must place the data on another block.
    BlockRetired {
        /// Chip of the retired block.
        chip: u64,
        /// Block (in-chip index) of the retired block.
        block: u64,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BlockFull {
                cursor,
                requested,
                slices,
            } => write!(
                f,
                "program of {requested} slices at cursor {cursor} exceeds block of {slices}"
            ),
            FlashError::InvalidSlice { index } => {
                write!(f, "slice {index} was never programmed")
            }
            FlashError::ReadDead { ppa } => write!(f, "read of dead slice at {ppa}"),
            FlashError::PartialProgramOnMlc { requested, unit } => write!(
                f,
                "partial program of {requested} slices on MLC media (unit is {unit} slices)"
            ),
            FlashError::UnalignedUnit { cursor } => {
                write!(f, "unit program at unaligned cursor {cursor}")
            }
            FlashError::DataLength { expected, got } => {
                write!(f, "payload of {got} bytes, expected {expected}")
            }
            FlashError::OutOfGeometry { what } => write!(f, "address outside geometry: {what}"),
            FlashError::ProgramFailed { chip, block } => {
                write!(f, "program failed on chip {chip} block {block}")
            }
            FlashError::BlockRetired { chip, block } => {
                write!(f, "chip {chip} block {block} is retired")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = FlashError::ReadDead { ppa: Ppa(42) };
        assert!(e.to_string().contains("Ppa(42)"));
        let e = FlashError::ProgramFailed { chip: 1, block: 9 };
        assert!(e.to_string().contains("chip 1 block 9"));
        let e = FlashError::BlockRetired { chip: 2, block: 5 };
        assert!(e.to_string().contains("retired"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlashError>();
    }
}
