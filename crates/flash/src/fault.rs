//! Seeded, deterministic fault plane for the flash array.
//!
//! [`FaultPlane`] owns a dedicated [`SimRng`] seeded from
//! [`FaultConfig::seed`] alone, so the fault schedule depends only on the
//! seed and the *sequence of media operations* — two runs with the same
//! seed and workload draw byte-identical faults. Each fault class
//! early-returns before touching the RNG when its rate is zero, so a
//! default (all-zero) config leaves the RNG stream — and therefore every
//! latency figure — untouched.
//!
//! The plane also owns the per-block retirement bitmap: blocks retire
//! either when an erase fails or when a block accumulates
//! [`FaultConfig::grown_bad_threshold`] program failures (a *grown bad
//! block*). Retirement is permanent for the life of the array.

use conzone_sim::SimRng;
use conzone_types::{FaultConfig, SimDuration};

use crate::bitvec::BitVec;

/// Deterministic fault injector and block-retirement registry.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: SimRng,
    /// One bit per physical block, chip-major (same indexing as
    /// `FlashArray::blocks`); set bits are retired.
    retired: BitVec,
    /// Program failures accumulated per block, for grown-bad promotion.
    fail_counts: Vec<u32>,
}

impl FaultPlane {
    /// Creates a fault plane over `total_blocks` physical blocks.
    pub fn new(cfg: FaultConfig, total_blocks: usize) -> FaultPlane {
        FaultPlane {
            cfg,
            rng: SimRng::new(cfg.seed),
            retired: BitVec::new(total_blocks),
            fail_counts: vec![0; total_blocks],
        }
    }

    /// The configuration this plane was built from.
    #[inline]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether block `idx` (chip-major) is retired.
    #[inline]
    pub fn is_retired(&self, idx: usize) -> bool {
        self.retired.get(idx)
    }

    /// Number of retired blocks.
    #[inline]
    pub fn retired_count(&self) -> u64 {
        self.retired.count_ones() as u64
    }

    /// Permanently retires block `idx`. Returns `true` if the block was
    /// not already retired.
    pub fn retire(&mut self, idx: usize) -> bool {
        if self.retired.get(idx) {
            return false;
        }
        self.retired.set(idx, true);
        true
    }

    /// Draws whether the next program operation fails. Never touches the
    /// RNG when the rate is zero.
    #[inline]
    pub fn program_fails(&mut self) -> bool {
        self.cfg.program_fail_rate > 0.0 && self.rng.chance(self.cfg.program_fail_rate)
    }

    /// Draws whether the next block erase fails. Never touches the RNG
    /// when the rate is zero.
    #[inline]
    pub fn erase_fails(&mut self) -> bool {
        self.cfg.erase_fail_rate > 0.0 && self.rng.chance(self.cfg.erase_fail_rate)
    }

    /// Draws the read-retry step count for one page sense: zero most of
    /// the time, otherwise uniform in `1..=max_read_retries`. Never
    /// touches the RNG when the rate is zero.
    #[inline]
    pub fn read_retry_steps(&mut self) -> u32 {
        if self.cfg.read_retry_rate <= 0.0 || !self.rng.chance(self.cfg.read_retry_rate) {
            return 0;
        }
        // xtask-lint: allow(truncating-cast) — bounded by max_read_retries, a u32 config knob
        1 + self.rng.below(u64::from(self.cfg.max_read_retries)) as u32
    }

    /// Extra sense latency of a read-retry event of `steps` steps.
    #[inline]
    pub fn retry_penalty(&self, steps: u32) -> SimDuration {
        self.cfg.read_retry_step * u64::from(steps)
    }

    /// Records one program failure on block `idx`; when the grown-bad
    /// threshold is reached the block retires. Returns `true` when this
    /// failure retired the block.
    pub fn record_program_failure(&mut self, idx: usize) -> bool {
        self.fail_counts[idx] = self.fail_counts[idx].saturating_add(1);
        self.cfg.grown_bad_threshold > 0
            && self.fail_counts[idx] >= self.cfg.grown_bad_threshold
            && self.retire(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_draw() {
        let mut p = FaultPlane::new(FaultConfig::default(), 8);
        let mut before = p.rng.clone();
        for _ in 0..100 {
            assert!(!p.program_fails());
            assert!(!p.erase_fails());
            assert_eq!(p.read_retry_steps(), 0);
        }
        // The RNG stream is untouched: identical next draw.
        assert_eq!(p.rng.next_u64(), before.next_u64());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = FaultConfig {
            program_fail_rate: 0.3,
            erase_fail_rate: 0.1,
            read_retry_rate: 0.2,
            max_read_retries: 4,
            ..FaultConfig::with_rates(0.3, 0.1, 0.2)
        };
        let draw = |cfg: FaultConfig| {
            let mut p = FaultPlane::new(cfg, 8);
            let mut log = Vec::new();
            for _ in 0..64 {
                log.push((p.program_fails(), p.erase_fails(), p.read_retry_steps()));
            }
            log
        };
        assert_eq!(draw(cfg), draw(cfg));
        let other = FaultConfig { seed: 99, ..cfg };
        assert_ne!(draw(cfg), draw(other), "different seeds diverge");
    }

    #[test]
    fn grown_bad_promotion_respects_threshold() {
        let mut cfg = FaultConfig::with_rates(1.0, 0.0, 0.0);
        cfg.grown_bad_threshold = 2;
        let mut p = FaultPlane::new(cfg, 4);
        assert!(!p.record_program_failure(1), "first failure only suspects");
        assert!(p.record_program_failure(1), "second failure retires");
        assert!(p.is_retired(1));
        assert!(
            !p.record_program_failure(1),
            "already retired, not retired again"
        );
        assert_eq!(p.retired_count(), 1);
        // Threshold zero disables promotion entirely.
        cfg.grown_bad_threshold = 0;
        let mut p = FaultPlane::new(cfg, 4);
        for _ in 0..10 {
            assert!(!p.record_program_failure(0));
        }
        assert!(!p.is_retired(0));
    }

    #[test]
    fn retry_steps_bounded_and_penalty_scales() {
        let cfg = FaultConfig::with_rates(0.0, 0.0, 1.0);
        let mut p = FaultPlane::new(cfg, 1);
        for _ in 0..100 {
            let s = p.read_retry_steps();
            assert!((1..=cfg.max_read_retries).contains(&s));
        }
        assert_eq!(p.retry_penalty(0), SimDuration::ZERO);
        assert_eq!(p.retry_penalty(3), cfg.read_retry_step * 3);
    }
}
