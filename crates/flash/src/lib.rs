//! NAND flash media model for the ConZone emulator.
//!
//! This crate implements the physical substrate of paper §II-A: a flash
//! array of channels × chips × blocks × 16 KiB pages, with heterogeneous
//! cell types (the first *n* blocks of every chip are SLC), the Table-II
//! timing model, per-channel bandwidth, NAND programming rules (sequential
//! programming, whole-unit programming on multi-level cells, 4 KiB partial
//! programming on SLC), per-block wear counters, and an optional payload
//! store for read-after-write verification.
//!
//! ```
//! use conzone_flash::FlashArray;
//! use conzone_types::{ChipId, DeviceConfig, SimTime};
//!
//! let mut array = FlashArray::new(&DeviceConfig::tiny_for_tests());
//! // Program one 64 KiB unit into the first normal block of chip 0.
//! let out = array.program_unit(SimTime::ZERO, ChipId(0), 4, None)?;
//! assert_eq!(out.slices, 16);
//! # Ok::<(), conzone_flash::FlashError>(())
//! ```

// Unit tests assert freely; the `clippy::unwrap_used` deny (Cargo.toml
// `[lints]`) is meant for library code reachable from the simulator.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod bitvec;
mod block;
mod error;
mod fault;
mod store;
mod wear;

pub use array::{FlashArray, FlashStats, HostStage, ProgramOutcome, ReadOutcome};
pub use bitvec::BitVec;
pub use block::Block;
pub use error::FlashError;
pub use fault::FaultPlane;
pub use store::DataStore;
pub use wear::{erase_budget, RegionWear, WearReport};
