//! A compact fixed-size bit vector used for per-slice block state.

/// Fixed-length bit vector backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates `len` bits, all clear.
    pub fn new(len: usize) -> BitVec {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        // xtask-lint: allow(hot-path-effects) — bounds invariant: an out-of-range index is a harness bug and aborting is the correct response
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn set(&mut self, idx: usize, value: bool) {
        // xtask-lint: allow(hot-path-effects) — bounds invariant: an out-of-range index is a harness bug and aborting is the correct response
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        for i in (0..130).step_by(3) {
            v.set(i, true);
        }
        for i in 0..130 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        v.set(0, false);
        assert!(!v.get(0));
    }

    #[test]
    fn count_and_iter_agree() {
        let mut v = BitVec::new(200);
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idxs {
            v.set(i, true);
        }
        assert_eq!(v.count_ones(), idxs.len());
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idxs);
    }

    #[test]
    fn clear_all_resets() {
        let mut v = BitVec::new(70);
        v.set(69, true);
        v.clear_all();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::new(10).get(10);
    }
}
