//! The limited volatile write buffers (paper §III-B).
//!
//! Each buffer holds at most one superpage and is shared by all zones whose
//! index is congruent to the buffer index modulo the buffer count. Buffered
//! data is always the contiguous tail of its owner zone's accepted writes.

use conzone_types::{ZoneId, SLICE_BYTES};

/// One volatile write buffer.
#[derive(Debug, Clone)]
pub(crate) struct WriteBuffer {
    /// Zone currently owning the buffer, if any.
    pub owner: Option<ZoneId>,
    /// Zone-relative slice offset of the first buffered slice.
    pub start_offset: u64,
    /// Number of buffered slices.
    pub slices: u64,
    /// Buffered payload, 4 KiB per slice, when data backing is enabled.
    pub data: Vec<u8>,
    /// Capacity in slices (one superpage).
    capacity: u64,
    /// Whether payload bytes are retained.
    backed: bool,
}

impl WriteBuffer {
    pub(crate) fn new(capacity_slices: u64, backed: bool) -> WriteBuffer {
        WriteBuffer {
            owner: None,
            start_offset: 0,
            slices: 0,
            data: Vec::new(),
            capacity: capacity_slices,
            backed,
        }
    }

    /// Whether the buffer holds no data.
    pub(crate) fn is_empty(&self) -> bool {
        self.slices == 0
    }

    /// Whether the buffer is at capacity.
    pub(crate) fn is_full(&self) -> bool {
        self.slices == self.capacity
    }

    /// Free slices remaining.
    pub(crate) fn room(&self) -> u64 {
        self.capacity - self.slices
    }

    /// Takes ownership for `zone` with the next data expected at
    /// `start_offset`; the buffer must be empty.
    pub(crate) fn adopt(&mut self, zone: ZoneId, start_offset: u64) {
        debug_assert!(self.is_empty(), "adopting a non-empty buffer");
        self.owner = Some(zone);
        self.start_offset = start_offset;
        self.data.clear();
    }

    /// Appends `count` slices (with optional payload) to the buffer tail.
    ///
    /// # Panics
    ///
    /// Debug-panics when overflowing capacity or appending without an owner.
    pub(crate) fn append(&mut self, count: u64, payload: Option<&[u8]>) {
        debug_assert!(self.owner.is_some(), "append to unowned buffer");
        debug_assert!(self.slices + count <= self.capacity, "buffer overflow");
        if self.backed {
            match payload {
                Some(p) => {
                    debug_assert_eq!(p.len() as u64, count * SLICE_BYTES);
                    self.data.extend_from_slice(p);
                }
                // Timing-only writes buffer zeroes.
                None => self
                    .data
                    .resize(self.data.len() + (count * SLICE_BYTES) as usize, 0),
            }
        }
        self.slices += count;
    }

    /// Removes `count` slices from the buffer head, returning their payload
    /// when backed.
    pub(crate) fn drain_front(&mut self, count: u64) -> Option<Vec<u8>> {
        debug_assert!(count <= self.slices, "draining more than buffered");
        self.start_offset += count;
        self.slices -= count;
        if self.backed {
            let bytes = (count * SLICE_BYTES) as usize;
            let tail = self.data.split_off(bytes);
            let head = std::mem::replace(&mut self.data, tail);
            Some(head)
        } else {
            None
        }
    }

    /// Clears the buffer and drops ownership.
    pub(crate) fn release(&mut self) {
        self.owner = None;
        self.start_offset = 0;
        self.slices = 0;
        self.data.clear();
    }

    /// Zone-relative offset one past the last buffered slice.
    pub(crate) fn end_offset(&self) -> u64 {
        self.start_offset + self.slices
    }

    /// Payload of the slice at zone-relative `offset`, when buffered and
    /// backed.
    pub(crate) fn slice_data(&self, offset: u64) -> Option<&[u8]> {
        if !self.backed || offset < self.start_offset || offset >= self.end_offset() {
            return None;
        }
        let idx = ((offset - self.start_offset) * SLICE_BYTES) as usize;
        Some(&self.data[idx..idx + SLICE_BYTES as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_drain_with_payload() {
        let mut b = WriteBuffer::new(8, true);
        b.adopt(ZoneId(3), 16);
        b.append(2, Some(&vec![7u8; 2 * 4096]));
        b.append(1, Some(&vec![9u8; 4096]));
        assert_eq!(b.slices, 3);
        assert_eq!(b.end_offset(), 19);
        assert_eq!(b.slice_data(18).unwrap()[0], 9);
        let head = b.drain_front(2).unwrap();
        assert_eq!(head.len(), 2 * 4096);
        assert_eq!(head[0], 7);
        assert_eq!(b.start_offset, 18);
        assert_eq!(b.slices, 1);
        assert_eq!(b.slice_data(18).unwrap()[0], 9);
    }

    #[test]
    fn unbacked_buffer_tracks_counts_only() {
        let mut b = WriteBuffer::new(4, false);
        b.adopt(ZoneId(0), 0);
        b.append(4, None);
        assert!(b.is_full());
        assert!(b.drain_front(4).is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn release_clears_ownership() {
        let mut b = WriteBuffer::new(4, true);
        b.adopt(ZoneId(1), 0);
        b.append(1, None);
        b.release();
        assert!(b.owner.is_none());
        assert!(b.is_empty());
        b.adopt(ZoneId(2), 8);
        assert_eq!(b.start_offset, 8);
    }

    #[test]
    fn room_accounting() {
        let mut b = WriteBuffer::new(6, false);
        b.adopt(ZoneId(0), 0);
        assert_eq!(b.room(), 6);
        b.append(4, None);
        assert_eq!(b.room(), 2);
    }
}
