//! Per-queue arbitration at the device boundary.
//!
//! The queue-pair host model (see `conzone-host`'s `qd` module) keeps one
//! NVMe-like submission queue per tenant. Commands leave those queues
//! through a single serial **command-fetch stage** modelled here: at every
//! instant the fetch unit is free, an [`Arbiter`] policy picks which
//! non-empty queue is serviced next, and the fetched command occupies the
//! unit for a fixed per-command cost before it reaches the device model.
//!
//! With a zero fetch cost the stage is transparent — commands dispatch the
//! moment they arrive, reproducing the synchronous runner exactly — and
//! with a non-zero cost the stage saturates first under load, so the
//! arbitration policy measurably divides dispatch bandwidth between
//! tenants and inter-tenant interference emerges from the model rather
//! than being scripted.

use conzone_sim::Resource;
use conzone_types::{SimDuration, SimTime};

/// Picks which submission queue the command-fetch stage services next.
///
/// `backlog[q]` is the number of commands waiting in queue `q`;
/// implementations return the index of a queue with a non-zero backlog, or
/// `None` when every queue is empty. Policies are called once per fetched
/// command on the steady-state dispatch path, so implementations must be
/// allocation-free and panic-free.
pub trait Arbiter: core::fmt::Debug + Send {
    /// Chooses a queue with `backlog[q] > 0`, or `None` if all are empty.
    fn pick(&mut self, backlog: &[u32]) -> Option<usize>;

    /// Stable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Strict round-robin: service each backlogged queue once, in cyclic
/// order. Every non-empty queue is serviced within one full rotation, so
/// no queue can starve.
#[derive(Debug, Default)]
pub struct RoundRobinArbiter {
    cursor: usize,
}

impl RoundRobinArbiter {
    /// A round-robin policy starting at queue 0.
    pub fn new() -> RoundRobinArbiter {
        RoundRobinArbiter { cursor: 0 }
    }
}

impl Arbiter for RoundRobinArbiter {
    // xtask-effect: hot_path
    fn pick(&mut self, backlog: &[u32]) -> Option<usize> {
        let n = backlog.len();
        for step in 0..n {
            let q = (self.cursor + step) % n;
            if backlog[q] > 0 {
                self.cursor = (q + 1) % n;
                return Some(q);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "rr"
    }
}

/// Weighted round-robin with per-round credits.
///
/// Each round grants queue `q` a budget of `weights[q]` fetches; the
/// policy services the current queue until its credit or backlog runs
/// out, then moves on, and starts a new round once every backlogged queue
/// is out of credit. Under saturation queue `q` therefore receives a
/// `weights[q] / Σ weights` share of dispatch bandwidth, and any queue
/// with a non-zero weight is serviced at least once per round — the
/// starvation bound the policy tests pin down.
#[derive(Debug)]
pub struct WeightedArbiter {
    weights: Vec<u32>,
    credits: Vec<u32>,
    cursor: usize,
}

impl WeightedArbiter {
    /// A weighted policy with one weight per queue.
    ///
    /// Zero weights are bumped to 1: a silently starving queue is never
    /// what a workload description means.
    pub fn new(weights: &[u32]) -> WeightedArbiter {
        let weights: Vec<u32> = weights.iter().map(|&w| w.max(1)).collect();
        let credits = weights.clone();
        WeightedArbiter {
            weights,
            credits,
            cursor: 0,
        }
    }

    /// The (normalised, all non-zero) per-queue weights.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }
}

impl Arbiter for WeightedArbiter {
    // xtask-effect: hot_path
    fn pick(&mut self, backlog: &[u32]) -> Option<usize> {
        let n = backlog.len().min(self.weights.len());
        if backlog.iter().take(n).all(|&b| b == 0) {
            return None;
        }
        // At most two passes: if the first finds every backlogged queue
        // out of credit, the replenish guarantees the second succeeds.
        for _round in 0..2 {
            for step in 0..n {
                let q = (self.cursor + step) % n;
                if backlog[q] > 0 && self.credits[q] > 0 {
                    self.credits[q] -= 1;
                    // Stay on q while it has credit and backlog; the next
                    // call's scan starts here again.
                    self.cursor = q;
                    return Some(q);
                }
            }
            for q in 0..n {
                self.credits[q] = self.weights[q];
            }
            self.cursor = 0;
        }
        None
    }

    fn name(&self) -> &'static str {
        "wrr"
    }
}

/// Arbitration policy selector, the CLI-facing form of the [`Arbiter`]
/// implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Strict round-robin ([`RoundRobinArbiter`]).
    RoundRobin,
    /// Weighted round-robin ([`WeightedArbiter`]) using per-queue weights.
    Weighted,
}

impl ArbiterKind {
    /// Builds the policy for `weights.len()` queues.
    pub fn build(self, weights: &[u32]) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::RoundRobin => Box::new(RoundRobinArbiter::new()),
            ArbiterKind::Weighted => Box::new(WeightedArbiter::new(weights)),
        }
    }

    /// Stable policy name (matches the built arbiter's
    /// [`Arbiter::name`]).
    pub fn name(self) -> &'static str {
        match self {
            ArbiterKind::RoundRobin => "rr",
            ArbiterKind::Weighted => "wrr",
        }
    }
}

/// The serial command-fetch stage between submission queues and the
/// device: per-queue backlog counters, an [`Arbiter`] policy, and one
/// [`Resource`] modelling the controller's fetch engine.
///
/// The host rings [`doorbell`](Self::doorbell) when a command enters a
/// queue and calls [`grant`](Self::grant) whenever the fetch unit is free;
/// a grant reserves the unit for the per-command fetch cost and returns
/// the dispatch time at which the fetched command reaches the device.
#[derive(Debug)]
pub struct QueueFrontEnd {
    fetch: Resource,
    fetch_cost: SimDuration,
    arbiter: Box<dyn Arbiter>,
    backlog: Vec<u32>,
}

impl QueueFrontEnd {
    /// A front end for `queues` submission queues.
    pub fn new(queues: usize, fetch_cost: SimDuration, arbiter: Box<dyn Arbiter>) -> QueueFrontEnd {
        QueueFrontEnd {
            fetch: Resource::new(),
            fetch_cost,
            arbiter,
            backlog: vec![0; queues],
        }
    }

    /// Number of submission queues.
    pub fn queues(&self) -> usize {
        self.backlog.len()
    }

    /// Commands currently waiting in queue `q`.
    pub fn backlog(&self, q: usize) -> u32 {
        self.backlog[q]
    }

    /// Whether any queue has a waiting command.
    #[inline]
    pub fn has_backlog(&self) -> bool {
        self.backlog.iter().any(|&b| b > 0)
    }

    /// When the fetch unit next becomes free.
    #[inline]
    pub fn fetch_free_at(&self) -> SimTime {
        self.fetch.free_at()
    }

    /// The arbitration policy's name.
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiter.name()
    }

    /// Records a command entering queue `q`; returns the queue's backlog
    /// including the new command.
    // xtask-effect: hot_path
    pub fn doorbell(&mut self, q: usize) -> u32 {
        self.backlog[q] += 1;
        self.backlog[q]
    }

    /// Arbitrates among the backlogged queues at `now` and fetches the
    /// winner's head command, returning `(queue, dispatch_time)` — the
    /// command reaches the device at `dispatch_time`, after the fetch
    /// cost. Returns `None` when every queue is empty.
    ///
    /// Callers must not call this before the previous grant's dispatch
    /// time (the fetch unit is serial); the queue-pair driver schedules
    /// one grant per fetch-free instant.
    // xtask-effect: hot_path
    pub fn grant(&mut self, now: SimTime) -> Option<(usize, SimTime)> {
        let q = self.arbiter.pick(&self.backlog)?;
        self.backlog[q] -= 1;
        let r = self.fetch.acquire(now, self.fetch_cost);
        Some((q, r.end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `arb` against a synthetic always-full backlog and returns
    /// per-queue service counts over `rounds` picks.
    fn service_counts(arb: &mut dyn Arbiter, queues: usize, picks: usize) -> Vec<u64> {
        let backlog = vec![u32::MAX; queues];
        let mut counts = vec![0u64; queues];
        for _ in 0..picks {
            let q = arb.pick(&backlog).expect("backlog is never empty");
            counts[q] += 1;
        }
        counts
    }

    #[test]
    fn round_robin_is_fair_under_saturation() {
        let mut arb = RoundRobinArbiter::new();
        let counts = service_counts(&mut arb, 4, 4000);
        assert_eq!(counts, vec![1000; 4]);
    }

    #[test]
    fn round_robin_skips_empty_queues() {
        let mut arb = RoundRobinArbiter::new();
        let backlog = [0, 3, 0, 2];
        assert_eq!(arb.pick(&backlog), Some(1));
        assert_eq!(arb.pick(&backlog), Some(3));
        assert_eq!(arb.pick(&backlog), Some(1));
        assert_eq!(arb.pick(&[0, 0, 0, 0]), None);
    }

    #[test]
    fn weighted_divides_service_by_weight() {
        let mut arb = WeightedArbiter::new(&[3, 1]);
        let counts = service_counts(&mut arb, 2, 4000);
        assert_eq!(counts, vec![3000, 1000]);
    }

    #[test]
    fn weighted_share_holds_for_uneven_weights() {
        let mut arb = WeightedArbiter::new(&[5, 2, 1]);
        let counts = service_counts(&mut arb, 3, 8000);
        assert_eq!(counts, vec![5000, 2000, 1000]);
    }

    /// Starvation regression: a weight-1 queue facing a heavyweight
    /// competitor must still be serviced once per round — the gap between
    /// consecutive services is bounded by the round length.
    #[test]
    fn weighted_never_starves_a_low_weight_queue() {
        let mut arb = WeightedArbiter::new(&[100, 1]);
        let backlog = [u32::MAX, u32::MAX];
        let mut last_service_of_1 = 0usize;
        let mut max_gap = 0usize;
        for i in 1..=10_000 {
            if arb.pick(&backlog) == Some(1) {
                max_gap = max_gap.max(i - last_service_of_1);
                last_service_of_1 = i;
            }
        }
        assert!(last_service_of_1 > 0, "queue 1 was never serviced");
        // One full round is 101 services; the worst-case wait is one round
        // plus the position within it.
        assert!(max_gap <= 102, "starvation window {max_gap} picks");
    }

    /// A queue that goes idle must not bank unused credit into a burst
    /// that locks competitors out when it returns.
    #[test]
    fn weighted_credit_does_not_accumulate_while_idle() {
        let mut arb = WeightedArbiter::new(&[4, 4]);
        // Queue 1 idle: queue 0 is serviced throughout, burning rounds.
        for _ in 0..40 {
            assert_eq!(arb.pick(&[1, 0]), Some(0));
        }
        // Queue 1 returns: within one round it gets its 4 services, not 40.
        let counts = service_counts(&mut arb, 2, 8);
        assert_eq!(counts[0], 4);
        assert_eq!(counts[1], 4);
    }

    #[test]
    fn weighted_zero_weight_is_bumped_to_one() {
        let arb = WeightedArbiter::new(&[0, 3]);
        assert_eq!(arb.weights(), &[1, 3]);
        let mut arb = arb;
        let counts = service_counts(&mut arb, 2, 400);
        assert_eq!(counts, vec![100, 300]);
    }

    #[test]
    fn front_end_serialises_fetches() {
        let mut fe = QueueFrontEnd::new(
            2,
            SimDuration::from_nanos(100),
            ArbiterKind::RoundRobin.build(&[1, 1]),
        );
        assert!(!fe.has_backlog());
        assert_eq!(fe.doorbell(0), 1);
        assert_eq!(fe.doorbell(0), 2);
        assert_eq!(fe.doorbell(1), 1);
        assert!(fe.has_backlog());

        let t0 = SimTime::ZERO;
        let (q1, d1) = fe.grant(t0).unwrap();
        assert_eq!(q1, 0);
        assert_eq!(d1, SimTime::from_nanos(100));
        // Next grant at the fetch-free instant services the other queue.
        let (q2, d2) = fe.grant(d1).unwrap();
        assert_eq!(q2, 1);
        assert_eq!(d2, SimTime::from_nanos(200));
        let (q3, d3) = fe.grant(d2).unwrap();
        assert_eq!(q3, 0);
        assert_eq!(d3, SimTime::from_nanos(300));
        assert!(fe.grant(d3).is_none());
        assert!(!fe.has_backlog());
        assert_eq!(fe.fetch_free_at(), SimTime::from_nanos(300));
    }

    #[test]
    fn zero_fetch_cost_is_transparent() {
        let mut fe = QueueFrontEnd::new(1, SimDuration::ZERO, ArbiterKind::RoundRobin.build(&[1]));
        fe.doorbell(0);
        let (q, d) = fe.grant(SimTime::from_nanos(42)).unwrap();
        assert_eq!(q, 0);
        assert_eq!(d, SimTime::from_nanos(42), "no fetch delay");
    }

    #[test]
    fn kind_names_match_built_policies() {
        for kind in [ArbiterKind::RoundRobin, ArbiterKind::Weighted] {
            assert_eq!(kind.name(), kind.build(&[1, 1]).name());
        }
    }
}
