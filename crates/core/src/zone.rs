//! Per-zone bookkeeping.

use conzone_types::{Lpn, Ppa, ZoneState};

/// A slice of zone data staged in the SLC secondary write buffer, awaiting
/// combination into the reserved normal blocks (paper §III-B path ③).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StagedSlice {
    /// Logical page of the staged data.
    pub lpn: Lpn,
    /// Where it currently sits in SLC.
    pub ppa: Ppa,
}

/// Internal state of one zone.
#[derive(Debug, Clone)]
pub(crate) struct Zone {
    /// Lifecycle state.
    pub state: ZoneState,
    /// Host-visible write pointer: slices accepted so far (including data
    /// still in the volatile buffer).
    pub wp_slices: u64,
    /// Slices durably placed (flashed canonically, staged in SLC, or patch),
    /// i.e. `wp_slices` minus whatever sits in the volatile buffer.
    pub flushed_slices: u64,
    /// Premature-flush data staged in SLC: a contiguous run ending at
    /// `flushed_slices`, beginning at a programming-unit-aligned offset.
    pub staged: Vec<StagedSlice>,
}

impl Zone {
    /// `staged_capacity` pre-sizes the staged list so steady-state writes
    /// never grow it: the run stays below one programming unit before a
    /// combine fires, and one premature flush adds at most a buffer's
    /// worth of slices on top.
    pub(crate) fn new(staged_capacity: usize) -> Zone {
        Zone {
            state: ZoneState::Empty,
            wp_slices: 0,
            flushed_slices: 0,
            staged: Vec::with_capacity(staged_capacity),
        }
    }

    /// Zone-relative offset where the staged run begins.
    pub(crate) fn staged_start(&self) -> u64 {
        self.flushed_slices - self.staged.len() as u64
    }

    /// Resets the zone to empty.
    pub(crate) fn reset(&mut self) {
        self.state = ZoneState::Empty;
        self.wp_slices = 0;
        self.flushed_slices = 0;
        self.staged.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zone_is_empty() {
        let z = Zone::new(8);
        assert_eq!(z.state, ZoneState::Empty);
        assert_eq!(z.wp_slices, 0);
        assert_eq!(z.staged_start(), 0);
    }

    #[test]
    fn staged_start_tracks_run() {
        let mut z = Zone::new(8);
        z.wp_slices = 40;
        z.flushed_slices = 36;
        z.staged = (24..36)
            .map(|i| StagedSlice {
                lpn: Lpn(i),
                ppa: Ppa(1000 + i),
            })
            .collect();
        assert_eq!(z.staged_start(), 24);
        z.reset();
        assert_eq!(z.wp_slices, 0);
        assert!(z.staged.is_empty());
    }
}
