//! The read path (paper §III-C, Fig. 4).
//!
//! Each slice is resolved in order: data still in a volatile write buffer
//! is served from RAM; otherwise the L2P cache is queried LZA → LCA → LPA.
//! A miss fetches mapping entries from flash with the configured search
//! strategy (one to three fetches), inserts the entry at its actual
//! aggregation level, and may evict by LRU. Data slices are then read from
//! flash, grouping by physical page.

use conzone_types::{
    DeviceError, DeviceEvent, L2pOutcome, LpnRange, MapGranularity, SimTime, SpanKind, ZoneId,
    SLICE_BYTES,
};

use crate::device::ConZone;
use crate::write::internal;

#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// Served from write buffer `buf` at zone-relative `offset`.
    Buffer(usize, u64),
    /// Served from flash; index into the gathered PPA list.
    Flash(usize),
}

impl ConZone {
    /// Services one host read: returns the completion time and, when data
    /// backing is enabled, the payload.
    // xtask-effect: hot_path
    pub(crate) fn read_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
    ) -> Result<(SimTime, Option<Vec<u8>>), DeviceError> {
        let _p = conzone_sim::profile::scope("read_range");
        let zs = self.zone_slices();
        let mut t_map = now;
        // Reused scratch: error returns drop the buffers (re-allocated on
        // the next op — errors are cold); the success path puts them back.
        let mut slots = std::mem::take(&mut self.scratch.read_slots);
        let mut ppas = std::mem::take(&mut self.scratch.read_ppas);
        slots.clear();
        ppas.clear();

        for lpn in range.iter() {
            let zone_id = ZoneId(lpn.raw() / zs);
            let offset = lpn.raw() % zs;
            let zone = &self.zones[zone_id.raw() as usize];
            if self.is_conventional(zone_id) {
                // Conventional zones may be sparsely written: presence in
                // the mapping table is the ground truth.
                if self.table.get(lpn).is_none() {
                    return Err(DeviceError::UnwrittenRead { lpn });
                }
            } else if offset >= zone.wp_slices {
                return Err(DeviceError::UnwrittenRead { lpn });
            }

            // Data still in the volatile buffer never touches flash
            // (conventional zones never own a buffer).
            let buf_idx = zone_id.raw() as usize % self.buffers.len();
            let b = &self.buffers[buf_idx];
            if b.owner == Some(zone_id) && offset >= b.start_offset && offset < b.end_offset() {
                slots.push(Slot::Buffer(buf_idx, offset));
                continue;
            }

            // L2P cache: LZA, then LCA, then LPA (Fig. 4 Ⅰ/Ⅱ).
            match self.cache.lookup(lpn) {
                conzone_ftl::LookupResult::Hit(g) => {
                    let outcome = match g {
                        MapGranularity::Zone => {
                            self.counters.l2p_hits_zone += 1;
                            L2pOutcome::HitZone
                        }
                        MapGranularity::Chunk => {
                            self.counters.l2p_hits_chunk += 1;
                            L2pOutcome::HitChunk
                        }
                        MapGranularity::Page => {
                            self.counters.l2p_hits_page += 1;
                            L2pOutcome::HitPage
                        }
                    };
                    self.probe.emit(t_map, DeviceEvent::L2pLookup { outcome });
                }
                conzone_ftl::LookupResult::Miss => {
                    self.counters.l2p_misses += 1;
                    self.probe.emit(
                        t_map,
                        DeviceEvent::L2pLookup {
                            outcome: L2pOutcome::Miss,
                        },
                    );
                    let actual = self.table.granularity_of(lpn).ok_or_else(|| {
                        // xtask-lint: allow(hot-path-effects) — error construction inside ok_or_else; never runs on the success path
                        DeviceError::Internal(format!(
                            "durable {lpn} below the write pointer is unmapped"
                        ))
                    })?;
                    let fetches = conzone_ftl::mapping_fetches(self.cfg.search_strategy, actual);
                    let page_bytes = self.cfg.geometry.page_bytes as u64;
                    let media = self.cfg.mapping_media;
                    for _ in 0..fetches {
                        let chip = self.mapping_chip();
                        let r = self.flash.timed_page_read(t_map, chip, media, page_bytes);
                        t_map = r.end;
                        self.counters.flash_mapping_reads += 1;
                    }
                    let pinned = conzone_ftl::pins_aggregates(self.cfg.search_strategy)
                        && actual > MapGranularity::Page;
                    if self.cache.insert(lpn, actual, pinned) == conzone_ftl::InsertOutcome::Evicted
                    {
                        self.probe
                            .emit(t_map, DeviceEvent::L2pEviction { count: 1 });
                    }
                }
            }
            let entry = self.table.get(lpn).ok_or_else(|| {
                // xtask-lint: allow(hot-path-effects) — error construction inside ok_or_else; never runs on the success path
                DeviceError::Internal(format!("durable {lpn} below the write pointer is unmapped"))
            })?;
            slots.push(Slot::Flash(ppas.len()));
            ppas.push(entry.ppa);
        }

        // Data reads start after mapping resolution completes (Fig. 4 ③).
        // Both spans are emitted retroactively once their windows are
        // known, so a failed read never leaves phases dangling.
        self.breakdown.mapping_fetch += t_map - now;
        if t_map > now {
            self.spans.open(now, SpanKind::MapFetch);
            self.spans.close(t_map);
        }
        let mut finish = t_map;
        let mut flash_data: Option<Vec<u8>> = None;
        if !ppas.is_empty() {
            let out = self.flash.read_slices(t_map, &ppas).map_err(internal)?;
            finish = out.finish;
            flash_data = out.data;
            self.breakdown.data_read += finish.saturating_since(t_map);
            if finish > t_map {
                self.spans.open(t_map, SpanKind::DataRead);
                self.spans.close(finish);
            }
        }

        let data = if self.cfg.data_backing {
            // xtask-lint: allow(hot-path-effects) — returned payload buffer, only built with data backing enabled; the reference workloads run timing-only and the steady-state guard holds there
            let mut v = Vec::with_capacity((range.count * SLICE_BYTES) as usize);
            for slot in &slots {
                match *slot {
                    Slot::Buffer(buf, offset) => match self.buffers[buf].slice_data(offset) {
                        Some(s) => v.extend_from_slice(s),
                        None => v.resize(v.len() + SLICE_BYTES as usize, 0),
                    },
                    Slot::Flash(i) => {
                        let d = flash_data.as_ref().ok_or_else(|| {
                            DeviceError::Internal(
                                // xtask-lint: allow(hot-path-effects) — error construction inside ok_or_else; never runs on the success path
                                "flash read returned no payload with data backing on".to_string(),
                            )
                        })?;
                        let at = i * SLICE_BYTES as usize;
                        v.extend_from_slice(&d[at..at + SLICE_BYTES as usize]);
                    }
                }
            }
            Some(v)
        } else {
            None
        };
        self.scratch.read_slots = slots;
        self.scratch.read_ppas = ppas;
        Ok((finish + self.cfg.host_overhead, data))
    }
}
