//! The `ConZone` device: construction, shared helpers and the
//! [`StorageDevice`] / [`ZonedDevice`] trait implementations. The write,
//! read and erase paths live in the sibling modules.

use bytes::Bytes;
use conzone_flash::FlashArray;
use conzone_ftl::{L2pCache, MapBitmap, MappingTable};
use conzone_types::{
    Completion, Counters, DeviceConfig, DeviceError, IoKind, IoRequest, Lpn, LpnRange,
    MapGranularity, Probe, SearchStrategy, SimTime, SpanKind, SpanRecorder, SpanSink,
    StorageDevice, ZoneId, ZoneInfo, ZoneState, ZonedDevice,
};

use crate::breakdown::TimeBreakdown;
use crate::buffer::WriteBuffer;
use crate::scratch::IoScratch;
use crate::slc::SlcRegion;
use crate::zone::Zone;

/// The consumer-grade zoned flash storage emulator (paper §III).
///
/// `ConZone` combines:
///
/// * zones bound one-to-one to reserved normal superblocks, with write
///   pointers iterating the fixed striping rule (§III-B);
/// * a configurable number of shared volatile write buffers, mapped to
///   zones by `zone mod n` (§III-B);
/// * an SLC secondary write buffer absorbing premature flushes and
///   zone-tail alignment patches (§III-B, §III-E);
/// * a hybrid page/chunk/zone mapping table with a limited LRU L2P cache
///   and configurable miss-path search strategy (§III-C, §IV-D);
/// * composite garbage collection: full GC inside the SLC region, direct
///   erase on zone reset (§III-D).
///
/// ```
/// use conzone_core::ConZone;
/// use conzone_types::{DeviceConfig, IoRequest, SimTime, StorageDevice};
///
/// let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
/// let write = IoRequest::write(0, 64 * 1024);
/// let done = dev.submit(SimTime::ZERO, &write)?;
/// let read = IoRequest::read(0, 4096);
/// let c = dev.submit(done.finished, &read)?;
/// assert!(c.finished > done.finished);
/// # Ok::<(), conzone_types::DeviceError>(())
/// ```
#[derive(Debug)]
pub struct ConZone {
    pub(crate) cfg: DeviceConfig,
    pub(crate) flash: FlashArray,
    pub(crate) table: MappingTable,
    pub(crate) cache: L2pCache,
    pub(crate) bitmap: Option<MapBitmap>,
    pub(crate) zones: Vec<Zone>,
    pub(crate) buffers: Vec<WriteBuffer>,
    pub(crate) slc: SlcRegion,
    pub(crate) counters: Counters,
    pub(crate) next_mapping_chip: u64,
    /// Accumulated L2P mapping updates not yet persisted (paper §III-E).
    pub(crate) l2p_log_pending: u64,
    pub(crate) breakdown: TimeBreakdown,
    /// Trace probe; disabled by default (a no-op on the hot paths).
    pub(crate) probe: Probe,
    /// Causal IO-span recorder; disabled by default (a branch per phase).
    pub(crate) spans: SpanRecorder,
    /// `Some` between `power_cut()` and `remount()`: what was lost at the
    /// cut, awaiting the recovery report.
    pub(crate) cut_state: Option<crate::power::CutState>,
    /// Reusable hot-path buffers (see [`IoScratch`]).
    pub(crate) scratch: IoScratch,
}

impl ConZone {
    /// Builds a device from a validated configuration.
    pub fn new(cfg: DeviceConfig) -> ConZone {
        let capacity = cfg.capacity_slices();
        let chunk = cfg.chunk_slices();
        let zone = cfg.zone_size_slices();
        let bitmap = match cfg.search_strategy {
            SearchStrategy::Bitmap => Some(MapBitmap::new(capacity)),
            _ => None,
        };
        let buffers = (0..cfg.write_buffers)
            .map(|_| WriteBuffer::new(cfg.geometry.slices_per_superpage(), cfg.data_backing))
            .collect();
        let staged_cap =
            cfg.geometry.slices_per_unit() + cfg.geometry.slices_per_superpage() as usize;
        ConZone {
            flash: FlashArray::new(&cfg),
            table: MappingTable::new(capacity, chunk, zone),
            cache: L2pCache::new(cfg.l2p_cache_entries(), chunk, zone),
            bitmap,
            zones: (0..cfg.zone_count())
                .map(|_| Zone::new(staged_cap))
                .collect(),
            buffers,
            slc: SlcRegion::new(&cfg.geometry),
            counters: Counters::new(),
            next_mapping_chip: 0,
            l2p_log_pending: 0,
            breakdown: TimeBreakdown::default(),
            probe: Probe::disabled(),
            spans: SpanRecorder::disabled(),
            cut_state: None,
            scratch: IoScratch::for_config(&cfg),
            cfg,
        }
    }

    /// Attaches a trace probe; every internal event — FTL decisions here,
    /// media operations in the flash layer — is emitted to it from now on.
    /// Pass [`Probe::disabled`] to detach.
    pub fn set_probe(&mut self, probe: Probe) {
        self.flash.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Attaches a span sink: every host command from now on opens a root
    /// span child-scoped into the phases it blocked on (see
    /// [`conzone_types::SpanKind`]). Use [`ConZone::clear_span_sink`] to
    /// detach.
    pub fn set_span_sink(&mut self, sink: std::sync::Arc<dyn SpanSink + Send + Sync>) {
        self.spans = SpanRecorder::attached(sink);
    }

    /// Detaches the span sink; phase brackets become single branches again.
    pub fn clear_span_sink(&mut self) {
        self.spans = SpanRecorder::disabled();
    }

    /// Where host-visible device time has gone so far.
    pub fn time_breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }

    /// Whether a zone is exposed as a conventional (in-place) zone.
    #[inline]
    pub(crate) fn is_conventional(&self, zone: ZoneId) -> bool {
        (zone.raw() as usize) < self.cfg.conventional_zones
    }

    /// Records `n` L2P mapping-table updates in the persistence log.
    #[inline]
    pub(crate) fn note_l2p_updates(&mut self, n: u64) {
        if self.cfg.l2p_log_entries > 0 {
            self.l2p_log_pending += n;
        }
    }

    /// Flushes the L2P update log to flash whenever it reaches the
    /// configured threshold. The flush programs one mapping page on the
    /// mapping media and blocks the current host request (paper §III-E:
    /// "the flushing back of the L2P log may block host requests").
    pub(crate) fn maybe_flush_l2p_log(&mut self, now: SimTime) -> SimTime {
        let threshold = self.cfg.l2p_log_entries;
        if threshold == 0 || self.l2p_log_pending < threshold {
            return now;
        }
        let _p = conzone_sim::profile::scope("l2p_log_flush");
        let mut t = now;
        while self.l2p_log_pending >= threshold {
            self.l2p_log_pending -= threshold;
            self.counters.l2p_log_flushes += 1;
            self.probe.emit(t, conzone_types::DeviceEvent::L2pLogFlush);
            let chip = self.mapping_chip();
            let bytes = self.cfg.geometry.page_bytes as u64;
            let media = self.cfg.mapping_media;
            let (_buffer_free, finish) = self.flash.timed_program(t, chip, media, bytes, 1);
            t = finish;
        }
        self.breakdown.l2p_log += t - now;
        if t > now {
            self.spans.open(now, SpanKind::L2pLog);
            self.spans.close(t);
        }
        t
    }

    /// Zone size in slices.
    #[inline]
    pub(crate) fn zone_slices(&self) -> u64 {
        self.cfg.zone_size_slices()
    }

    /// Slices of a zone backed by the reserved superblock (the rest is the
    /// SLC alignment patch).
    #[inline]
    pub(crate) fn backing_slices(&self) -> u64 {
        self.cfg.zone_backing_bytes() / conzone_types::SLICE_BYTES
    }

    /// Slices per programming unit of the normal media.
    #[inline]
    pub(crate) fn unit_slices(&self) -> u64 {
        self.cfg.geometry.slices_per_unit() as u64
    }

    /// First logical page of a zone.
    #[inline]
    pub(crate) fn zone_start(&self, zone: ZoneId) -> Lpn {
        Lpn(zone.raw() * self.zone_slices())
    }

    /// Splits a request into its (single) target zone and zone-relative
    /// slice offset, validating the boundary rule.
    pub(crate) fn zone_and_offset(&self, range: LpnRange) -> Result<(ZoneId, u64), DeviceError> {
        let zs = self.zone_slices();
        let zone = ZoneId(range.start.raw() / zs);
        if (zone.raw() as usize) >= self.zones.len() {
            return Err(DeviceError::OutOfRange {
                offset: range.start.byte_offset(),
                capacity: self.cfg.capacity_bytes(),
            });
        }
        Ok((zone, range.start.raw() % zs))
    }

    /// Number of sequential zones currently open (conventional zones have
    /// no open/close lifecycle and never count against the limit).
    pub(crate) fn open_zone_count(&self) -> usize {
        self.zones
            .iter()
            .enumerate()
            .filter(|(i, z)| *i >= self.cfg.conventional_zones && z.state == ZoneState::Open)
            .count()
    }

    /// Round-robin chip for the next mapping-table fetch.
    pub(crate) fn mapping_chip(&mut self) -> conzone_types::ChipId {
        let chip = self.next_mapping_chip % self.cfg.geometry.nchips() as u64;
        self.next_mapping_chip += 1;
        conzone_types::ChipId(chip)
    }

    /// Records a page's aggregation level in the strategy bitmap, if one is
    /// maintained.
    pub(crate) fn note_bits(&mut self, lpn: Lpn, count: u64, granularity: MapGranularity) {
        if let Some(bitmap) = &mut self.bitmap {
            bitmap.set_range(lpn, count, granularity);
        }
    }

    /// Read-only view of the internal L2P cache (for tests and reports).
    pub fn l2p_cache(&self) -> &L2pCache {
        &self.cache
    }

    /// Read-only view of the mapping table (for tests and reports).
    pub fn mapping_table(&self) -> &MappingTable {
        &self.table
    }

    /// Read-only view of the flash array (for tests and reports).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// Free superblocks remaining in the SLC region.
    pub fn slc_free_superblocks(&self) -> usize {
        self.slc.free.len()
    }

    /// Wear and lifespan report (paper §I's lifespan motivation).
    pub fn wear_report(&self) -> conzone_flash::WearReport {
        let mut report = self.flash.wear_report();
        report.host_bytes_written = self.counters.host_write_bytes;
        report
    }
}

impl StorageDevice for ConZone {
    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    // xtask-effect: hot_path
    fn submit(&mut self, now: SimTime, request: &IoRequest) -> Result<Completion, DeviceError> {
        self.ensure_powered()?;
        request.validate()?;
        let end = request.offset + request.len;
        if end > self.cfg.capacity_bytes() {
            return Err(DeviceError::OutOfRange {
                offset: request.offset,
                capacity: self.cfg.capacity_bytes(),
            });
        }
        let range = LpnRange::covering_bytes(request.offset, request.len).ok_or_else(|| {
            // xtask-lint: allow(hot-path-effects) — error construction inside ok_or_else; never runs on the success path
            DeviceError::Internal("validated request covers no logical pages".to_string())
        })?;
        // The root span covers submit to completion; error paths roll the
        // stack back so an aborted command never leaves phases dangling.
        let depth = self.spans.depth();
        let result = match request.kind {
            IoKind::Write => {
                self.counters.host_write_ops += 1;
                self.counters.host_write_bytes += request.len;
                self.spans.open(now, SpanKind::IoWrite);
                self.write_range(now, range, request.data.as_deref())
                    .map(|finished| Completion {
                        submitted: now,
                        finished,
                        data: None,
                        assigned_offset: None,
                    })
            }
            IoKind::Append => {
                self.counters.host_write_ops += 1;
                self.counters.host_write_bytes += request.len;
                self.spans.open(now, SpanKind::IoAppend);
                self.append_range(now, range, request.data.as_deref()).map(
                    |(finished, assigned)| Completion {
                        submitted: now,
                        finished,
                        data: None,
                        assigned_offset: Some(assigned),
                    },
                )
            }
            IoKind::Read => {
                self.counters.host_read_ops += 1;
                self.counters.host_read_bytes += request.len;
                self.spans.open(now, SpanKind::IoRead);
                self.read_range(now, range)
                    .map(|(finished, data)| Completion {
                        submitted: now,
                        finished,
                        data: data.map(Bytes::from),
                        assigned_offset: None,
                    })
            }
        };
        match result {
            Ok(c) => {
                self.spans.close(c.finished);
                Ok(c)
            }
            Err(e) => {
                self.spans.cancel_to(depth);
                Err(e)
            }
        }
    }

    fn flush(&mut self, now: SimTime) -> Result<Completion, DeviceError> {
        self.ensure_powered()?;
        let depth = self.spans.depth();
        self.spans.open(now, SpanKind::IoFlush);
        let mut t = now;
        for buf in 0..self.buffers.len() {
            match self.flush_buffer(t, buf, true) {
                Ok(next) => t = next,
                Err(e) => {
                    self.spans.cancel_to(depth);
                    return Err(e);
                }
            }
        }
        t = self.maybe_flush_l2p_log(t);
        self.debug_assert_invariants("after host flush");
        let finished = t + self.cfg.host_overhead;
        self.spans.close(finished);
        Ok(Completion {
            submitted: now,
            finished,
            data: None,
            assigned_offset: None,
        })
    }

    fn counters(&self) -> Counters {
        let mut c = self.counters;
        let stats = self.flash.stats();
        c.flash_program_bytes_slc = stats.program_bytes_slc;
        c.flash_program_bytes_tlc = stats.program_bytes_tlc;
        c.flash_program_bytes_qlc = stats.program_bytes_qlc;
        c.flash_data_reads = stats.page_reads;
        c.erases_slc = stats.erases_slc;
        c.erases_normal = stats.erases_normal;
        c.read_retries = stats.read_retries;
        c.blocks_retired = stats.blocks_retired;
        c.l2p_evictions = self.cache.evictions();
        c
    }

    fn model_name(&self) -> &'static str {
        "conzone"
    }
}

impl ZonedDevice for ConZone {
    fn zone_count(&self) -> usize {
        self.zones.len()
    }

    fn zone_size(&self) -> u64 {
        self.cfg.zone_size_bytes()
    }

    fn zone_info(&self, zone: ZoneId) -> Result<ZoneInfo, DeviceError> {
        let z = self
            .zones
            .get(zone.raw() as usize)
            .ok_or(DeviceError::OutOfRange {
                offset: zone.raw() * self.zone_size(),
                capacity: self.cfg.capacity_bytes(),
            })?;
        Ok(ZoneInfo {
            id: zone,
            state: z.state,
            write_pointer: z.wp_slices * conzone_types::SLICE_BYTES,
            capacity: self.zone_size(),
            size: self.zone_size(),
            start: zone.raw() * self.zone_size(),
        })
    }

    fn reset_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        self.ensure_powered()?;
        let depth = self.spans.depth();
        self.spans.open(now, SpanKind::ZoneReset);
        match self.reset_zone_inner(now, zone) {
            Ok(finished) => {
                self.spans.close(finished);
                Ok(Completion {
                    submitted: now,
                    finished,
                    data: None,
                    assigned_offset: None,
                })
            }
            Err(e) => {
                self.spans.cancel_to(depth);
                Err(e)
            }
        }
    }

    fn open_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let finished = self.open_zone_inner(now, zone)?;
        Ok(Completion {
            submitted: now,
            finished,
            data: None,
            assigned_offset: None,
        })
    }

    fn close_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let finished = self.close_zone_inner(now, zone)?;
        Ok(Completion {
            submitted: now,
            finished,
            data: None,
            assigned_offset: None,
        })
    }

    fn finish_zone(&mut self, now: SimTime, zone: ZoneId) -> Result<Completion, DeviceError> {
        let finished = self.finish_zone_inner(now, zone)?;
        Ok(Completion {
            submitted: now,
            finished,
            data: None,
            assigned_offset: None,
        })
    }
}
