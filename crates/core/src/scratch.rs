//! Reusable scratch buffers for the per-IO hot paths.
//!
//! The read, write and GC paths need short-lived lists (gathered PPAs,
//! LPN runs, chip placement orders). Allocating them per operation would
//! break the steady-state zero-allocation contract checked by the
//! `hot-path-effects` lint rule and the `counting-alloc` bench guard, so
//! `ConZone` owns one set of buffers that the paths `mem::take`, clear,
//! fill and put back. Capacity grows during warmup and then stabilises.
//!
//! Fields taken concurrently must be distinct: the write path holds
//! `lpns`/`chip_order` while GC (reachable from `program_slc_batch`)
//! holds the `gc_*` buffers, so the two never alias.

use conzone_types::{DeviceConfig, Lpn, Ppa};

/// The per-device scratch pool. All buffers are logically empty between
/// operations; only their capacity persists.
#[derive(Debug, Default)]
pub(crate) struct IoScratch {
    /// Read path: per-slice source slots.
    pub read_slots: Vec<crate::read::Slot>,
    /// Read path: PPAs gathered for the flash data read.
    pub read_ppas: Vec<Ppa>,
    /// Write path: LPN runs handed to `program_slc_batch`.
    pub lpns: Vec<Lpn>,
    /// Write path: staged-slice PPAs read back for an SLC combine.
    pub ppas: Vec<Ppa>,
    /// Write path: idle-first chip placement order.
    pub chip_order: Vec<usize>,
    /// GC: the victim's live PPAs.
    pub gc_ppas: Vec<Ppa>,
    /// GC: owners of the migrating slices.
    pub gc_lpns: Vec<Lpn>,
    /// GC: idle-first chip placement order for migration.
    pub gc_chip_order: Vec<usize>,
}

impl IoScratch {
    /// Pre-sizes the buffers whose peak demand is fixed by the geometry,
    /// so their first large use (typically the first GC pass, or the first
    /// zone-tail patch) does not allocate mid-workload. The read-path
    /// buffers scale with host request size instead and are left to grow
    /// on first use.
    pub(crate) fn for_config(cfg: &DeviceConfig) -> IoScratch {
        let g = &cfg.geometry;
        let superpage = g.slices_per_superpage() as usize;
        let superblock = g.slices_per_block() as usize * g.nchips();
        let patch = cfg.zone_patch_slices() as usize;
        IoScratch {
            read_slots: Vec::new(),
            read_ppas: Vec::new(),
            lpns: Vec::with_capacity(superpage.max(patch)),
            ppas: Vec::with_capacity(g.slices_per_unit() + superpage),
            chip_order: Vec::with_capacity(g.nchips()),
            gc_ppas: Vec::with_capacity(superblock),
            gc_lpns: Vec::with_capacity(superblock),
            gc_chip_order: Vec::with_capacity(g.nchips()),
        }
    }
}
