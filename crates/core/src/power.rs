//! Unclean power loss and remount recovery.
//!
//! `power_cut` models yanking the plug: the volatile write buffers — and
//! every acknowledged slice above each zone's durable prefix — vanish, the
//! zones' write pointers rewind to that prefix, and the unsynced tail of
//! the L2P persistence log is dropped. Everything already in flash (the
//! canonical zone layout, the SLC secondary buffer with its staged /
//! patch / conventional slices, persisted mapping pages) survives.
//!
//! `remount` models the next power-on: the controller scans the written
//! pages of the SLC secondary buffer to rebuild the slice owner map and
//! re-reads the persisted L2P log, paying the corresponding media time.
//! The resulting [`RecoveryReport`] states exactly which logical pages
//! came back and which were lost, as coalesced sorted runs — the numbers
//! the crash-consistency proptest balances against the in-flight count at
//! the cut.

use conzone_types::{
    CellType, ChipId, DeviceError, DeviceEvent, Lpn, LpnRange, PowerCycle, RecoveryReport, SimTime,
    SuperblockId, ZoneState,
};

use crate::device::ConZone;

/// What a power cut destroyed, held until the matching `remount`.
#[derive(Debug, Clone)]
pub(crate) struct CutState {
    /// Simulated time of the cut.
    pub cut_at: SimTime,
    /// Logical pages lost from volatile buffers, coalesced and sorted.
    pub lost: Vec<LpnRange>,
    /// Total lost slices.
    pub lost_slices: u64,
}

/// Sorts, dedups and coalesces logical pages into maximal runs.
fn coalesce(mut lpns: Vec<Lpn>) -> Vec<LpnRange> {
    lpns.sort();
    lpns.dedup();
    let mut out: Vec<LpnRange> = Vec::new();
    for lpn in lpns {
        match out.last_mut() {
            Some(r) if r.start.raw() + r.count == lpn.raw() => r.count += 1,
            _ => out.push(LpnRange::new(lpn, 1)),
        }
    }
    out
}

impl ConZone {
    /// Rejects operations while power is cut.
    pub(crate) fn ensure_powered(&self) -> Result<(), DeviceError> {
        if self.cut_state.is_some() {
            return Err(DeviceError::Unsupported(
                // xtask-lint: allow(hot-path-effects) — rejected-command error path, not steady state
                "power is cut; remount the device first".to_string(),
            ));
        }
        Ok(())
    }
}

impl PowerCycle for ConZone {
    fn power_cut(&mut self, now: SimTime) -> Result<u64, DeviceError> {
        if self.cut_state.is_some() {
            return Err(DeviceError::Unsupported("power is already cut".to_string()));
        }
        let zs = self.zone_slices();
        let mut lost_lpns: Vec<Lpn> = Vec::new();
        for zidx in 0..self.zones.len() {
            let wp = self.zones[zidx].wp_slices;
            let flushed = self.zones[zidx].flushed_slices;
            if wp > flushed {
                let base = zidx as u64 * zs;
                lost_lpns.extend((flushed..wp).map(|o| Lpn(base + o)));
                // The write pointer rewinds to the durable prefix: the
                // host may rewrite the lost range after remount.
                self.zones[zidx].wp_slices = flushed;
            }
        }
        for buf in &mut self.buffers {
            buf.release();
        }
        // The unsynced tail of the L2P persistence log is volatile too.
        self.l2p_log_pending = 0;
        let lost_slices = lost_lpns.len() as u64;
        self.counters.lost_slices += lost_slices;
        self.probe.emit(now, DeviceEvent::PowerCut { lost_slices });
        self.cut_state = Some(CutState {
            cut_at: now,
            lost: coalesce(lost_lpns),
            lost_slices,
        });
        Ok(lost_slices)
    }

    fn remount(&mut self, now: SimTime) -> Result<RecoveryReport, DeviceError> {
        let cut = self.cut_state.take().ok_or_else(|| {
            DeviceError::Unsupported("remount without a preceding power cut".to_string())
        })?;
        // The volatile L2P cache is gone (its eviction total survives as a
        // lifetime statistic).
        self.cache.clear();

        // Replay scan: sense every written page of the SLC secondary
        // buffer to rebuild the slice owner map, in parallel across chips.
        let spp = self.cfg.geometry.slices_per_page();
        let page_bytes = self.cfg.geometry.page_bytes as u64;
        let mut finish = now;
        let scan: Vec<SuperblockId> = self
            .slc
            .used
            .iter()
            .copied()
            .chain(self.slc.active)
            .collect();
        for sb in scan {
            for c in 0..self.cfg.geometry.nchips() {
                let chip = ChipId(c as u64);
                let pages = self
                    .flash
                    .block(chip, sb.raw() as usize)
                    .cursor()
                    .div_ceil(spp);
                for _ in 0..pages {
                    let r = self
                        .flash
                        .timed_page_read(now, chip, CellType::Slc, page_bytes);
                    finish = finish.max(r.end);
                }
            }
        }
        // Re-read the persisted L2P log head from the mapping media.
        let chip = self.mapping_chip();
        let media = self.cfg.mapping_media;
        let r = self.flash.timed_page_read(now, chip, media, page_bytes);
        finish = finish.max(r.end);
        self.counters.flash_mapping_reads += 1;

        let recovered_lpns: Vec<Lpn> = self.slc.owner.iter().map(|(_, lpn)| lpn).collect();
        let recovered_slices = recovered_lpns.len() as u64;
        self.counters.recovered_slices += recovered_slices;

        // No zone survives a power cycle open.
        for z in &mut self.zones {
            if z.state == ZoneState::Open {
                z.state = if z.wp_slices == 0 {
                    ZoneState::Empty
                } else {
                    ZoneState::Closed
                };
            }
        }

        self.probe.emit(
            finish,
            DeviceEvent::RecoveryReplay {
                recovered_slices,
                lost_slices: cut.lost_slices,
            },
        );
        self.debug_assert_invariants("after power-cycle remount");
        Ok(RecoveryReport {
            cut_at: cut.cut_at,
            finished: finish,
            recovered_slices,
            lost_slices: cut.lost_slices,
            recovered: coalesce(recovered_lpns),
            lost: cut.lost,
        })
    }

    fn in_flight_slices(&self) -> u64 {
        let buffered: u64 = self
            .zones
            .iter()
            .map(|z| z.wp_slices - z.flushed_slices)
            .sum();
        self.slc.owner.len() as u64 + buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_runs() {
        let lpns = vec![Lpn(9), Lpn(3), Lpn(4), Lpn(5), Lpn(4), Lpn(11), Lpn(10)];
        assert_eq!(
            coalesce(lpns),
            vec![LpnRange::new(Lpn(3), 3), LpnRange::new(Lpn(9), 3)]
        );
        assert!(coalesce(Vec::new()).is_empty());
    }
}
