//! Behavioural tests of the full ConZone device.

use bytes::Bytes;
use conzone_types::{
    Counters, DeviceConfig, DeviceError, FaultConfig, Geometry, IoRequest, Lpn, LpnRange,
    MapGranularity, PowerCycle, SearchStrategy, SimTime, StorageDevice, ZoneId, ZonePadding,
    ZoneState, ZonedDevice, SLICE_BYTES,
};

use crate::ConZone;

fn dev() -> ConZone {
    ConZone::new(DeviceConfig::tiny_for_tests())
}

fn dev_with(
    f: impl FnOnce(conzone_types::DeviceConfigBuilder) -> conzone_types::DeviceConfigBuilder,
) -> ConZone {
    let b = DeviceConfig::builder(Geometry::tiny())
        .chunk_bytes(256 * 1024)
        .data_backing(true);
    ConZone::new(f(b).build().expect("test config"))
}

/// A geometry whose superblocks are 384 KiB (not a power of two after
/// padding? 384 KiB → 512 KiB zones with a 128 KiB SLC patch).
fn non_pow2_config() -> DeviceConfig {
    let g = Geometry {
        channels: 1,
        chips_per_channel: 2,
        blocks_per_chip: 10,
        slc_blocks_per_chip: 4,
        pages_per_block: 12,
        page_bytes: 16 * 1024,
        program_unit_bytes: 64 * 1024,
        planes_per_chip: 1,
    };
    DeviceConfig::builder(g)
        .chunk_bytes(128 * 1024)
        .zone_padding(ZonePadding::SlcAligned)
        .data_backing(true)
        .build()
        .expect("non-pow2 config valid")
}

fn pattern(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect::<Vec<u8>>(),
    )
}

fn write_at(dev: &mut ConZone, t: SimTime, offset: u64, data: Bytes) -> SimTime {
    dev.submit(t, &IoRequest::write_data(offset, data))
        .expect("write ok")
        .finished
}

fn read_at(dev: &mut ConZone, t: SimTime, offset: u64, len: u64) -> (SimTime, Bytes) {
    let c = dev
        .submit(t, &IoRequest::read(offset, len))
        .expect("read ok");
    (c.finished, c.data.expect("data backing enabled"))
}

#[test]
fn sequential_write_read_roundtrip() {
    let mut d = dev();
    let data = pattern(256 * 1024, 7);
    let t = write_at(&mut d, SimTime::ZERO, 0, data.clone());
    let (_, back) = read_at(&mut d, t, 0, 256 * 1024);
    assert_eq!(back, data);
}

#[test]
fn write_pointer_advances_and_enforces() {
    let mut d = dev();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(8192, 1));
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 8192);
    // Writing anywhere but the write pointer fails.
    let err = d
        .submit(t, &IoRequest::write_data(64 * 1024, pattern(4096, 2)))
        .unwrap_err();
    assert!(matches!(err, DeviceError::NotWritePointer { .. }));
    // Writing at the pointer succeeds.
    d.submit(t, &IoRequest::write_data(8192, pattern(4096, 3)))
        .unwrap();
}

#[test]
fn zone_boundary_write_rejected() {
    let mut d = dev();
    let zone_size = d.zone_size();
    // Fill the zone to one slice short of the end, then write two slices.
    let mut t = SimTime::ZERO;
    t = write_at(&mut d, t, 0, pattern((zone_size - SLICE_BYTES) as usize, 4));
    let err = d
        .submit(
            t,
            &IoRequest::write_data(zone_size - SLICE_BYTES, pattern(8192, 5)),
        )
        .unwrap_err();
    assert!(matches!(err, DeviceError::ZoneBoundary { .. }));
}

#[test]
fn filling_a_zone_seals_it() {
    let mut d = dev();
    let zone_size = d.zone_size();
    let data = pattern(zone_size as usize, 6);
    let t = write_at(&mut d, SimTime::ZERO, 0, data.clone());
    let info = d.zone_info(ZoneId(0)).unwrap();
    assert_eq!(info.state, ZoneState::Full);
    let err = d
        .submit(t, &IoRequest::write_data(0, pattern(4096, 7)))
        .unwrap_err();
    assert!(matches!(err, DeviceError::ZoneFull { .. }));
    // Whole-zone read back.
    let (_, back) = read_at(&mut d, t, 0, zone_size);
    assert_eq!(back, data);
}

#[test]
fn full_zone_write_is_pure_tlc_waf_one() {
    let mut d = dev();
    let zone_size = d.zone_size();
    write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 8));
    let c = d.counters();
    assert_eq!(c.flash_program_bytes_tlc, zone_size);
    assert_eq!(c.flash_program_bytes_slc, 0, "no premature flushes");
    assert_eq!(c.premature_flushes, 0);
    assert!((c.write_amplification() - 1.0).abs() < 1e-9);
}

#[test]
fn buffer_conflict_goes_through_slc() {
    // Two zones sharing buffer 0 (tiny config has 2 buffers; zones 0 and 2).
    let mut d = dev();
    let mut t = SimTime::ZERO;
    // 48 KiB each, alternating: every switch evicts a sub-unit remainder.
    for round in 0..4u64 {
        for &zone in &[0u64, 2] {
            let offset = zone * d.zone_size() + round * 48 * 1024;
            t = write_at(&mut d, t, offset, pattern(48 * 1024, zone as u8));
        }
    }
    let c = d.counters();
    assert!(c.buffer_conflicts > 0, "conflicts detected");
    assert!(c.premature_flushes > 0, "premature flushes happened");
    assert!(c.flash_program_bytes_slc > 0, "SLC absorbed the remainders");
    assert!(c.slc_combines > 0, "staged data was combined back");
    assert!(c.write_amplification() > 1.0);
    // Data integrity across the staged/combined path.
    let z2 = 2 * d.zone_size();
    let (_, back) = read_at(&mut d, t, z2, 48 * 1024);
    assert_eq!(back, pattern(48 * 1024, 2));
}

#[test]
fn no_conflict_when_zones_use_different_buffers() {
    let mut d = dev();
    let mut t = SimTime::ZERO;
    for round in 0..4u64 {
        for &zone in &[0u64, 1] {
            let offset = zone * d.zone_size() + round * 48 * 1024;
            t = write_at(&mut d, t, offset, pattern(48 * 1024, zone as u8));
        }
    }
    let c = d.counters();
    assert_eq!(c.buffer_conflicts, 0);
    assert_eq!(c.premature_flushes, 0);
    assert_eq!(c.flash_program_bytes_slc, 0);
}

#[test]
fn read_served_from_buffer_before_flush() {
    let mut d = dev();
    // 8 KiB buffered (less than the 64 KiB unit): nothing flushed yet.
    let data = pattern(8192, 9);
    let t = write_at(&mut d, SimTime::ZERO, 0, data.clone());
    let before = d.counters();
    assert_eq!(before.flash_program_bytes(), 0, "still buffered");
    let (_, back) = read_at(&mut d, t, 0, 8192);
    assert_eq!(back, data);
    let after = d.counters();
    assert_eq!(
        after.flash_data_reads, before.flash_data_reads,
        "no flash read"
    );
    assert_eq!(after.l2p_misses, 0, "buffer hits bypass the L2P path");
}

#[test]
fn zone_aggregation_after_fill() {
    let mut d = dev();
    let zone_size = d.zone_size();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 10));
    // The whole zone is canonical: entries aggregate to zone granularity.
    let lpn = conzone_types::Lpn(5);
    assert_eq!(
        d.mapping_table().granularity_of(lpn),
        Some(MapGranularity::Zone)
    );
    // A read miss inserts one zone-level entry; subsequent reads hit it.
    let (t2, _) = read_at(&mut d, t, 0, 4096);
    let (_, _) = read_at(&mut d, t2, 123 * 4096, 4096);
    let c = d.counters();
    assert_eq!(c.l2p_misses, 1);
    assert_eq!(c.l2p_hits_zone, 1);
}

#[test]
fn aggregation_capped_by_config() {
    let mut d = dev_with(|b| b.max_aggregation(MapGranularity::Chunk));
    let zone_size = d.zone_size();
    write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 11));
    assert_eq!(
        d.mapping_table().granularity_of(conzone_types::Lpn(0)),
        Some(MapGranularity::Chunk)
    );

    let mut d = dev_with(|b| b.max_aggregation(MapGranularity::Page));
    let zone_size = d.zone_size();
    write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 12));
    assert_eq!(
        d.mapping_table().granularity_of(conzone_types::Lpn(0)),
        Some(MapGranularity::Page)
    );
}

#[test]
fn multiple_strategy_pays_extra_mapping_fetches() {
    // Page-mapped data (max_aggregation = Page) with a tiny cache forces
    // misses; Multiple needs 3 fetches per miss, Bitmap needs 1.
    let run = |strategy: SearchStrategy| -> (u64, u64) {
        let mut d = dev_with(|b| {
            b.search_strategy(strategy)
                .max_aggregation(MapGranularity::Page)
                .l2p_cache_bytes(16) // 4 entries
        });
        let zone_size = d.zone_size();
        let mut t = write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 13));
        // Scattered reads across the zone → misses.
        for i in 0..32u64 {
            let off = (i * 37) % (zone_size / SLICE_BYTES);
            let (t2, _) = read_at(&mut d, t, off * SLICE_BYTES, SLICE_BYTES);
            t = t2;
        }
        let c = d.counters();
        (c.l2p_misses, c.flash_mapping_reads)
    };
    let (m_b, f_b) = run(SearchStrategy::Bitmap);
    let (m_m, f_m) = run(SearchStrategy::Multiple);
    assert_eq!(m_b, m_m, "same miss pattern");
    assert_eq!(f_b, m_b, "bitmap: one fetch per miss");
    assert_eq!(f_m, 3 * m_m, "multiple: three fetches per page-mapped miss");
}

#[test]
fn pinned_strategy_keeps_aggregates_resident() {
    let mut d = dev_with(|b| {
        b.search_strategy(SearchStrategy::Pinned)
            .l2p_cache_bytes(16) // 4 entries
    });
    let zone_size = d.zone_size();
    let mut t = write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 14));
    // Zone aggregate was pinned at generation; every read hits it even
    // after unrelated churn.
    for i in 0..20u64 {
        let (t2, _) = read_at(&mut d, t, (i % 200) * SLICE_BYTES, SLICE_BYTES);
        t = t2;
    }
    let c = d.counters();
    assert_eq!(c.l2p_misses, 0, "pinned zone entry absorbs every lookup");
    assert_eq!(c.l2p_hits_zone, 20);
}

#[test]
fn zone_reset_erases_and_allows_rewrite() {
    let mut d = dev();
    let zone_size = d.zone_size();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 15));
    let before = d.counters();
    let c = d.reset_zone(t, ZoneId(0)).unwrap();
    assert!(c.finished > t, "erase takes time");
    let after = d.counters();
    assert_eq!(after.zone_resets, 1);
    assert!(after.erases_normal > before.erases_normal);
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Empty);
    // Reads of reset data fail; rewrite succeeds.
    assert!(matches!(
        d.submit(c.finished, &IoRequest::read(0, 4096)),
        Err(DeviceError::UnwrittenRead { .. })
    ));
    let data = pattern(zone_size as usize, 16);
    let t = write_at(&mut d, c.finished, 0, data.clone());
    let (_, back) = read_at(&mut d, t, 0, zone_size);
    assert_eq!(back, data);
}

#[test]
fn reset_zone_with_staged_slc_data() {
    let mut d = dev();
    let mut t = SimTime::ZERO;
    // Conflict to stage zone 0 data in SLC.
    t = write_at(&mut d, t, 0, pattern(8192, 17));
    let z2 = 2 * d.zone_size();
    t = write_at(&mut d, t, z2, pattern(8192, 18));
    assert!(d.counters().flash_program_bytes_slc > 0);
    let c = d.reset_zone(t, ZoneId(0)).unwrap();
    // Zone 0's staged slices were invalidated; zone 2's survive.
    let t = c.finished;
    let (_, back) = read_at(&mut d, t, z2, 8192);
    assert_eq!(back, pattern(8192, 18));
    assert!(matches!(
        d.submit(t, &IoRequest::read(0, 4096)),
        Err(DeviceError::UnwrittenRead { .. })
    ));
}

#[test]
fn open_zone_limit_enforced() {
    let mut d = dev_with(|b| b.max_open_zones(2));
    let mut t = SimTime::ZERO;
    t = write_at(&mut d, t, 0, pattern(4096, 1));
    let z1 = d.zone_size();
    t = write_at(&mut d, t, z1, pattern(4096, 2));
    let z2 = 2 * d.zone_size();
    let err = d
        .submit(t, &IoRequest::write_data(z2, pattern(4096, 3)))
        .unwrap_err();
    assert!(matches!(err, DeviceError::TooManyOpenZones { limit: 2 }));
    // Filling one zone frees a slot.
    let zone_size = d.zone_size();
    t = write_at(&mut d, t, 4096, pattern((zone_size - 4096) as usize, 4));
    d.submit(t, &IoRequest::write_data(2 * zone_size, pattern(4096, 5)))
        .unwrap();
}

#[test]
fn slc_gc_reclaims_space() {
    // Tiny SLC region + relentless conflicts → GC must run. Each
    // fill/reset cycle pushes ~2 MiB through the 4 MiB SLC region, so a
    // few cycles exhaust the free list.
    let mut d = dev();
    let mut t = SimTime::ZERO;
    let zone_size = d.zone_size();
    for cycle in 0..4u64 {
        // Alternate 4 KiB writes between zones 0 and 2 (same buffer):
        // every switch premature-flushes one slice into SLC.
        for off in (0..zone_size).step_by(4096) {
            for &zone in &[0u64, 2] {
                let offset = zone * zone_size + off;
                t = write_at(&mut d, t, offset, pattern(4096, (zone + cycle) as u8));
            }
        }
        // Spot-check integrity while everything is live.
        let (t2, back) = read_at(&mut d, t, 64 * 1024, 64 * 1024);
        assert_eq!(back, pattern(64 * 1024, cycle as u8), "cycle {cycle}");
        t = t2;
        for &zone in &[0u64, 2] {
            t = d.reset_zone(t, ZoneId(zone)).unwrap().finished;
        }
    }
    let c = d.counters();
    assert!(c.premature_flushes > 100);
    assert!(c.gc_runs > 0, "SLC GC ran: {c:?}");
    assert!(c.erases_slc > 0);
}

#[test]
fn non_pow2_zone_uses_slc_patch() {
    let cfg = non_pow2_config();
    assert_eq!(cfg.zone_backing_bytes(), 384 * 1024);
    assert_eq!(cfg.zone_size_bytes(), 512 * 1024);
    assert_eq!(cfg.zone_patch_slices(), 32);
    let mut d = ConZone::new(cfg);
    let zone_size = d.zone_size();
    let data = pattern(zone_size as usize, 19);
    let t = write_at(&mut d, SimTime::ZERO, 0, data.clone());
    let c = d.counters();
    assert_eq!(c.patch_slices, 32, "zone tail patched into SLC");
    // Patch pages are reserved: the zone still aggregates fully.
    assert_eq!(
        d.mapping_table().granularity_of(conzone_types::Lpn(0)),
        Some(MapGranularity::Zone)
    );
    assert_eq!(
        d.mapping_table()
            .granularity_of(conzone_types::Lpn(zone_size / SLICE_BYTES - 1)),
        Some(MapGranularity::Zone)
    );
    let (_, back) = read_at(&mut d, t, 0, zone_size);
    assert_eq!(back, data);
}

#[test]
fn determinism_same_seed_same_times() {
    let run = || -> (SimTime, Counters) {
        let mut d = dev();
        let mut t = SimTime::ZERO;
        for round in 0..3u64 {
            for &zone in &[0u64, 2] {
                let offset = zone * d.zone_size() + round * 48 * 1024;
                t = write_at(&mut d, t, offset, pattern(48 * 1024, zone as u8));
            }
        }
        let (t2, _) = read_at(&mut d, t, 0, 48 * 1024);
        (t2, d.counters())
    };
    let (t1, c1) = run();
    let (t2, c2) = run();
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
}

#[test]
fn validation_errors_surface() {
    let mut d = dev();
    assert!(matches!(
        d.submit(SimTime::ZERO, &IoRequest::read(1, 4096)),
        Err(DeviceError::Unaligned { .. })
    ));
    let cap = d.capacity_bytes();
    assert!(matches!(
        d.submit(SimTime::ZERO, &IoRequest::read(cap, 4096)),
        Err(DeviceError::OutOfRange { .. })
    ));
    assert!(matches!(
        d.reset_zone(SimTime::ZERO, ZoneId(9999)),
        Err(DeviceError::OutOfRange { .. })
    ));
}

#[test]
fn counters_track_host_traffic() {
    let mut d = dev();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(128 * 1024, 20));
    read_at(&mut d, t, 0, 64 * 1024);
    let c = d.counters();
    assert_eq!(c.host_write_bytes, 128 * 1024);
    assert_eq!(c.host_read_bytes, 64 * 1024);
    assert_eq!(c.host_write_ops, 1);
    assert_eq!(c.host_read_ops, 1);
}

#[test]
fn timing_write_buffered_is_fast_flush_is_slow() {
    let mut d = dev();
    // A sub-unit write only costs host overhead (lands in the buffer).
    let c1 = d
        .submit(SimTime::ZERO, &IoRequest::write_data(0, pattern(4096, 21)))
        .unwrap();
    assert_eq!(c1.latency(), d.config().host_overhead);
    // A superpage-filling write waits for the flush *transfers* (the
    // buffer frees once data reaches the chip registers; tPROG runs in
    // the background).
    let sp = d.config().geometry.superpage_bytes();
    let rest = sp - 4096;
    let c2 = d
        .submit(
            c1.finished,
            &IoRequest::write_data(4096, pattern(rest as usize, 22)),
        )
        .unwrap();
    assert!(c2.latency() > c1.latency(), "flush adds transfer time");
    assert!(
        c2.latency() < d.config().timings.tlc.program,
        "first flush does not wait for tPROG: {}",
        c2.latency()
    );
    // An immediate second superpage queues its transfers behind the
    // still-programming chips, so it does absorb the program latency.
    let c3 = d
        .submit(
            c2.finished,
            &IoRequest::write_data(sp, pattern(sp as usize, 23)),
        )
        .unwrap();
    assert!(
        c3.latency() >= d.config().timings.tlc.program / 2,
        "back-to-back flush queues behind tPROG: {}",
        c3.latency()
    );
}

#[test]
fn read_latency_includes_media_and_mapping() {
    let mut d = dev();
    let zone_size = d.zone_size();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 23));
    // First read misses: mapping fetch (SLC media read) + TLC data read.
    let c = d.submit(t, &IoRequest::read(0, 4096)).unwrap();
    let miss_latency = c.latency();
    let floor = d.config().timings.slc.read + d.config().timings.tlc.read;
    assert!(miss_latency >= floor, "{miss_latency} >= {floor}");
    // Second read hits: only the TLC data read remains.
    let c2 = d.submit(c.finished, &IoRequest::read(4096, 4096)).unwrap();
    assert!(c2.latency() < miss_latency);
    assert!(c2.latency() >= d.config().timings.tlc.read);
}

#[test]
fn conventional_zone_in_place_updates() {
    let mut d = dev_with(|b| b.conventional_zones(1));
    let mut t = SimTime::ZERO;
    // Write, overwrite, and sparse-write within the conventional zone.
    t = write_at(&mut d, t, 0, pattern(16 * 1024, 30));
    t = write_at(&mut d, t, 0, pattern(16 * 1024, 31)); // in-place update!
    t = write_at(&mut d, t, 512 * 1024, pattern(4096, 32)); // sparse
    let (t2, back) = read_at(&mut d, t, 0, 16 * 1024);
    assert_eq!(back, pattern(16 * 1024, 31), "latest version wins");
    let (t3, back) = read_at(&mut d, t2, 512 * 1024, 4096);
    assert_eq!(back, pattern(4096, 32));
    // Reads of the unwritten hole fail cleanly.
    assert!(matches!(
        d.submit(t3, &IoRequest::read(256 * 1024, 4096)),
        Err(DeviceError::UnwrittenRead { .. })
    ));
    let c = d.counters();
    assert_eq!(c.conventional_updates, 4 + 4 + 1);
    assert!(
        c.flash_program_bytes_slc > 0,
        "conventional data lives in SLC"
    );
    // Sequential zones still enforce the write pointer.
    let z1 = d.zone_size();
    assert!(matches!(
        d.submit(t3, &IoRequest::write_data(z1 + 4096, pattern(4096, 33))),
        Err(DeviceError::NotWritePointer { .. })
    ));
    d.submit(t3, &IoRequest::write_data(z1, pattern(4096, 34)))
        .unwrap();
}

#[test]
fn conventional_zones_exempt_from_open_limit() {
    let mut d = dev_with(|b| b.conventional_zones(1).max_open_zones(2));
    let mut t = SimTime::ZERO;
    let zs = d.zone_size();
    // Conventional zone 0 plus two sequential zones: fine.
    t = write_at(&mut d, t, 0, pattern(4096, 1));
    t = write_at(&mut d, t, zs, pattern(4096, 2));
    t = write_at(&mut d, t, 2 * zs, pattern(4096, 3));
    // A third sequential zone exceeds the limit.
    let z3 = 3 * zs;
    assert!(matches!(
        d.submit(t, &IoRequest::write_data(z3, pattern(4096, 4))),
        Err(DeviceError::TooManyOpenZones { .. })
    ));
}

#[test]
fn conventional_zone_reset_clears_mappings() {
    let mut d = dev_with(|b| b.conventional_zones(1));
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(64 * 1024, 35));
    let c = d.reset_zone(t, ZoneId(0)).unwrap();
    assert!(matches!(
        d.submit(c.finished, &IoRequest::read(0, 4096)),
        Err(DeviceError::UnwrittenRead { .. })
    ));
    // Rewritable afterwards.
    write_at(&mut d, c.finished, 0, pattern(4096, 36));
}

#[test]
fn conventional_data_survives_slc_gc() {
    // Small SLC region + conventional churn forces GC to migrate live
    // conventional data.
    let mut d = dev_with(|b| b.conventional_zones(1));
    let mut t = SimTime::ZERO;
    // Overwrite a 256 KiB working set many times: SLC fills with stale
    // versions and GC must reclaim around the live ones.
    for round in 0..40u8 {
        for off in (0..256 * 1024u64).step_by(64 * 1024) {
            t = write_at(
                &mut d,
                t,
                off,
                pattern(64 * 1024, round.wrapping_add(off as u8)),
            );
        }
    }
    let c = d.counters();
    assert!(c.gc_runs > 0, "SLC GC ran: {c:?}");
    // The last round's data is intact.
    for off in (0..256 * 1024u64).step_by(64 * 1024) {
        let (t2, back) = read_at(&mut d, t, off, 64 * 1024);
        t = t2;
        assert_eq!(
            back,
            pattern(64 * 1024, 39u8.wrapping_add(off as u8)),
            "offset {off}"
        );
    }
}

#[test]
fn l2p_log_flushes_block_and_count() {
    // Threshold of one superpage's worth of updates: every flush of the
    // write buffer also persists the log.
    let sp_slices = Geometry::tiny().superpage_bytes() / SLICE_BYTES;
    let mut with_log = dev_with(|b| b.l2p_log_entries(sp_slices));
    let mut without = dev_with(|b| b);
    let zone = with_log.zone_size();
    let data = pattern(zone as usize, 40);
    let t_with = write_at(&mut with_log, SimTime::ZERO, 0, data.clone());
    let t_without = write_at(&mut without, SimTime::ZERO, 0, data);
    let c = with_log.counters();
    assert!(c.l2p_log_flushes >= zone / Geometry::tiny().superpage_bytes());
    assert_eq!(without.counters().l2p_log_flushes, 0);
    assert!(
        t_with > t_without,
        "log persistence costs time: {t_with} vs {t_without}"
    );
}

#[test]
fn wear_report_tracks_erases() {
    let mut d = dev();
    let zone = d.zone_size();
    let mut t = SimTime::ZERO;
    let fresh = d.wear_report();
    assert_eq!(fresh.normal.max_erases, 0);
    assert!(fresh.projected_lifetime_host_bytes().is_none());
    for _ in 0..3 {
        t = write_at(&mut d, t, 0, pattern(zone as usize, 41));
        t = d.reset_zone(t, ZoneId(0)).unwrap().finished;
    }
    let worn = d.wear_report();
    assert_eq!(worn.normal.max_erases, 3);
    assert!(worn.normal.mean_erases > 0.0);
    assert_eq!(worn.host_bytes_written, 3 * zone);
    let projected = worn.projected_lifetime_host_bytes().unwrap();
    assert!(projected > worn.host_bytes_written as f64);
}

#[test]
fn explicit_zone_lifecycle() {
    let mut d = dev();
    let mut t = SimTime::ZERO;
    // Explicit open reserves a slot before any write.
    t = d.open_zone(t, ZoneId(0)).unwrap().finished;
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Open);
    // Write 8 KiB (sub-unit: stays buffered), then close: the buffer is
    // drained prematurely into SLC and the slot is released.
    t = write_at(&mut d, t, 0, pattern(8192, 50));
    let before = d.counters();
    t = d.close_zone(t, ZoneId(0)).unwrap().finished;
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Closed);
    let after = d.counters();
    assert_eq!(after.premature_flushes, before.premature_flushes + 1);
    assert!(after.flash_program_bytes_slc > before.flash_program_bytes_slc);
    // Closed data remains readable, and the write pointer is preserved.
    let (t2, back) = read_at(&mut d, t, 0, 8192);
    assert_eq!(back, pattern(8192, 50));
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 8192);
    // A write at the pointer reopens the zone implicitly.
    t = write_at(&mut d, t2, 8192, pattern(4096, 51));
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Open);
    // Closing a non-open zone fails.
    assert!(matches!(
        d.close_zone(t, ZoneId(5)),
        Err(DeviceError::ZoneNotWritable { .. })
    ));
}

#[test]
fn finish_zone_seals_without_writing() {
    let mut d = dev();
    let mut t = SimTime::ZERO;
    t = write_at(&mut d, t, 0, pattern(64 * 1024, 52));
    t = d.finish_zone(t, ZoneId(0)).unwrap().finished;
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Full);
    // Writes rejected, written prefix readable, tail unwritten.
    assert!(matches!(
        d.submit(t, &IoRequest::write_data(64 * 1024, pattern(4096, 53))),
        Err(DeviceError::ZoneFull { .. })
    ));
    let (t2, back) = read_at(&mut d, t, 0, 64 * 1024);
    assert_eq!(back, pattern(64 * 1024, 52));
    assert!(matches!(
        d.submit(t2, &IoRequest::read(128 * 1024, 4096)),
        Err(DeviceError::UnwrittenRead { .. })
    ));
    // Finishing again is a no-op; finishing an empty zone seals it too.
    d.finish_zone(t2, ZoneId(0)).unwrap();
    d.finish_zone(t2, ZoneId(3)).unwrap();
    assert_eq!(d.zone_info(ZoneId(3)).unwrap().state, ZoneState::Full);
}

#[test]
fn close_releases_open_slot() {
    let mut d = dev_with(|b| b.max_open_zones(2));
    let mut t = SimTime::ZERO;
    t = write_at(&mut d, t, 0, pattern(4096, 54));
    let zs = d.zone_size();
    t = write_at(&mut d, t, zs, pattern(4096, 55));
    // Limit reached; closing zone 0 frees a slot for zone 2.
    assert!(matches!(
        d.submit(t, &IoRequest::write_data(2 * zs, pattern(4096, 56))),
        Err(DeviceError::TooManyOpenZones { .. })
    ));
    t = d.close_zone(t, ZoneId(0)).unwrap().finished;
    t = write_at(&mut d, t, 2 * zs, pattern(4096, 57));
    // And explicit open of a fourth zone now fails again.
    assert!(matches!(
        d.open_zone(t, ZoneId(3)),
        Err(DeviceError::TooManyOpenZones { .. })
    ));
}

#[test]
fn slc_gc_prefers_less_worn_victims_on_ties() {
    // Drive many GC cycles; with the erase-count tie-break the SLC wear
    // spread (max - min erase count) stays tight.
    let mut d = dev();
    let mut t = SimTime::ZERO;
    let zone_size = d.zone_size();
    for cycle in 0..6u64 {
        for off in (0..zone_size / 2).step_by(4096) {
            for &zone in &[0u64, 2] {
                let offset = zone * zone_size + off;
                t = write_at(&mut d, t, offset, pattern(4096, (zone + cycle) as u8));
            }
        }
        for &zone in &[0u64, 2] {
            t = d.reset_zone(t, ZoneId(zone)).unwrap().finished;
        }
    }
    let wear = d.wear_report();
    assert!(wear.slc.max_erases > 0, "GC erased SLC blocks");
    // Tight spread: the mean is within one erase of the max.
    assert!(
        wear.slc.max_erases as f64 - wear.slc.mean_erases <= 2.0,
        "wear spread too wide: max {} mean {:.2}",
        wear.slc.max_erases,
        wear.slc.mean_erases
    );
}

#[test]
fn zone_append_assigns_offsets() {
    let mut d = dev();
    let zs = d.zone_size();
    let mut t = SimTime::ZERO;
    // Two uncoordinated appends to the same zone land back to back.
    let c1 = d
        .submit(t, &IoRequest::append_data(0, pattern(8192, 60)))
        .unwrap();
    assert_eq!(c1.assigned_offset, Some(0));
    t = c1.finished;
    let c2 = d
        .submit(t, &IoRequest::append_data(0, pattern(4096, 61)))
        .unwrap();
    assert_eq!(c2.assigned_offset, Some(8192));
    t = c2.finished;
    // Appends addressed anywhere inside the zone target its pointer.
    let c3 = d
        .submit(t, &IoRequest::append_data(zs / 2, pattern(4096, 62)))
        .unwrap();
    assert_eq!(c3.assigned_offset, Some(12288));
    t = c3.finished;
    // Data readable at the assigned locations.
    let (t2, back) = read_at(&mut d, t, 8192, 4096);
    assert_eq!(back, pattern(4096, 61));
    // Appends and regular wp-writes interleave consistently.
    let c4 = d
        .submit(t2, &IoRequest::write_data(16384, pattern(4096, 63)))
        .unwrap();
    assert!(c4.assigned_offset.is_none());
    // Appends to conventional zones are rejected.
    let mut d = dev_with(|b| b.conventional_zones(1));
    assert!(matches!(
        d.submit(SimTime::ZERO, &IoRequest::append(0, 4096)),
        Err(DeviceError::Unsupported(_))
    ));
}

#[test]
fn zone_append_respects_capacity() {
    let mut d = dev();
    let zs = d.zone_size();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern((zs - 4096) as usize, 64));
    let err = d.submit(t, &IoRequest::append(0, 8192)).unwrap_err();
    assert!(matches!(err, DeviceError::ZoneBoundary { .. }));
    let c = d.submit(t, &IoRequest::append(0, 4096)).unwrap();
    assert_eq!(c.assigned_offset, Some(zs - 4096));
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Full);
}

#[test]
fn time_breakdown_attributes_activity() {
    let mut d = dev();
    let zone_size = d.zone_size();
    // Pure sequential fill: write-path time only.
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(zone_size as usize, 70));
    let b = d.time_breakdown();
    assert!(b.write_path > conzone_types::SimDuration::ZERO);
    assert_eq!(b.mapping_fetch, conzone_types::SimDuration::ZERO);
    assert_eq!(b.data_read, conzone_types::SimDuration::ZERO);

    // Reads add mapping + data-read time.
    let (_t2, _) = read_at(&mut d, t, 0, 4096);
    let b = d.time_breakdown();
    assert!(
        b.mapping_fetch > conzone_types::SimDuration::ZERO,
        "miss fetched"
    );
    assert!(b.data_read > conzone_types::SimDuration::ZERO);

    // A conflict workload adds combine-read time (fresh device: zone 0
    // above is already full).
    let mut d = dev();
    let mut t = SimTime::ZERO;
    for round in 0..4u64 {
        for &z in &[0u64, 2] {
            let offset = z * zone_size + round * 48 * 1024;
            t = write_at(&mut d, t, offset, pattern(48 * 1024, z as u8));
        }
    }
    let b = d.time_breakdown();
    assert!(
        b.combine_read > conzone_types::SimDuration::ZERO,
        "combines read SLC"
    );
    // Exclusivity: write_path does not double-count the combine reads.
    assert!(b.total() >= b.write_path + b.combine_read);

    // Reset adds erase time.
    let c = d.reset_zone(t, ZoneId(0)).unwrap();
    let _ = c;
    let b = d.time_breakdown();
    assert!(b.erase > conzone_types::SimDuration::ZERO);
    let _ = t;
}

#[test]
fn reads_may_span_zones() {
    // Unlike writes, reads cross zone boundaries freely.
    let mut d = dev();
    let zs = d.zone_size();
    let mut t = SimTime::ZERO;
    t = write_at(&mut d, t, 0, pattern(zs as usize, 80));
    t = write_at(&mut d, t, zs, pattern(zs as usize, 81));
    let (_, back) = read_at(&mut d, t, zs - 8192, 16 * 1024);
    assert_eq!(
        &back[..8192],
        &pattern(zs as usize, 80)[(zs - 8192) as usize..]
    );
    assert_eq!(&back[8192..], &pattern(8192, 81)[..]);
}

#[test]
fn patch_region_reads_hit_slc_latency() {
    // Reads of the §III-E patch tail pay SLC latency, not TLC.
    let cfg = non_pow2_config();
    let backing = cfg.zone_backing_bytes();
    let mut d = ConZone::new(cfg);
    let zs = d.zone_size();
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(zs as usize, 82));
    // Warm the cache with one read so the mapping is resident.
    let (t, _) = read_at(&mut d, t, backing, 4096);
    let c = d.submit(t, &IoRequest::read(backing + 4096, 4096)).unwrap();
    let patch_latency = c.latency();
    let c2 = d.submit(c.finished, &IoRequest::read(0, 4096)).unwrap();
    let tlc_latency = c2.latency();
    assert!(
        patch_latency < tlc_latency,
        "SLC patch read {patch_latency} vs TLC {tlc_latency}"
    );
}

#[test]
fn pinned_strategy_cold_misses_fetch_once() {
    // Even before any aggregation entry exists, Pinned misses cost a
    // single fetch (page granularity).
    let mut d = dev_with(|b| {
        b.search_strategy(SearchStrategy::Pinned)
            .max_aggregation(MapGranularity::Page)
    });
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(256 * 1024, 83));
    let before = d.counters();
    read_at(&mut d, t, 0, 4096);
    let after = d.counters();
    assert_eq!(after.l2p_misses - before.l2p_misses, 1);
    assert_eq!(after.flash_mapping_reads - before.flash_mapping_reads, 1);
}

#[test]
fn l2p_log_disabled_never_flushes() {
    let mut d = dev();
    let zs = d.zone_size();
    write_at(&mut d, SimTime::ZERO, 0, pattern(zs as usize, 84));
    assert_eq!(d.counters().l2p_log_flushes, 0);
}

#[test]
fn power_cut_drops_buffer_and_remount_recovers_slc() {
    let mut d = dev();
    let zs = d.zone_size();
    let zss = zs / SLICE_BYTES;
    let mut t = SimTime::ZERO;
    // Stage zone 0's first two slices into SLC via a buffer conflict,
    // then leave two more slices volatile in the write buffer.
    t = write_at(&mut d, t, 0, pattern(8192, 90));
    t = write_at(&mut d, t, 2 * zs, pattern(8192, 91));
    t = write_at(&mut d, t, 8192, pattern(8192, 92));
    let in_flight = d.in_flight_slices();
    assert_eq!(in_flight, 4 + 2, "4 SLC slices + 2 buffered slices");

    let lost = d.power_cut(t).unwrap();
    assert_eq!(lost, 2, "only the buffered tail is volatile");
    // Everything is rejected until remount, including a second cut.
    assert!(matches!(
        d.submit(t, &IoRequest::read(0, 4096)),
        Err(DeviceError::Unsupported(_))
    ));
    assert!(matches!(
        d.submit(t, &IoRequest::write_data(16384, pattern(4096, 93))),
        Err(DeviceError::Unsupported(_))
    ));
    assert!(d.power_cut(t).is_err());

    let report = d.remount(t).unwrap();
    assert_eq!(report.cut_at, t);
    assert!(report.finished > t, "replay scan takes media time");
    assert_eq!(report.lost_slices, lost);
    assert_eq!(report.recovered_slices + report.lost_slices, in_flight);
    assert_eq!(report.lost, vec![LpnRange::new(Lpn(2), 2)]);
    assert_eq!(
        report.recovered,
        vec![LpnRange::new(Lpn(0), 2), LpnRange::new(Lpn(2 * zss), 2)]
    );
    assert_eq!(d.in_flight_slices(), report.recovered_slices);
    let c = d.counters();
    assert_eq!(c.lost_slices, 2);
    assert_eq!(c.recovered_slices, 4);

    // Open zones came back closed; recovered data is intact; the lost
    // range reads as unwritten because the write pointer rewound.
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Closed);
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().write_pointer, 8192);
    let t = report.finished;
    let (t, back) = read_at(&mut d, t, 0, 8192);
    assert_eq!(back, pattern(8192, 90));
    let (t, back) = read_at(&mut d, t, 2 * zs, 8192);
    assert_eq!(back, pattern(8192, 91));
    assert!(matches!(
        d.submit(t, &IoRequest::read(8192, 4096)),
        Err(DeviceError::UnwrittenRead { .. })
    ));
    // The host may rewrite the lost range at the rewound pointer.
    let t = write_at(&mut d, t, 8192, pattern(8192, 94));
    let (_, back) = read_at(&mut d, t, 8192, 8192);
    assert_eq!(back, pattern(8192, 94));
    // A second remount without a cut is rejected.
    assert!(d.remount(t).is_err());
}

#[test]
fn power_cut_with_nothing_in_flight_loses_nothing() {
    let mut d = dev();
    let zs = d.zone_size();
    // A full zone write drains the buffer completely.
    let t = write_at(&mut d, SimTime::ZERO, 0, pattern(zs as usize, 95));
    assert_eq!(d.in_flight_slices(), 0);
    let lost = d.power_cut(t).unwrap();
    assert_eq!(lost, 0);
    let report = d.remount(t).unwrap();
    assert_eq!(report.lost_slices, 0);
    assert!(report.lost.is_empty());
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Full);
    let (_, back) = read_at(&mut d, report.finished, 0, zs);
    assert_eq!(back, pattern(zs as usize, 95));
}

#[test]
fn program_failures_divert_to_slc_and_data_survives() {
    let mut d = dev_with(|b| b.fault(FaultConfig::with_rates(0.2, 0.0, 0.0)));
    let zs = d.zone_size();
    let data = pattern(zs as usize, 96);
    let t = write_at(&mut d, SimTime::ZERO, 0, data.clone());
    let c = d.counters();
    assert!(c.program_failures > 0, "faults injected: {c:?}");
    assert!(
        c.flash_program_bytes_slc > 0,
        "failed units re-issued into SLC"
    );
    // Burned attempts program no durable bytes, so WAF stays at 1.0
    // until GC churns; it must never drop below it.
    assert!(c.write_amplification() >= 1.0);
    let (_, back) = read_at(&mut d, t, 0, zs);
    assert_eq!(back, data, "every acked byte readable despite failures");
}

#[test]
fn erase_failures_retire_blocks() {
    let mut d = dev_with(|b| b.fault(FaultConfig::with_rates(0.0, 1.0, 0.0)));
    let zs = d.zone_size();
    let mut t = write_at(&mut d, SimTime::ZERO, 0, pattern(zs as usize, 97));
    t = d.reset_zone(t, ZoneId(0)).unwrap().finished;
    let retired = d.counters().blocks_retired;
    assert!(retired > 0, "every erase fails and retires its block");
    assert_eq!(d.zone_info(ZoneId(0)).unwrap().state, ZoneState::Empty);
    // The zone's canonical blocks are gone: a rewritten superpage (which
    // forces a flush) diverts entirely into SLC.
    let sp = d.config().geometry.superpage_bytes() as usize;
    t = write_at(&mut d, t, 0, pattern(sp, 98));
    let c = d.counters();
    assert!(c.flash_program_bytes_slc >= sp as u64);
    let (_, back) = read_at(&mut d, t, 0, sp as u64);
    assert_eq!(back, pattern(sp, 98));
}

#[test]
fn read_retries_add_latency_and_count() {
    let run = |fault: FaultConfig| -> (SimTime, Counters) {
        let mut d = dev_with(|b| b.fault(fault));
        let sp = d.config().geometry.superpage_bytes();
        let t = write_at(&mut d, SimTime::ZERO, 0, pattern(sp as usize, 99));
        let (t, _) = read_at(&mut d, t, 0, sp);
        (t, d.counters())
    };
    let (t_clean, c_clean) = run(FaultConfig::default());
    let (t_retry, c_retry) = run(FaultConfig::with_rates(0.0, 0.0, 1.0));
    assert_eq!(c_clean.read_retries, 0);
    assert!(c_retry.read_retries > 0, "every sense retries");
    assert!(t_retry > t_clean, "retry steps cost time");
}

#[test]
fn fault_schedules_are_deterministic() {
    let run = || -> (SimTime, Counters) {
        let mut d = dev_with(|b| b.fault(FaultConfig::with_rates(0.1, 0.5, 0.3)));
        let zs = d.zone_size();
        let mut t = write_at(&mut d, SimTime::ZERO, 0, pattern(zs as usize, 100));
        let (t2, _) = read_at(&mut d, t, 0, 128 * 1024);
        t = d.reset_zone(t2, ZoneId(0)).unwrap().finished;
        t = write_at(&mut d, t, 0, pattern(128 * 1024, 101));
        (t, d.counters())
    };
    let (t1, c1) = run();
    let (t2, c2) = run();
    assert_eq!(t1, t2);
    assert_eq!(c1, c2);
    assert!(c1.program_failures > 0 || c1.blocks_retired > 0);
    assert!(c1.read_retries > 0);
}
