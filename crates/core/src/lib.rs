//! # conzone-core
//!
//! The ConZone device model: a consumer-grade zoned flash storage emulator
//! (reproduction of *ConZone: A Zoned Flash Storage Emulator for Consumer
//! Devices*, DATE 2025).
//!
//! [`ConZone`] implements the paper's §III internals on top of the
//! [`conzone_flash`] media model and [`conzone_ftl`] mapping machinery:
//!
//! * **Write path** (§III-B) — zones share a limited set of superpage-sized
//!   volatile buffers (`zone mod n` mapping); buffer conflicts flush
//!   prematurely into the SLC secondary buffer, and staged SLC fragments
//!   are combined back into the zone's reserved normal blocks once a full
//!   programming unit accumulates.
//! * **Read path** (§III-C) — hybrid page/chunk/zone mapping with a small
//!   LRU L2P cache; misses fetch mapping entries from flash using the
//!   Bitmap, Multiple or Pinned search strategy of §IV-D.
//! * **Erase path** (§III-D) — full GC inside the SLC region, direct
//!   superblock erase on zone reset.
//!
//! ```
//! use conzone_core::ConZone;
//! use conzone_types::{DeviceConfig, IoRequest, SimTime, StorageDevice, ZonedDevice, ZoneId};
//!
//! let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
//! let c = dev.submit(SimTime::ZERO, &IoRequest::write(0, 128 * 1024))?;
//! assert_eq!(dev.zone_info(ZoneId(0))?.write_pointer, 128 * 1024);
//! let c = dev.submit(c.finished, &IoRequest::read(0, 8192))?;
//! assert!(c.latency().as_nanos() > 0);
//! # Ok::<(), conzone_types::DeviceError>(())
//! ```

// Unit tests assert freely; the `clippy::unwrap_used` deny (Cargo.toml
// `[lints]`) is meant for library code reachable from the simulator.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
mod breakdown;
mod buffer;
mod device;
mod gc;
mod heatmap;
mod invariants;
mod lifecycle;
mod power;
mod read;
mod scratch;
mod slc;
mod write;
mod zone;

pub use arbiter::{Arbiter, ArbiterKind, QueueFrontEnd, RoundRobinArbiter, WeightedArbiter};
pub use breakdown::TimeBreakdown;
pub use device::ConZone;
pub use heatmap::{BlockHeat, HeatmapSnapshot, ZoneHeat};
pub use invariants::{InvariantKind, InvariantViolation};

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;
