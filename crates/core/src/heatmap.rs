//! Per-zone / per-block state heatmap snapshots.
//!
//! GC behaviour is hard to debug from aggregate counters: you want to see
//! *which* zones hold staged SLC remainders, *which* blocks carry the
//! valid data a GC pass will have to migrate, and how wear spreads across
//! the SLC region. [`ConZone::heatmap_snapshot`] captures exactly that —
//! one row per zone (state machine + utilization) and one row per physical
//! block (cursor, valid slices, erase count as the wear column) — and the
//! CLI's `--heatmap` switch embeds it in the `--stats-json` report.

use conzone_types::{ChipId, ZoneId, ZoneState};

use crate::device::ConZone;

/// One zone's row in the heatmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneHeat {
    /// Zone index.
    pub zone: u64,
    /// Lifecycle state name (`empty` / `open` / `closed` / `full`).
    pub state: &'static str,
    /// Whether the zone is exposed as conventional (in-place writes).
    pub conventional: bool,
    /// Host-visible write pointer, in slices.
    pub wp_slices: u64,
    /// Durably placed slices (flushed canonically, staged or patched).
    pub flushed_slices: u64,
    /// Slices currently staged in the SLC secondary buffer.
    pub staged_slices: u64,
    /// Slices with a live mapping entry.
    pub mapped_slices: u64,
    /// `mapped_slices` over the zone size, in `[0, 1]`.
    // xtask-lint: allow(float-determinism) — derived report ratio; never read back by the sim
    pub utilization: f64,
}

/// One physical block's row in the heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeat {
    /// Chip holding the block.
    pub chip: u64,
    /// Block index within the chip.
    pub block: u64,
    /// Cell technology name (`slc` / `tlc` / `qlc`).
    pub cell: &'static str,
    /// Program cursor: slices written since the last erase.
    pub cursor: u64,
    /// Slices still valid (not superseded or invalidated).
    pub valid_slices: u64,
    /// Block capacity in slices.
    pub slices: u64,
    /// Erase count — the wear column (a placeholder until a calibrated
    /// wear model lands; raw erases are the paper's §I lifespan proxy).
    pub wear: u64,
}

/// A point-in-time device state snapshot for GC-behaviour debugging.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapSnapshot {
    /// One row per zone, in zone order.
    pub zones: Vec<ZoneHeat>,
    /// One row per physical block, chip-major.
    pub blocks: Vec<BlockHeat>,
    /// L2P cache pressure, in `[0, 1]`.
    // xtask-lint: allow(float-determinism) — derived report ratio; never read back by the sim
    pub l2p_occupancy: f64,
    /// Free superblocks remaining in the SLC region.
    pub slc_free_superblocks: u64,
    /// Used (GC-eligible) superblocks in the SLC region.
    pub slc_used_superblocks: u64,
}

fn state_name(s: ZoneState) -> &'static str {
    match s {
        ZoneState::Empty => "empty",
        ZoneState::Open => "open",
        ZoneState::Closed => "closed",
        ZoneState::Full => "full",
    }
}

fn cell_name(c: conzone_types::CellType) -> &'static str {
    match c {
        conzone_types::CellType::Slc => "slc",
        conzone_types::CellType::Tlc => "tlc",
        conzone_types::CellType::Qlc => "qlc",
    }
}

impl ConZone {
    /// Captures the current per-zone / per-block state heatmap.
    pub fn heatmap_snapshot(&self) -> HeatmapSnapshot {
        let zs = self.zone_slices();
        let zones = self
            .zones
            .iter()
            .enumerate()
            .map(|(i, z)| {
                let zone = ZoneId(i as u64);
                let mapped = self.table.zone_mapped_slices(zone);
                ZoneHeat {
                    zone: zone.raw(),
                    state: state_name(z.state),
                    conventional: self.is_conventional(zone),
                    wp_slices: z.wp_slices,
                    flushed_slices: z.flushed_slices,
                    staged_slices: z.staged.len() as u64,
                    mapped_slices: mapped,
                    utilization: if zs == 0 {
                        0.0
                    } else {
                        mapped as f64 / zs as f64
                    },
                }
            })
            .collect();

        let g = &self.cfg.geometry;
        let mut blocks = Vec::with_capacity(g.nchips() * g.blocks_per_chip);
        for chip in 0..g.nchips() {
            for block in 0..g.blocks_per_chip {
                let b = self.flash.block(ChipId(chip as u64), block);
                blocks.push(BlockHeat {
                    chip: chip as u64,
                    block: block as u64,
                    cell: cell_name(b.cell()),
                    cursor: b.cursor() as u64,
                    valid_slices: b.valid_count() as u64,
                    slices: b.slices() as u64,
                    wear: b.erase_count(),
                });
            }
        }

        HeatmapSnapshot {
            zones,
            blocks,
            l2p_occupancy: self.cache.occupancy(),
            slc_free_superblocks: self.slc.free.len() as u64,
            slc_used_superblocks: self.slc.used.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use conzone_types::{DeviceConfig, IoRequest, SimTime, StorageDevice};

    use crate::ConZone;

    #[test]
    fn snapshot_tracks_writes_and_wear() {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let snap = dev.heatmap_snapshot();
        assert_eq!(snap.zones.len(), dev.config().zone_count());
        assert!(snap.zones.iter().all(|z| z.state == "empty"));
        assert!(snap.blocks.iter().all(|b| b.cursor == 0 && b.wear == 0));
        assert_eq!(snap.l2p_occupancy, 0.0);

        // Fill one whole zone: its row goes full, its blocks gain data.
        let zone_bytes = dev.config().zone_size_bytes();
        let done = dev
            .submit(SimTime::ZERO, &IoRequest::write(0, zone_bytes))
            .expect("fill zone 0");
        let snap = dev.heatmap_snapshot();
        let z0 = &snap.zones[0];
        assert_eq!(z0.state, "full");
        assert_eq!(z0.wp_slices, z0.flushed_slices);
        assert!(z0.utilization > 0.99, "{}", z0.utilization);
        assert!(
            snap.blocks.iter().any(|b| b.valid_slices > 0),
            "programmed blocks must show valid data"
        );

        // A zone reset erases the reserved blocks: wear appears.
        use conzone_types::{ZoneId, ZonedDevice};
        dev.reset_zone(done.finished, ZoneId(0)).expect("reset");
        let snap = dev.heatmap_snapshot();
        assert_eq!(snap.zones[0].state, "empty");
        assert_eq!(snap.zones[0].mapped_slices, 0);
        assert!(
            snap.blocks.iter().any(|b| b.wear > 0),
            "reset must erase blocks"
        );
    }
}
