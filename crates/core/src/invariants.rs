//! Debug-mode structural invariant checker.
//!
//! The emulator's correctness rests on a handful of cross-structure
//! agreements — the L2P table, the flash validity bitmaps, the SLC owner
//! map and the per-zone write-pointer bookkeeping must all describe the
//! same device state. [`ConZone::check_invariants`] walks the full state
//! and returns every disagreement it finds; the `debug_assert_invariants`
//! hooks run it after every SLC garbage-collection pass and every
//! power-cycle remount in debug and test builds, and compile to nothing
//! in release builds (the checker is `O(capacity)` per call).
//!
//! The invariants, and the corruption each one catches:
//!
//! 1. **L2P ↔ flash bijection.** Every mapped logical page points at a
//!    distinct physical slice that the flash array marks valid, and the
//!    total number of valid slices equals the mapped-entry count. A
//!    duplicate PPA means two logical pages alias one slice (a botched
//!    relocate); an unmapped valid slice is leaked flash space (an
//!    invalidate forgotten on the overwrite path).
//! 2. **Zone write-pointer ordering.** Per zone, `staged.len() ≤
//!    flushed_slices ≤ wp_slices ≤ zone_slices`; the staged run is the
//!    contiguous tail of the durable prefix; any gap between `wp` and
//!    `flushed` is exactly the data sitting in the zone's volatile buffer.
//! 3. **SLC owner bijection.** The owner map covers exactly the valid
//!    slices of the SLC region, and every entry agrees with the mapping
//!    table. A dangling owner entry (pointing at an invalid slice) is the
//!    GC-migration bug class; a valid SLC slice missing from the owner map
//!    would be lost by zone reset and remount, which iterate the owner.
//! 4. **No dangling references into retired blocks.** A grown-bad block
//!    may legitimately hold live data until GC migrates it out, but an
//!    owner entry pointing at an *erased* slice of a retired block means a
//!    migration skipped the block and forgot the entry.
//! 5. **SLC free-list hygiene.** The free/used/active superblock lists
//!    partition the SLC region with no duplicates, and every free
//!    superblock is fully erased.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use conzone_types::{ChipId, Lpn, Ppa, ZoneId, ZoneState};

use crate::device::ConZone;

/// Which structural invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum InvariantKind {
    /// Two mapped logical pages share one physical slice.
    MappingDuplicatePpa,
    /// A mapped logical page points at a slice the flash marks invalid.
    MappingInvalidSlice,
    /// Valid-slice total disagrees with the mapped-entry count.
    MappingCountMismatch,
    /// A zone's write-pointer ordering or buffer linkage is inconsistent.
    ZoneAccounting,
    /// A zone's staged run is not the contiguous tail of its durable
    /// prefix, or a staged reference disagrees with the table/owner.
    StagedRun,
    /// An SLC owner entry points outside the SLC region.
    OwnerOutsideSlc,
    /// An SLC owner entry points at an invalid (erased or superseded)
    /// slice of a healthy block.
    OwnerDangling,
    /// An SLC owner entry disagrees with the mapping table.
    OwnerTableMismatch,
    /// A valid SLC slice has no owner entry (would be lost on remount).
    OwnerMissing,
    /// An owner entry references an erased slice of a retired block.
    RetiredReference,
    /// The SLC free/used/active lists do not partition the region, or a
    /// free superblock is not erased.
    SlcPartition,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::MappingDuplicatePpa => "mapping-duplicate-ppa",
            InvariantKind::MappingInvalidSlice => "mapping-invalid-slice",
            InvariantKind::MappingCountMismatch => "mapping-count-mismatch",
            InvariantKind::ZoneAccounting => "zone-accounting",
            InvariantKind::StagedRun => "staged-run",
            InvariantKind::OwnerOutsideSlc => "owner-outside-slc",
            InvariantKind::OwnerDangling => "owner-dangling",
            InvariantKind::OwnerTableMismatch => "owner-table-mismatch",
            InvariantKind::OwnerMissing => "owner-missing",
            InvariantKind::RetiredReference => "retired-reference",
            InvariantKind::SlcPartition => "slc-partition",
        };
        f.write_str(name)
    }
}

/// One structural disagreement found by [`ConZone::check_invariants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable description naming the offending addresses.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

fn violation(out: &mut Vec<InvariantViolation>, kind: InvariantKind, detail: String) {
    out.push(InvariantViolation { kind, detail });
}

// xtask-effect: cold — debug-build invariant checker: compiles out of release
// (cfg(debug_assertions)), and a violated device invariant must abort loudly
#[cfg(debug_assertions)]
#[track_caller]
fn panic_on_violations(violations: Vec<InvariantViolation>, context: &str) {
    if !violations.is_empty() {
        let list: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
        panic!(
            "device invariants violated {context}:\n  {}",
            list.join("\n  ")
        );
    }
}

impl ConZone {
    /// Walks the full device state and returns every structural invariant
    /// violation found (empty when the device is consistent).
    ///
    /// Always compiled — tests assert on the returned list directly — but
    /// only the `debug_assert_invariants` hooks call it automatically, and
    /// those are debug/test-only.
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        self.check_invariants_inner(true)
    }

    /// Like [`ConZone::check_invariants`], but restricted to the subset
    /// that holds *mid-request* — GC runs nested inside the write path,
    /// where a buffer may have drained before `flushed_slices` advanced
    /// and a superseded mapping may await its `table.set` to the fresh
    /// location. The L2P ↔ flash bijection and the buffer-linkage /
    /// staged-run-shape equalities are quiescent-only; the SLC owner,
    /// SLC partition and write-pointer ordering checks always apply.
    fn check_invariants_during_io(&self) -> Vec<InvariantViolation> {
        self.check_invariants_inner(false)
    }

    fn check_invariants_inner(&self, quiescent: bool) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        if quiescent {
            self.check_mapping_bijection(&mut out);
        }
        self.check_zone_accounting(&mut out, quiescent);
        self.check_slc_owner(&mut out);
        self.check_slc_partition(&mut out);
        out
    }

    /// Panics with the violation list if any invariant is broken.
    /// Compiled out entirely in release builds.
    #[cfg(debug_assertions)]
    #[track_caller]
    pub(crate) fn debug_assert_invariants(&self, context: &str) {
        panic_on_violations(self.check_invariants(), context);
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub(crate) fn debug_assert_invariants(&self, _context: &str) {}

    /// Mid-IO variant of [`ConZone::debug_assert_invariants`] for hooks
    /// that fire nested inside a host request (the GC step).
    // xtask-effect: cold — debug-build invariant checker: compiles out of
    // release (cfg(debug_assertions)), so its walker allocations never run in
    // the steady state the hot-path contract covers
    #[cfg(debug_assertions)]
    #[track_caller]
    pub(crate) fn debug_assert_invariants_during_io(&self, context: &str) {
        panic_on_violations(self.check_invariants_during_io(), context);
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    pub(crate) fn debug_assert_invariants_during_io(&self, _context: &str) {}

    /// Invariant 1: the mapping table is injective onto the valid slices
    /// of the flash array, and covers all of them.
    fn check_mapping_bijection(&self, out: &mut Vec<InvariantViolation>) {
        let mut seen: BTreeMap<Ppa, Lpn> = BTreeMap::new();
        let mut mapped = 0u64;
        for (lpn, entry) in self.table.iter_mapped() {
            mapped += 1;
            if let Some(prev) = seen.insert(entry.ppa, lpn) {
                violation(
                    out,
                    InvariantKind::MappingDuplicatePpa,
                    format!("{prev} and {lpn} both map to {}", entry.ppa),
                );
            }
            if !self.slice_valid(entry.ppa) {
                violation(
                    out,
                    InvariantKind::MappingInvalidSlice,
                    format!("{lpn} maps to invalid slice {}", entry.ppa),
                );
            }
        }
        let valid = self.total_valid_slices();
        if valid != mapped {
            violation(
                out,
                InvariantKind::MappingCountMismatch,
                format!("{valid} valid flash slices but {mapped} mapped entries"),
            );
        }
    }

    /// Invariant 2: per-zone write-pointer ordering, buffer linkage and
    /// staged-run contiguity. The buffer-linkage equality only holds
    /// between host requests (`quiescent`).
    fn check_zone_accounting(&self, out: &mut Vec<InvariantViolation>, quiescent: bool) {
        let zs = self.zone_slices();
        for (zidx, zone) in self.zones.iter().enumerate() {
            let wp = zone.wp_slices;
            let flushed = zone.flushed_slices;
            let staged = zone.staged.len() as u64;
            if !(flushed <= wp && wp <= zs) {
                violation(
                    out,
                    InvariantKind::ZoneAccounting,
                    format!(
                        "zone {zidx}: flushed {flushed} / wp {wp} \
                         violate flushed <= wp <= {zs}"
                    ),
                );
                continue;
            }
            // Mid-IO, freshly staged entries may precede the matching
            // `flushed_slices` update, so the run-shape checks are
            // quiescent-only.
            if quiescent && staged > flushed {
                violation(
                    out,
                    InvariantKind::StagedRun,
                    format!("zone {zidx}: {staged} staged slices exceed durable prefix {flushed}"),
                );
                continue;
            }
            // The gap between wp and the durable prefix is exactly the
            // data sitting in the zone's volatile buffer.
            if quiescent {
                let buf = &self.buffers[zidx % self.buffers.len()];
                let buffered = if buf.owner == Some(ZoneId(zidx as u64)) {
                    if !buf.is_empty() && buf.start_offset != flushed {
                        violation(
                            out,
                            InvariantKind::ZoneAccounting,
                            format!(
                                "zone {zidx}: buffer starts at {} but durable prefix is {flushed}",
                                buf.start_offset
                            ),
                        );
                    }
                    buf.slices
                } else {
                    0
                };
                if wp != flushed + buffered {
                    violation(
                        out,
                        InvariantKind::ZoneAccounting,
                        format!("zone {zidx}: wp {wp} != flushed {flushed} + buffered {buffered}"),
                    );
                }
            }
            if zone.state == ZoneState::Empty && wp != 0 {
                violation(
                    out,
                    InvariantKind::ZoneAccounting,
                    format!("zone {zidx}: Empty with wp {wp}"),
                );
            }
            // The staged run is the contiguous tail of the durable prefix,
            // and each reference agrees with the table and the owner map.
            let base = zidx as u64 * zs;
            let start = flushed.saturating_sub(staged);
            for (i, s) in zone.staged.iter().enumerate() {
                let expect_lpn = Lpn(base + start + i as u64);
                if quiescent && s.lpn != expect_lpn {
                    violation(
                        out,
                        InvariantKind::StagedRun,
                        format!(
                            "zone {zidx}: staged[{i}] holds {} but the contiguous run \
                             expects {expect_lpn}",
                            s.lpn
                        ),
                    );
                    continue;
                }
                match self.table.get(s.lpn) {
                    Some(e) if e.ppa == s.ppa => {}
                    Some(e) => violation(
                        out,
                        InvariantKind::StagedRun,
                        format!(
                            "zone {zidx}: staged {} at {} but the table maps it to {}",
                            s.lpn, s.ppa, e.ppa
                        ),
                    ),
                    None => violation(
                        out,
                        InvariantKind::StagedRun,
                        format!("zone {zidx}: staged {} at {} is unmapped", s.lpn, s.ppa),
                    ),
                }
                if self.slc.owner.get(&s.ppa) != Some(&s.lpn) {
                    violation(
                        out,
                        InvariantKind::StagedRun,
                        format!(
                            "zone {zidx}: staged {} at {} missing from the SLC owner map",
                            s.lpn, s.ppa
                        ),
                    );
                }
            }
        }
    }

    /// Invariants 3 and 4: the SLC owner map covers exactly the valid SLC
    /// slices, agrees with the mapping table, and never dangles into an
    /// erased slice of a retired block.
    fn check_slc_owner(&self, out: &mut Vec<InvariantViolation>) {
        let geometry = self.flash.geometry();
        for (ppa, lpn) in self.slc.owner.iter() {
            if !geometry.is_slc(ppa) {
                violation(
                    out,
                    InvariantKind::OwnerOutsideSlc,
                    format!("owner entry {ppa} -> {lpn} is outside the SLC region"),
                );
                continue;
            }
            if !self.slice_valid(ppa) {
                let parts = geometry.decode_ppa(ppa);
                if self.flash.is_block_retired(parts.chip, parts.block) {
                    violation(
                        out,
                        InvariantKind::RetiredReference,
                        format!(
                            "owner entry {ppa} -> {lpn} references an erased slice of \
                             retired block {} on chip {}",
                            parts.block, parts.chip
                        ),
                    );
                } else {
                    violation(
                        out,
                        InvariantKind::OwnerDangling,
                        format!("owner entry {ppa} -> {lpn} points at an invalid slice"),
                    );
                }
            }
            match self.table.get(lpn) {
                Some(e) if e.ppa == ppa => {}
                Some(e) => violation(
                    out,
                    InvariantKind::OwnerTableMismatch,
                    format!(
                        "owner says {lpn} lives at {ppa} but the table says {}",
                        e.ppa
                    ),
                ),
                None => violation(
                    out,
                    InvariantKind::OwnerTableMismatch,
                    format!("owner entry {ppa} -> {lpn} but {lpn} is unmapped"),
                ),
            }
        }
        // Reverse direction: every valid SLC slice must be owned, or zone
        // reset and remount (which iterate the owner map) would miss it.
        let slc_blocks = self.cfg.geometry.slc_blocks_per_chip;
        for chip in 0..self.cfg.geometry.nchips() {
            let chip = ChipId(chip as u64);
            for block in 0..slc_blocks {
                let base = self.flash.block_base(chip, block);
                for idx in self.flash.block(chip, block).iter_valid() {
                    let ppa = base.offset(idx as u64);
                    if !self.slc.owner.contains_key(&ppa) {
                        violation(
                            out,
                            InvariantKind::OwnerMissing,
                            format!("valid SLC slice {ppa} has no owner entry"),
                        );
                    }
                }
            }
        }
    }

    /// Invariant 5: the free/used/active lists partition the SLC region,
    /// and free superblocks are erased.
    fn check_slc_partition(&self, out: &mut Vec<InvariantViolation>) {
        let total = self.cfg.geometry.slc_superblocks() as u64;
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let all = self
            .slc
            .free
            .iter()
            .chain(self.slc.used.iter())
            .chain(self.slc.active.iter());
        for sb in all {
            if sb.raw() >= total {
                violation(
                    out,
                    InvariantKind::SlcPartition,
                    format!("superblock {sb} is outside the {total}-superblock SLC region"),
                );
            }
            if !seen.insert(sb.raw()) {
                violation(
                    out,
                    InvariantKind::SlcPartition,
                    format!("superblock {sb} appears on more than one SLC list"),
                );
            }
        }
        if seen.len() as u64 != total {
            violation(
                out,
                InvariantKind::SlcPartition,
                format!(
                    "SLC lists track {} superblocks but the region has {total}",
                    seen.len()
                ),
            );
        }
        for &sb in &self.slc.free {
            if !self.flash.superblock_erased(sb) {
                violation(
                    out,
                    InvariantKind::SlcPartition,
                    format!("free superblock {sb} is not erased"),
                );
            }
        }
    }

    /// Whether the flash array marks `ppa` as holding live data.
    fn slice_valid(&self, ppa: Ppa) -> bool {
        let parts = self.cfg.geometry.decode_ppa(ppa);
        let in_block = parts.page * self.cfg.geometry.slices_per_page() + parts.slice;
        self.flash.block(parts.chip, parts.block).is_valid(in_block)
    }

    /// Total valid slices across the whole array.
    fn total_valid_slices(&self) -> u64 {
        let mut total = 0u64;
        for chip in 0..self.cfg.geometry.nchips() {
            let chip = ChipId(chip as u64);
            for block in 0..self.cfg.geometry.blocks_per_chip {
                total += self.flash.block(chip, block).valid_count() as u64;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conzone_types::{DeviceConfig, IoRequest, SimTime, StorageDevice};

    use crate::device::ConZone;

    fn kinds(violations: &[InvariantViolation]) -> Vec<InvariantKind> {
        violations.iter().map(|v| v.kind).collect()
    }

    /// A device with both canonical zone data and SLC-staged slices: one
    /// full programming unit plus a 3-slice remainder, drained by a host
    /// flush (premature flush into the SLC secondary buffer).
    fn seeded() -> ConZone {
        let mut dev = ConZone::new(DeviceConfig::tiny_for_tests());
        let unit = dev.cfg.geometry.program_unit_bytes as u64;
        let t = dev
            .submit(SimTime::ZERO, &IoRequest::write(0, unit + 3 * 4096))
            .expect("seed write")
            .finished;
        dev.flush(t).expect("seed flush");
        dev
    }

    #[test]
    fn seeded_device_is_consistent() {
        let dev = seeded();
        assert!(dev.slc.owner.len() >= 3, "remainder staged in SLC");
        assert_eq!(dev.check_invariants(), Vec::new());
    }

    #[test]
    fn duplicate_ppa_is_detected() {
        let mut dev = seeded();
        let mapped: Vec<(Lpn, conzone_ftl::MapEntry)> = dev.table.iter_mapped().collect();
        let (_, first) = mapped[0];
        let (second_lpn, _) = mapped[1];
        dev.table.relocate(second_lpn, first.ppa);
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::MappingDuplicatePpa),
            "expected duplicate-ppa violation, got {v:?}"
        );
    }

    #[test]
    fn mapping_to_unwritten_slice_is_detected() {
        let mut dev = seeded();
        let (lpn, _) = dev.table.iter_mapped().next().expect("mapped entry");
        // Last normal block of chip 0 is untouched by the seed workload.
        let bogus = dev
            .flash
            .block_base(ChipId(0), dev.cfg.geometry.blocks_per_chip - 1);
        dev.table.relocate(lpn, bogus);
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::MappingInvalidSlice),
            "expected invalid-slice violation, got {v:?}"
        );
    }

    #[test]
    fn valid_slice_without_owner_is_detected() {
        let mut dev = seeded();
        let (ppa, _) = dev.slc.owner.iter().next().expect("slc-resident slice");
        dev.slc.owner.remove(&ppa);
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::OwnerMissing),
            "expected owner-missing violation, got {v:?}"
        );
    }

    #[test]
    fn dangling_owner_entry_is_detected() {
        let mut dev = seeded();
        // An SLC slice far past the write stream: in-region but unwritten.
        let dangling = dev
            .flash
            .block_base(ChipId(1), dev.cfg.geometry.slc_blocks_per_chip - 1)
            .offset(5);
        dev.slc.owner.insert(dangling, Lpn(0));
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::OwnerDangling),
            "expected owner-dangling violation, got {v:?}"
        );
    }

    #[test]
    fn owner_entry_outside_slc_is_detected() {
        let mut dev = seeded();
        let outside = dev
            .flash
            .block_base(ChipId(0), dev.cfg.geometry.blocks_per_chip - 1);
        dev.slc.owner.insert(outside, Lpn(0));
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::OwnerOutsideSlc),
            "expected owner-outside-slc violation, got {v:?}"
        );
    }

    #[test]
    fn write_pointer_corruption_is_detected() {
        let mut dev = seeded();
        dev.zones[0].wp_slices += 5;
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::ZoneAccounting),
            "expected zone-accounting violation, got {v:?}"
        );
    }

    #[test]
    fn staged_reference_corruption_is_detected() {
        let mut dev = seeded();
        let zidx = (0..dev.zones.len())
            .find(|&z| !dev.zones[z].staged.is_empty())
            .expect("seed leaves staged slices");
        dev.zones[zidx].staged[0].ppa = dev.zones[zidx].staged[0].ppa.offset(1000);
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::StagedRun),
            "expected staged-run violation, got {v:?}"
        );
    }

    #[test]
    fn slc_list_duplicate_is_detected() {
        let mut dev = seeded();
        let dup = dev.slc.free.front().copied().expect("free superblock");
        dev.slc.free.push_back(dup);
        let v = dev.check_invariants();
        assert!(
            kinds(&v).contains(&InvariantKind::SlcPartition),
            "expected slc-partition violation, got {v:?}"
        );
    }

    // Release builds compile the hook to a no-op, so the panic only
    // exists under debug_assertions — which is also the property under
    // test: zero release-mode cost.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "device invariants violated")]
    fn debug_hook_panics_on_corruption() {
        let mut dev = seeded();
        let (ppa, _) = dev.slc.owner.iter().next().expect("slc-resident slice");
        dev.slc.owner.remove(&ppa);
        dev.debug_assert_invariants("in a corruption test");
    }
}
