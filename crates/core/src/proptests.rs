//! Property-based test: the structural invariants stay green under random
//! workloads that exercise every path — sequential and conventional
//! writes, flushes, zone resets, SLC garbage collection, fault injection
//! and power cycles. Each operation sequence ends with a full
//! [`ConZone::check_invariants`] sweep; the in-path debug hooks fire
//! along the way via `debug_assert_invariants`.

use proptest::prelude::*;

use conzone_types::{
    DeviceConfig, DeviceError, FaultConfig, Geometry, IoRequest, PowerCycle, SimTime,
    StorageDevice, ZoneId, ZonedDevice, SLICE_BYTES,
};

use crate::ConZone;

#[derive(Debug, Clone)]
enum Op {
    /// Append `slices` at a sequential zone's write pointer.
    Write { zone: u8, slices: u8 },
    /// Overwrite `slices` at `offset` inside the conventional zone.
    Conventional { offset: u8, slices: u8 },
    /// Drain every write buffer.
    Flush,
    /// Reset a sequential zone.
    Reset { zone: u8 },
    /// Power-cut and immediately remount.
    PowerCycle,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => (any::<u8>(), 1u8..48).prop_map(|(zone, slices)| Op::Write { zone, slices }),
            2 => (any::<u8>(), 1u8..16)
                .prop_map(|(offset, slices)| Op::Conventional { offset, slices }),
            1 => Just(Op::Flush),
            1 => any::<u8>().prop_map(|zone| Op::Reset { zone }),
            1 => Just(Op::PowerCycle),
        ],
        1..60,
    )
}

fn device(faults: bool) -> ConZone {
    let mut b = DeviceConfig::builder(Geometry::tiny())
        .chunk_bytes(256 * 1024)
        .conventional_zones(1);
    if faults {
        b = b.fault(FaultConfig::with_rates(0.05, 0.02, 0.1));
    }
    ConZone::new(b.build().expect("proptest config"))
}

/// Applies one op, treating well-formed rejections (zone full, open-zone
/// limit, out of space) as no-ops: the property is that *accepted*
/// operations never corrupt structural state.
fn apply(dev: &mut ConZone, t: SimTime, op: &Op) -> Result<SimTime, DeviceError> {
    let zone_bytes = dev.config().zone_size_bytes();
    let zones = dev.zone_count() as u64;
    let r = match *op {
        Op::Write { zone, slices } => {
            // Sequential zones start after the conventional zone 0.
            let zone = 1 + (u64::from(zone) % (zones - 1));
            let wp = dev
                .zone_info(ZoneId(zone))
                .expect("zone info")
                .write_pointer;
            let len = (u64::from(slices) * SLICE_BYTES).min(zone_bytes - wp);
            if len == 0 {
                return Ok(t);
            }
            dev.submit(t, &IoRequest::write(zone * zone_bytes + wp, len))
                .map(|c| c.finished)
        }
        Op::Conventional { offset, slices } => {
            let zone_slices = zone_bytes / SLICE_BYTES;
            let offset = u64::from(offset) % zone_slices;
            let len = u64::from(slices).min(zone_slices - offset) * SLICE_BYTES;
            dev.submit(t, &IoRequest::write(offset * SLICE_BYTES, len))
                .map(|c| c.finished)
        }
        Op::Flush => dev.flush(t).map(|c| c.finished),
        Op::Reset { zone } => {
            let zone = 1 + (u64::from(zone) % (zones - 1));
            dev.reset_zone(t, ZoneId(zone)).map(|c| c.finished)
        }
        Op::PowerCycle => {
            dev.power_cut(t).expect("power cut");
            dev.remount(t).map(|r| r.finished)
        }
    };
    match r {
        Ok(finish) => Ok(finish),
        Err(
            DeviceError::ZoneFull { .. }
            | DeviceError::TooManyOpenZones { .. }
            | DeviceError::NoFreeSpace { .. }
            | DeviceError::NotWritePointer { .. }
            | DeviceError::ZoneBoundary { .. },
        ) => Ok(t),
        Err(e) => Err(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random workloads — with and without fault injection — leave the
    /// device structurally consistent after every operation sequence.
    #[test]
    fn invariants_hold_under_random_workload(ops in ops(), faults in any::<bool>()) {
        let mut dev = device(faults);
        let mut t = SimTime::ZERO;
        for op in &ops {
            match apply(&mut dev, t, op) {
                Ok(finish) => t = finish,
                Err(e) => prop_assert!(false, "op {op:?} failed: {e}"),
            }
        }
        let violations = dev.check_invariants();
        prop_assert!(
            violations.is_empty(),
            "violations after {} ops: {violations:?}",
            ops.len()
        );
    }
}
