//! SLC-region bookkeeping: superblock free/used lists and the write stream
//! used for premature flushes, zone-tail patches and GC destinations.

use std::collections::{BTreeMap, VecDeque};

use conzone_types::{Geometry, Lpn, Ppa, SuperblockId};

/// Allocation and occupancy state of the SLC secondary-buffer region.
///
/// The region consists of the first `slc_blocks_per_chip` superblocks of the
/// array. One superblock at a time is the *active* write destination; its
/// per-chip blocks fill via round-robin partial programming. Fully
/// programmed superblocks move to the used list until GC reclaims them.
#[derive(Debug)]
pub(crate) struct SlcRegion {
    /// Currently filling superblock.
    pub active: Option<SuperblockId>,
    /// Erased superblocks ready to become active.
    pub free: VecDeque<SuperblockId>,
    /// Fully programmed superblocks, eligible as GC victims.
    pub used: Vec<SuperblockId>,
    /// Reverse map of every live SLC slice to its logical page, needed by
    /// GC migration and zone reset invalidation. Ordered (`BTreeMap`, not
    /// `HashMap`): zone reset and remount iterate it, so its order is
    /// sim-visible and must be identical across seeded reruns.
    pub owner: BTreeMap<Ppa, Lpn>,
}

impl SlcRegion {
    pub(crate) fn new(geometry: &Geometry) -> SlcRegion {
        SlcRegion {
            active: None,
            free: (0..geometry.slc_superblocks() as u64)
                .map(SuperblockId)
                .collect(),
            used: Vec::new(),
            owner: BTreeMap::new(),
        }
    }

    /// Total superblocks in the region.
    #[cfg(test)]
    pub(crate) fn total(&self) -> usize {
        self.free.len() + self.used.len() + usize::from(self.active.is_some())
    }

    /// Retires the active superblock to the used list.
    pub(crate) fn retire_active(&mut self) {
        if let Some(sb) = self.active.take() {
            self.used.push(sb);
        }
    }

    /// Takes a free superblock as the new active one.
    pub(crate) fn activate_next(&mut self) -> Option<SuperblockId> {
        debug_assert!(self.active.is_none());
        let sb = self.free.pop_front()?;
        self.active = Some(sb);
        Some(sb)
    }

    /// Moves an erased victim back to the free list.
    pub(crate) fn reclaim(&mut self, sb: SuperblockId) {
        self.used.retain(|&s| s != sb);
        self.free.push_back(sb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let g = Geometry::tiny();
        let mut r = SlcRegion::new(&g);
        assert_eq!(r.total(), 4);
        assert_eq!(r.free.len(), 4);

        let sb = r.activate_next().unwrap();
        assert_eq!(sb, SuperblockId(0));
        assert_eq!(r.free.len(), 3);
        assert_eq!(r.total(), 4);

        r.retire_active();
        assert_eq!(r.used, vec![SuperblockId(0)]);

        r.reclaim(SuperblockId(0));
        assert!(r.used.is_empty());
        assert_eq!(r.free.len(), 4);
        assert_eq!(r.total(), 4);
    }
}
