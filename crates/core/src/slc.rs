//! SLC-region bookkeeping: superblock free/used lists, the reverse
//! slice-owner map, and the write stream used for premature flushes,
//! zone-tail patches and GC destinations.

use std::collections::{BTreeMap, VecDeque};

use conzone_types::{Geometry, Lpn, Ppa, SuperblockId};

/// Reverse map of every live SLC slice to its logical page.
///
/// Zone reset and remount *iterate* this map, so its order is
/// sim-visible and must be identical across seeded reruns. It used to be
/// a `BTreeMap<Ppa, Lpn>`, whose node allocations made the SLC program
/// path (tail patches run on every zone in steady state) allocate; the
/// replacement is a direct-mapped slot array over the SLC region.
///
/// Dense index: with `raw = ((chip * blocks_per_chip + block) *
/// pages_per_block + page) * slices_per_page + slice` lexicographic in
/// `(chip, block, page, slice)`, an SLC slice (`block <
/// slc_blocks_per_chip`) maps to `(chip * slc_blocks_per_chip + block) *
/// slices_per_block + in_block` — also lexicographic in the same tuple,
/// so ascending dense order is exactly ascending `Ppa` order and
/// iteration is bit-identical to the `BTreeMap` it replaced.
///
/// Addresses outside the SLC region (invariant-corruption tests insert
/// them on purpose) go to a `BTreeMap` overflow that is empty in normal
/// operation; iteration merges the two streams in `Ppa` order.
#[derive(Debug)]
pub(crate) struct SlcOwnerMap {
    /// Owner slots for the SLC region, indexed by dense slice index.
    slots: Vec<Option<Lpn>>,
    /// Live entries in `slots` (kept incrementally; `len()` is O(1)).
    dense_len: usize,
    /// Raw-address span of one chip: `blocks_per_chip * slices_per_block`.
    chip_span: u64,
    /// Slices per block (`in_block` span).
    block_span: u64,
    /// SLC blocks per chip.
    slc_blocks: u64,
    /// Entries outside the SLC region; normally empty.
    overflow: BTreeMap<Ppa, Lpn>,
}

impl SlcOwnerMap {
    fn new(geometry: &Geometry) -> SlcOwnerMap {
        let block_span = geometry.slices_per_block();
        let slc_blocks = geometry.slc_blocks_per_chip as u64;
        let slots = geometry.nchips() * geometry.slc_blocks_per_chip * block_span as usize;
        SlcOwnerMap {
            slots: vec![None; slots],
            dense_len: 0,
            chip_span: geometry.blocks_per_chip as u64 * block_span,
            block_span,
            slc_blocks,
            overflow: BTreeMap::new(),
        }
    }

    /// Dense slot index for an in-region address, `None` outside.
    #[inline]
    fn dense_index(&self, ppa: Ppa) -> Option<usize> {
        let raw = ppa.raw();
        let chip = raw / self.chip_span;
        let rem = raw % self.chip_span;
        let block = rem / self.block_span;
        let in_block = rem % self.block_span;
        if block < self.slc_blocks {
            Some(((chip * self.slc_blocks + block) * self.block_span + in_block) as usize)
        } else {
            None
        }
    }

    /// Inverse of [`SlcOwnerMap::dense_index`].
    #[inline]
    fn dense_ppa(&self, idx: usize) -> Ppa {
        let idx = idx as u64;
        let per_chip = self.slc_blocks * self.block_span;
        let chip = idx / per_chip;
        let rem = idx % per_chip;
        let block = rem / self.block_span;
        let in_block = rem % self.block_span;
        Ppa(chip * self.chip_span + block * self.block_span + in_block)
    }

    pub(crate) fn insert(&mut self, ppa: Ppa, lpn: Lpn) -> Option<Lpn> {
        match self.dense_index(ppa) {
            Some(i) => {
                let prev = self.slots[i].replace(lpn);
                if prev.is_none() {
                    self.dense_len += 1;
                }
                prev
            }
            None => self.overflow.insert(ppa, lpn),
        }
    }

    pub(crate) fn remove(&mut self, ppa: &Ppa) -> Option<Lpn> {
        match self.dense_index(*ppa) {
            Some(i) => {
                let prev = self.slots[i].take();
                if prev.is_some() {
                    self.dense_len -= 1;
                }
                prev
            }
            None => self.overflow.remove(ppa),
        }
    }

    pub(crate) fn get(&self, ppa: &Ppa) -> Option<&Lpn> {
        match self.dense_index(*ppa) {
            Some(i) => self.slots[i].as_ref(),
            None => self.overflow.get(ppa),
        }
    }

    pub(crate) fn contains_key(&self, ppa: &Ppa) -> bool {
        self.get(ppa).is_some()
    }

    pub(crate) fn len(&self) -> usize {
        self.dense_len + self.overflow.len()
    }

    /// Live entries in ascending `Ppa` order (the `BTreeMap` order the
    /// map replaced): the dense stream and the overflow stream merged.
    pub(crate) fn iter(&self) -> OwnerIter<'_> {
        OwnerIter {
            map: self,
            next_dense: 0,
            overflow: self.overflow.iter().peekable(),
        }
    }
}

/// Merged in-order iterator over [`SlcOwnerMap`]; yields pairs by value.
#[derive(Debug)]
pub(crate) struct OwnerIter<'a> {
    map: &'a SlcOwnerMap,
    next_dense: usize,
    overflow: std::iter::Peekable<std::collections::btree_map::Iter<'a, Ppa, Lpn>>,
}

impl Iterator for OwnerIter<'_> {
    type Item = (Ppa, Lpn);

    fn next(&mut self) -> Option<(Ppa, Lpn)> {
        while self.next_dense < self.map.slots.len() && self.map.slots[self.next_dense].is_none() {
            self.next_dense += 1;
        }
        let dense =
            (self.next_dense < self.map.slots.len()).then(|| self.map.dense_ppa(self.next_dense));
        match (dense, self.overflow.peek()) {
            (Some(dp), Some((&op, _))) if op < dp => {
                let (ppa, lpn) = self.overflow.next()?;
                Some((*ppa, *lpn))
            }
            (Some(dp), _) => {
                let lpn = self.map.slots[self.next_dense]?;
                self.next_dense += 1;
                Some((dp, lpn))
            }
            (None, Some(_)) => {
                let (ppa, lpn) = self.overflow.next()?;
                Some((*ppa, *lpn))
            }
            (None, None) => None,
        }
    }
}

/// Allocation and occupancy state of the SLC secondary-buffer region.
///
/// The region consists of the first `slc_blocks_per_chip` superblocks of the
/// array. One superblock at a time is the *active* write destination; its
/// per-chip blocks fill via round-robin partial programming. Fully
/// programmed superblocks move to the used list until GC reclaims them.
#[derive(Debug)]
pub(crate) struct SlcRegion {
    /// Currently filling superblock.
    pub active: Option<SuperblockId>,
    /// Erased superblocks ready to become active.
    pub free: VecDeque<SuperblockId>,
    /// Fully programmed superblocks, eligible as GC victims.
    pub used: Vec<SuperblockId>,
    /// Reverse map of every live SLC slice to its logical page, needed by
    /// GC migration and zone reset invalidation.
    pub owner: SlcOwnerMap,
}

impl SlcRegion {
    pub(crate) fn new(geometry: &Geometry) -> SlcRegion {
        SlcRegion {
            active: None,
            free: (0..geometry.slc_superblocks() as u64)
                .map(SuperblockId)
                .collect(),
            // Sized to the whole region: `retire_active` must not grow it
            // mid-workload (the steady-state zero-allocation contract).
            used: Vec::with_capacity(geometry.slc_superblocks()),
            owner: SlcOwnerMap::new(geometry),
        }
    }

    /// Total superblocks in the region.
    #[cfg(test)]
    pub(crate) fn total(&self) -> usize {
        self.free.len() + self.used.len() + usize::from(self.active.is_some())
    }

    /// Retires the active superblock to the used list.
    pub(crate) fn retire_active(&mut self) {
        if let Some(sb) = self.active.take() {
            self.used.push(sb);
        }
    }

    /// Takes a free superblock as the new active one.
    pub(crate) fn activate_next(&mut self) -> Option<SuperblockId> {
        debug_assert!(self.active.is_none());
        let sb = self.free.pop_front()?;
        self.active = Some(sb);
        Some(sb)
    }

    /// Moves an erased victim back to the free list.
    pub(crate) fn reclaim(&mut self, sb: SuperblockId) {
        self.used.retain(|&s| s != sb);
        self.free.push_back(sb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let g = Geometry::tiny();
        let mut r = SlcRegion::new(&g);
        assert_eq!(r.total(), 4);
        assert_eq!(r.free.len(), 4);

        let sb = r.activate_next().unwrap();
        assert_eq!(sb, SuperblockId(0));
        assert_eq!(r.free.len(), 3);
        assert_eq!(r.total(), 4);

        r.retire_active();
        assert_eq!(r.used, vec![SuperblockId(0)]);

        r.reclaim(SuperblockId(0));
        assert!(r.used.is_empty());
        assert_eq!(r.free.len(), 4);
        assert_eq!(r.total(), 4);
    }

    #[test]
    fn owner_map_matches_btreemap_semantics() {
        let g = Geometry::tiny();
        let mut dense = SlcOwnerMap::new(&g);
        let mut reference: BTreeMap<Ppa, Lpn> = BTreeMap::new();

        // In-region slices across chips and blocks, one out-of-region
        // address (the corruption-test case), interleaved with removals.
        let spb = g.slices_per_block();
        let chip_span = g.blocks_per_chip as u64 * spb;
        let in_region = [
            Ppa(0),
            Ppa(1),
            Ppa(spb),                 // chip 0, block 1
            Ppa(chip_span),           // chip 1, block 0
            Ppa(chip_span + spb + 3), // chip 1, block 1
        ];
        for (i, &ppa) in in_region.iter().enumerate() {
            assert_eq!(dense.insert(ppa, Lpn(i as u64)), None);
            reference.insert(ppa, Lpn(i as u64));
        }
        let outside = Ppa(g.slc_blocks_per_chip as u64 * spb); // block slc, chip 0
        dense.insert(outside, Lpn(99));
        reference.insert(outside, Lpn(99));

        assert_eq!(dense.len(), reference.len());
        assert!(dense.contains_key(&outside));
        assert_eq!(dense.get(&Ppa(spb)), Some(&Lpn(2)));

        // Update in place keeps the length.
        assert_eq!(dense.insert(Ppa(0), Lpn(7)), Some(Lpn(0)));
        reference.insert(Ppa(0), Lpn(7));
        assert_eq!(dense.len(), reference.len());

        // Iteration is ascending-Ppa, identical to the BTreeMap, with the
        // out-of-region entry merged at the right position.
        let got: Vec<(Ppa, Lpn)> = dense.iter().collect();
        let want: Vec<(Ppa, Lpn)> = reference.iter().map(|(p, l)| (*p, *l)).collect();
        assert_eq!(got, want);

        assert_eq!(dense.remove(&Ppa(spb)), Some(Lpn(2)));
        assert_eq!(dense.remove(&Ppa(spb)), None);
        reference.remove(&Ppa(spb));
        assert_eq!(dense.len(), reference.len());
        assert_eq!(dense.get(&Ppa(spb)), None);
    }
}
