//! The write path (paper §III-B, Fig. 3).
//!
//! Writes land in the owner zone's shared volatile buffer. A buffer flush
//! takes one of three paths:
//!
//! 1. data reaching a whole programming unit is programmed directly into
//!    the zone's reserved normal blocks at its canonical location (①);
//! 2. a premature flush (buffer conflict) partial-programs the sub-unit
//!    remainder into the SLC secondary buffer (②);
//! 3. when staged SLC data plus newly buffered data reach a programming
//!    unit, the staged slices are read back, invalidated and programmed
//!    together into the normal block (③).
//!
//! Zone tails beyond the backing superblock (the §III-E non-power-of-two
//! patch) are partial-programmed into *reserved* SLC slices that still
//! count as canonical for aggregation.

use conzone_flash::FlashError;
use conzone_types::{
    ChipId, DeviceError, DeviceEvent, FlushKind, Lpn, LpnRange, MapGranularity, SimTime, SpanKind,
    SuperblockId, ZoneId, ZoneState, SLICE_BYTES,
};

use crate::device::ConZone;
use crate::zone::StagedSlice;

/// Wraps a flash-layer failure (an FTL logic violation) into a device error.
// xtask-effect: cold — error conversion: only reached when a flash op already failed
pub(crate) fn internal(e: FlashError) -> DeviceError {
    DeviceError::Unsupported(format!("internal flash error: {e}"))
}

impl ConZone {
    /// Services one host write. Returns the completion time (before host
    /// overhead is added by the caller's caller — overhead is added here).
    // xtask-effect: hot_path
    pub(crate) fn write_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
        payload: Option<&[u8]>,
    ) -> Result<SimTime, DeviceError> {
        let _p = conzone_sim::profile::scope("write_range");
        let (zone_id, offset) = self.zone_and_offset(range)?;
        if offset + range.count > self.zone_slices() {
            return Err(DeviceError::ZoneBoundary { zone: zone_id });
        }
        if self.is_conventional(zone_id) {
            return self.conventional_write(now, zone_id, offset, range, payload);
        }
        let zidx = zone_id.raw() as usize;
        match self.zones[zidx].state {
            ZoneState::Full => return Err(DeviceError::ZoneFull { zone: zone_id }),
            // Closed zones reopen implicitly, like empty ones.
            ZoneState::Empty | ZoneState::Closed => {
                if self.open_zone_count() >= self.cfg.max_open_zones {
                    return Err(DeviceError::TooManyOpenZones {
                        limit: self.cfg.max_open_zones,
                    });
                }
            }
            ZoneState::Open => {}
        }
        let expected = self.zones[zidx].wp_slices;
        if offset != expected {
            return Err(DeviceError::NotWritePointer {
                zone: zone_id,
                expected: self.zone_start(zone_id).offset(expected),
                got: range.start,
            });
        }
        self.zones[zidx].state = ZoneState::Open;

        // Snapshot sub-activity attribution so write_path stays exclusive
        // of the combine / GC / log time accumulated inside the flushes.
        // The WritePath span mirrors the same exclusivity: the combine /
        // GC / log work nests as children, so its *self time* is exactly
        // this function's write_path charge.
        let sub_before = self.breakdown.combine_read + self.breakdown.gc + self.breakdown.l2p_log;
        self.spans.open(now, SpanKind::WritePath);

        let buf_idx = zone_id.raw() as usize % self.buffers.len();
        let mut t = now;

        // Conflicting zone-write-buffer mapping: evict the other zone's
        // data (prematurely, if it is less than a programming unit).
        let conflicting = match self.buffers[buf_idx].owner {
            Some(owner) => owner != zone_id && !self.buffers[buf_idx].is_empty(),
            None => false,
        };
        if conflicting {
            self.counters.buffer_conflicts += 1;
            self.probe
                .emit(t, DeviceEvent::BufferConflict { zone: zone_id });
            t = self.flush_buffer(t, buf_idx, true)?;
        }
        if self.buffers[buf_idx].owner != Some(zone_id) {
            self.buffers[buf_idx].release();
            self.buffers[buf_idx].adopt(zone_id, offset);
        }

        // Append, flushing full superpages as they accumulate.
        let mut remaining = range.count;
        let mut pay_off = 0usize;
        while remaining > 0 {
            let take = remaining.min(self.buffers[buf_idx].room());
            let chunk = payload.map(|p| &p[pay_off..pay_off + (take * SLICE_BYTES) as usize]);
            self.buffers[buf_idx].append(take, chunk);
            self.zones[zidx].wp_slices += take;
            pay_off += (take * SLICE_BYTES) as usize;
            remaining -= take;
            if self.buffers[buf_idx].is_full() {
                t = self.flush_buffer(t, buf_idx, false)?;
            }
        }

        // Zone completed: drain everything and seal it.
        if self.zones[zidx].wp_slices == self.zone_slices() {
            t = self.flush_buffer(t, buf_idx, true)?;
            self.buffers[buf_idx].release();
            self.zones[zidx].state = ZoneState::Full;
        }
        // Exclusive write-path attribution: the combine / GC / log time
        // accumulated inside the flushes is already charged elsewhere.
        let sub_delta =
            self.breakdown.combine_read + self.breakdown.gc + self.breakdown.l2p_log - sub_before;
        self.breakdown.write_path += (t - now) - (t - now).min(sub_delta);
        self.spans.close(t);
        Ok(t + self.cfg.host_overhead)
    }

    /// Services a write to a conventional zone (paper §III-E): in-place
    /// updates are allowed anywhere in the zone; data is page-mapped into
    /// the SLC region, superseding any previous version.
    fn conventional_write(
        &mut self,
        now: SimTime,
        zone_id: ZoneId,
        offset: u64,
        range: LpnRange,
        payload: Option<&[u8]>,
    ) -> Result<SimTime, DeviceError> {
        let zidx = zone_id.raw() as usize;
        self.zones[zidx].state = ZoneState::Open;
        // Supersede previous versions.
        for lpn in range.iter() {
            if let Some(entry) = self.table.get(lpn) {
                self.flash.invalidate(entry.ppa).map_err(internal)?;
                self.slc.owner.remove(&entry.ppa);
                self.cache.invalidate_page(lpn);
            }
        }
        let mut lpns = std::mem::take(&mut self.scratch.lpns);
        lpns.clear();
        lpns.extend(range.iter());
        let programmed = self.program_slc_batch(now, &lpns, payload, false, None);
        self.scratch.lpns = lpns;
        let mut t = programmed?;
        self.counters.conventional_updates += range.count;
        self.note_l2p_updates(range.count);
        t = self.maybe_flush_l2p_log(t);
        // The "write pointer" of a conventional zone reports the written
        // high-water mark for inspection only.
        let zone = &mut self.zones[zidx];
        zone.wp_slices = zone.wp_slices.max(offset + range.count);
        zone.flushed_slices = zone.wp_slices;
        Ok(t + self.cfg.host_overhead)
    }

    /// Services a zone append (NVMe ZNS): the device places the data at
    /// the zone's current write pointer and returns `(finish, assigned
    /// byte offset)`. Conventional zones reject appends (they have no
    /// write pointer).
    // xtask-effect: hot_path
    pub(crate) fn append_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
        payload: Option<&[u8]>,
    ) -> Result<(SimTime, u64), DeviceError> {
        let (zone_id, _) = self.zone_and_offset(range)?;
        if self.is_conventional(zone_id) {
            return Err(DeviceError::Unsupported(
                // xtask-lint: allow(hot-path-effects) — rejected-command error path, not steady state
                "zone append targets a conventional zone".to_string(),
            ));
        }
        let wp = self.zones[zone_id.raw() as usize].wp_slices;
        let assigned = (zone_id.raw() * self.zone_slices() + wp) * SLICE_BYTES;
        let landed = LpnRange::new(self.zone_start(zone_id).offset(wp), range.count);
        if wp + range.count > self.zone_slices() {
            return Err(DeviceError::ZoneBoundary { zone: zone_id });
        }
        let finished = self.write_range(now, landed, payload)?;
        Ok((finished, assigned))
    }

    /// Flushes a write buffer. With `drain`, any sub-unit remainder is
    /// premature-flushed to SLC and the buffer is released; otherwise the
    /// remainder stays buffered.
    pub(crate) fn flush_buffer(
        &mut self,
        now: SimTime,
        buf_idx: usize,
        drain: bool,
    ) -> Result<SimTime, DeviceError> {
        let _p = conzone_sim::profile::scope("flush_buffer");
        if self.buffers[buf_idx].is_empty() {
            if drain {
                self.buffers[buf_idx].release();
            }
            return Ok(now);
        }
        let zone_id = self.buffers[buf_idx].owner.ok_or_else(|| {
            // xtask-lint: allow(hot-path-effects) — error construction inside ok_or_else; never runs on the success path
            DeviceError::Internal(format!("non-empty write buffer {buf_idx} has no owner"))
        })?;
        let zidx = zone_id.raw() as usize;
        let zone_base = self.zone_start(zone_id);
        let unit = self.unit_slices();
        let backing = self.backing_slices();
        let sb = self.cfg.geometry.zone_superblock(zone_id);

        debug_assert_eq!(
            self.buffers[buf_idx].start_offset, self.zones[zidx].flushed_slices,
            "buffer must continue the zone's durable prefix"
        );
        let staged_len = self.zones[zidx].staged.len() as u64;
        let run_start = self.zones[zidx].staged_start();
        let run_end = self.buffers[buf_idx].end_offset();
        debug_assert_eq!(run_start % unit, 0, "staged run starts unit-aligned");

        let mut t = now;

        // ── Path ① / ③: full canonical units below the backing boundary ──
        let canon_end = run_end.min(backing);
        let full_end = if canon_end > run_start {
            run_start + ((canon_end - run_start) / unit) * unit
        } else {
            run_start
        };
        if full_end > run_start {
            let mut staged_data: Option<Vec<u8>> = None;
            if staged_len > 0 {
                // Path ③: read the staged fragments out of SLC and
                // invalidate them (striped blocks of Fig. 3).
                let mut ppas = std::mem::take(&mut self.scratch.ppas);
                ppas.clear();
                ppas.extend(self.zones[zidx].staged.iter().map(|s| s.ppa));
                let read_start = t;
                let out = self.flash.read_slices(t, &ppas).map_err(internal)?;
                t = out.finish;
                self.breakdown.combine_read += t.saturating_since(read_start);
                if t > read_start {
                    self.spans.open(read_start, SpanKind::CombineRead);
                    self.spans.close(t);
                }
                staged_data = out.data;
                for &ppa in &ppas {
                    self.flash.invalidate(ppa).map_err(internal)?;
                    self.slc.owner.remove(&ppa);
                }
                self.scratch.ppas = ppas;
                self.zones[zidx].staged.clear();
                self.counters.slc_combines += 1;
                self.probe.emit(
                    t,
                    DeviceEvent::SlcCombine {
                        zone: zone_id,
                        staged_slices: staged_len,
                    },
                );
            }
            let from_buffer = full_end - self.buffers[buf_idx].start_offset;
            let buf_data = self.buffers[buf_idx].drain_front(from_buffer);
            let payload: Option<Vec<u8>> = if self.cfg.data_backing {
                let mut v = staged_data.unwrap_or_default();
                v.extend_from_slice(&buf_data.unwrap_or_default());
                Some(v)
            } else {
                None
            };

            let nunits = (full_end - run_start) / unit;
            self.counters.full_flushes += nunits;
            self.probe.emit(
                t,
                DeviceEvent::BufferFlush {
                    zone: zone_id,
                    kind: FlushKind::Full,
                    slices: full_end - run_start,
                },
            );
            let mut finish = t;
            for u in 0..nunits {
                let off = run_start + u * unit;
                let first_ppa = self.cfg.geometry.superblock_slice(sb, off);
                let parts = self.cfg.geometry.decode_ppa(first_ppa);
                let data_slice = payload.as_ref().map(|p| {
                    &p[(u * unit * SLICE_BYTES) as usize..((u + 1) * unit * SLICE_BYTES) as usize]
                });
                match self
                    .flash
                    .program_unit(t, parts.chip, parts.block, data_slice)
                {
                    Ok(out) => {
                        debug_assert_eq!(
                            out.first, first_ppa,
                            "write pointer must match the reserved layout"
                        );
                        // Host-visible: the buffer frees once the transfer
                        // lands in the chip register; tPROG continues in
                        // the background.
                        finish = finish.max(out.buffer_free);
                        for i in 0..unit {
                            self.table
                                .set(zone_base.offset(off + i), first_ppa.offset(i), true);
                        }
                        self.note_bits(zone_base.offset(off), unit, MapGranularity::Page);
                        self.note_l2p_updates(unit);
                    }
                    Err(
                        e @ (FlashError::ProgramFailed { .. } | FlashError::BlockRetired { .. }),
                    ) => {
                        // The reserved slices are burned (the cursor still
                        // advanced, keeping the fixed layout intact); the
                        // unit's payload is re-issued into the SLC
                        // secondary buffer, which page-maps it outside the
                        // canonical layout.
                        if matches!(e, FlashError::ProgramFailed { .. }) {
                            self.counters.program_failures += 1;
                        }
                        let mut lpns = std::mem::take(&mut self.scratch.lpns);
                        lpns.clear();
                        lpns.extend((0..unit).map(|i| zone_base.offset(off + i)));
                        let redo = self.program_slc_batch(t, &lpns, data_slice, false, None);
                        self.scratch.lpns = lpns;
                        finish = finish.max(redo?);
                    }
                    Err(e) => return Err(internal(e)),
                }
            }
            t = finish;
            self.zones[zidx].flushed_slices = full_end;
            self.maybe_aggregate(zone_id, run_start, full_end);
            t = self.maybe_flush_l2p_log(t);
        }

        // ── §III-E: zone-tail patch into reserved SLC slices ──
        if run_end > backing && !self.buffers[buf_idx].is_empty() {
            let patch_start = self.buffers[buf_idx].start_offset;
            debug_assert!(
                patch_start >= backing,
                "canonical region fully flushed first"
            );
            let count = run_end - patch_start;
            let pay = self.buffers[buf_idx].drain_front(count);
            let mut lpns = std::mem::take(&mut self.scratch.lpns);
            lpns.clear();
            lpns.extend((patch_start..run_end).map(|o| zone_base.offset(o)));
            self.probe.emit(
                t,
                DeviceEvent::PatchSlice {
                    zone: zone_id,
                    slices: count,
                },
            );
            let programmed = self.program_slc_batch(t, &lpns, pay.as_deref(), true, None);
            self.scratch.lpns = lpns;
            t = programmed?;
            self.counters.patch_slices += count;
            self.zones[zidx].flushed_slices = run_end;
            self.maybe_aggregate(zone_id, patch_start, run_end);
        }

        // ── Path ②: premature flush of the sub-unit remainder ──
        if drain && !self.buffers[buf_idx].is_empty() {
            let start = self.buffers[buf_idx].start_offset;
            let count = self.buffers[buf_idx].slices;
            let pay = self.buffers[buf_idx].drain_front(count);
            let mut lpns = std::mem::take(&mut self.scratch.lpns);
            lpns.clear();
            lpns.extend((start..start + count).map(|o| zone_base.offset(o)));
            self.counters.premature_flushes += 1;
            self.probe.emit(
                t,
                DeviceEvent::BufferFlush {
                    zone: zone_id,
                    kind: FlushKind::Premature,
                    slices: count,
                },
            );
            let programmed = self.program_slc_batch(t, &lpns, pay.as_deref(), false, Some(zidx));
            self.scratch.lpns = lpns;
            t = programmed?;
            self.zones[zidx].flushed_slices = start + count;
        }

        if drain {
            self.buffers[buf_idx].release();
        }
        Ok(t)
    }

    /// Partial-programs `lpns` into the SLC write stream, striping across
    /// chips. Updates the mapping table (`canonical` flag as given), the
    /// SLC owner map, and — for premature flushes — the zone's staged list.
    pub(crate) fn program_slc_batch(
        &mut self,
        now: SimTime,
        lpns: &[Lpn],
        payload: Option<&[u8]>,
        canonical: bool,
        staged_zone: Option<usize>,
    ) -> Result<SimTime, DeviceError> {
        let _p = conzone_sim::profile::scope("program_slc_batch");
        let nchips = self.cfg.geometry.nchips();
        let spb = self.cfg.geometry.slices_per_block() as usize;
        let spp = self.cfg.geometry.slices_per_page();
        let mut t = now;
        let mut finish = t;
        let mut idx = 0usize;
        // Reused chip-order scratch; GC (reachable below) uses the
        // separate `gc_chip_order` buffer, so the two never alias.
        let mut order = std::mem::take(&mut self.scratch.chip_order);
        while idx < lpns.len() {
            let sb = match self.slc.active {
                Some(sb) => sb,
                None => {
                    if self.slc.free.len() <= self.cfg.slc_gc_threshold && !self.slc.used.is_empty()
                    {
                        t = self.run_slc_gc(t)?;
                        finish = finish.max(t);
                    }
                    // GC's own migration may already have opened a fresh
                    // superblock; reuse it instead of double-activating.
                    match self.slc.active {
                        Some(sb) => sb,
                        None => {
                            self.slc
                                .activate_next()
                                .ok_or_else(|| DeviceError::NoFreeSpace {
                                    at: t,
                                    // xtask-lint: allow(hot-path-effects) — device-full error path, not steady state
                                    what: "slc secondary buffer superblocks".to_string(),
                                })?
                        }
                    }
                }
            };
            // Place one page's worth per chip per round, preferring idle
            // chips so premature flushes never stall behind a long tPROG
            // on a die that happens to be programming TLC. Stable sort:
            // equally idle chips keep ascending order across reruns.
            order.clear();
            order.extend(0..nchips);
            order.sort_by_key(|&c| self.flash.chip_free_at(ChipId(c as u64)));
            let mut any = false;
            for &c in &order {
                if idx >= lpns.len() {
                    break;
                }
                let chip = ChipId(c as u64);
                let avail = spb - self.flash.block(chip, sb.raw() as usize).cursor();
                let n = spp.min(avail).min(lpns.len() - idx);
                if n == 0 {
                    continue;
                }
                let pay = payload
                    .map(|p| &p[idx * SLICE_BYTES as usize..(idx + n) * SLICE_BYTES as usize]);
                let out = match self.flash.program_slc(t, chip, sb.raw() as usize, n, pay) {
                    Ok(out) => out,
                    Err(FlashError::ProgramFailed { .. }) => {
                        // The claimed slices are burned; count the failure
                        // as progress (the block filled a little) and
                        // re-place the same slices on the next round.
                        self.counters.program_failures += 1;
                        any = true;
                        continue;
                    }
                    Err(FlashError::BlockRetired { .. }) => {
                        // This chip's block left the usable set: skip it.
                        continue;
                    }
                    Err(e) => return Err(internal(e)),
                };
                any = true;
                finish = finish.max(out.buffer_free);
                for i in 0..n {
                    let lpn = lpns[idx + i];
                    let ppa = out.first.offset(i as u64);
                    self.table.set(lpn, ppa, canonical);
                    self.slc.owner.insert(ppa, lpn);
                    if let Some(z) = staged_zone {
                        self.zones[z].staged.push(StagedSlice { lpn, ppa });
                    }
                }
                self.note_bits(lpns[idx], n as u64, MapGranularity::Page);
                self.note_l2p_updates(n as u64);
                idx += n;
            }
            if !any {
                // Active superblock exhausted on every chip.
                self.slc.retire_active();
            }
        }
        self.scratch.chip_order = order;
        let finish = self.maybe_flush_l2p_log(finish);
        Ok(finish)
    }

    /// Attempts chunk aggregation for every chunk completed in
    /// `[from, to)`, and zone aggregation when the zone is fully durable
    /// (paper §III-C ②, capped by `max_aggregation`).
    pub(crate) fn maybe_aggregate(&mut self, zone_id: ZoneId, from: u64, to: u64) {
        if self.cfg.max_aggregation == MapGranularity::Page {
            return;
        }
        let zone_base = self.zone_start(zone_id);
        let chunk = self.cfg.chunk_slices();
        let flushed = self.zones[zone_id.raw() as usize].flushed_slices;
        let pinned = conzone_ftl::pins_aggregates(self.cfg.search_strategy);
        let first = from / chunk;
        let last = (to - 1) / chunk;
        for c in first..=last {
            if (c + 1) * chunk <= flushed {
                let lpn = zone_base.offset(c * chunk);
                if self.table.try_aggregate_chunk(lpn) {
                    self.note_bits(zone_base.offset(c * chunk), chunk, MapGranularity::Chunk);
                    if pinned {
                        self.cache.insert(lpn, MapGranularity::Chunk, true);
                    }
                }
            }
        }
        if self.cfg.max_aggregation == MapGranularity::Zone
            && flushed == self.zone_slices()
            && self.table.try_aggregate_zone(zone_base)
        {
            self.note_bits(zone_base, self.zone_slices(), MapGranularity::Zone);
            if pinned {
                self.cache.insert(zone_base, MapGranularity::Zone, true);
            }
        }
    }

    /// The zone's reserved superblock (exposed for tests).
    pub fn zone_superblock(&self, zone: ZoneId) -> SuperblockId {
        self.cfg.geometry.zone_superblock(zone)
    }
}
