//! The erase path: composite garbage collection (paper §III-D).
//!
//! SLC superblocks get the full GC treatment — greedy victim selection by
//! valid-slice count, migration of live slices within the SLC region,
//! erase, and return to the free list. Zoned normal superblocks skip GC
//! entirely: a zone reset erases them directly and invalidates any zone
//! data still lingering in SLC.

use conzone_types::{
    ChipId, DeviceError, DeviceEvent, Lpn, Ppa, SimTime, SpanKind, SuperblockId, ZoneId,
    SLICE_BYTES,
};

use crate::device::ConZone;
use crate::write::internal;

impl ConZone {
    /// Runs one SLC garbage-collection pass: selects the victim with the
    /// fewest valid slices, migrates its live data within SLC, erases it
    /// and returns it to the free list. Returns when the pass completes.
    pub(crate) fn run_slc_gc(&mut self, now: SimTime) -> Result<SimTime, DeviceError> {
        let _p = conzone_sim::profile::scope("run_slc_gc");
        // Greedy victim by valid count; erase-count tie-break spreads wear
        // across the SLC region (it absorbs every premature flush, so it
        // wears fastest — the paper's lifespan concern, §I).
        let victim = self
            .slc
            .used
            .iter()
            .copied()
            .min_by_key(|&sb| {
                let wear: u64 = (0..self.cfg.geometry.nchips())
                    .map(|c| {
                        self.flash
                            .block(conzone_types::ChipId(c as u64), sb.raw() as usize)
                            .erase_count()
                    })
                    .sum();
                (self.flash.superblock_valid_slices(sb), wear, sb.raw())
            })
            .ok_or_else(|| DeviceError::NoFreeSpace {
                at: now,
                // xtask-lint: allow(hot-path-effects) — device-full error path, not steady state
                what: "no SLC superblock eligible for garbage collection".to_string(),
            })?;
        self.counters.gc_runs += 1;

        // GC runs inside the steady-state write path (live tail-patch
        // slices keep migrating), so it reuses scratch like the hot IO
        // paths instead of allocating per pass.
        let mut ppas = std::mem::take(&mut self.scratch.gc_ppas);
        ppas.clear();
        self.flash.superblock_valid_ppas_into(victim, &mut ppas);
        let live = ppas.len() as u64;
        self.probe
            .emit(now, DeviceEvent::GcBegin { valid_slices: live });
        let mut t = now;
        let mut outcome: Result<(), DeviceError> = Ok(());
        if !ppas.is_empty() {
            match self.flash.read_slices(t, &ppas).map_err(internal) {
                Ok(out) => match self.migrate_slc_slices(out.finish, &ppas, out.data.as_deref()) {
                    Ok(end) => {
                        t = end;
                        self.counters.gc_migrated_slices += live;
                    }
                    Err(e) => outcome = Err(e),
                },
                Err(e) => outcome = Err(e),
            }
        }
        self.scratch.gc_ppas = ppas;
        outcome?;
        let t_erase = self.flash.erase_superblock(t, victim);
        self.slc.reclaim(victim);
        self.breakdown.gc += t_erase.saturating_since(now);
        // Retroactive emission: the stall window is only known here, and
        // the early error returns above must not leave an open span.
        if t_erase > now {
            self.spans.open(now, SpanKind::GcStall);
            self.spans.close(t_erase);
        }
        self.probe.emit(
            t_erase,
            DeviceEvent::GcEnd {
                migrated_slices: live,
            },
        );
        self.debug_assert_invariants_during_io("after SLC garbage collection");
        Ok(t_erase)
    }

    /// Re-programs live SLC slices at fresh SLC locations, updating the
    /// mapping table in place (map bits preserved), the SLC owner map and
    /// any zone staged-list references.
    fn migrate_slc_slices(
        &mut self,
        now: SimTime,
        old_ppas: &[Ppa],
        data: Option<&[u8]>,
    ) -> Result<SimTime, DeviceError> {
        let mut lpns = std::mem::take(&mut self.scratch.gc_lpns);
        lpns.clear();
        for ppa in old_ppas {
            match self.slc.owner.get(ppa) {
                Some(&lpn) => lpns.push(lpn),
                None => {
                    self.scratch.gc_lpns = lpns;
                    // xtask-lint: allow(hot-path-effects) — error construction on the ownerless-slice path; never runs on the success path
                    return Err(DeviceError::Internal(format!(
                        "live SLC slice {ppa} has no owner"
                    )));
                }
            }
        }

        // Program into the SLC stream without recursive GC: the free-list
        // threshold guarantees a destination superblock is available.
        let nchips = self.cfg.geometry.nchips();
        let spb = self.cfg.geometry.slices_per_block() as usize;
        let spp = self.cfg.geometry.slices_per_page();
        let mut t = now;
        let mut finish = t;
        let mut idx = 0usize;
        let mut order = std::mem::take(&mut self.scratch.gc_chip_order);
        while idx < lpns.len() {
            let sb = match self.slc.active {
                Some(sb) => sb,
                None => match self.slc.activate_next() {
                    Some(sb) => sb,
                    None => {
                        self.scratch.gc_lpns = lpns;
                        self.scratch.gc_chip_order = order;
                        return Err(DeviceError::NoFreeSpace {
                            at: t,
                            // xtask-lint: allow(hot-path-effects) — device-full error path, not steady state
                            what: "no free SLC superblock for GC destination".to_string(),
                        });
                    }
                },
            };
            order.clear();
            order.extend(0..nchips);
            order.sort_by_key(|&c| self.flash.chip_free_at(ChipId(c as u64)));
            let mut any = false;
            for &c in &order {
                if idx >= lpns.len() {
                    break;
                }
                let chip = ChipId(c as u64);
                let avail = spb - self.flash.block(chip, sb.raw() as usize).cursor();
                let n = spp.min(avail).min(lpns.len() - idx);
                if n == 0 {
                    continue;
                }
                let pay =
                    data.map(|p| &p[idx * SLICE_BYTES as usize..(idx + n) * SLICE_BYTES as usize]);
                let out = match self.flash.program_slc(t, chip, sb.raw() as usize, n, pay) {
                    Ok(out) => out,
                    Err(conzone_flash::FlashError::ProgramFailed { .. }) => {
                        // Burned slices count as progress; retry the same
                        // live data on the next placement round.
                        self.counters.program_failures += 1;
                        any = true;
                        continue;
                    }
                    Err(conzone_flash::FlashError::BlockRetired { .. }) => continue,
                    Err(e) => return Err(internal(e)),
                };
                any = true;
                finish = finish.max(out.finish);
                for i in 0..n {
                    let lpn = lpns[idx + i];
                    let old = old_ppas[idx + i];
                    let new = out.first.offset(i as u64);
                    self.table.relocate(lpn, new);
                    self.slc.owner.remove(&old);
                    self.slc.owner.insert(new, lpn);
                    self.fix_staged_reference(lpn, new);
                }
                idx += n;
            }
            if !any {
                self.slc.retire_active();
            }
        }
        self.scratch.gc_lpns = lpns;
        self.scratch.gc_chip_order = order;
        t = finish;
        Ok(t)
    }

    /// Updates a zone's staged-slice record after GC moved the slice.
    fn fix_staged_reference(&mut self, lpn: Lpn, new_ppa: Ppa) {
        let zidx = (lpn.raw() / self.zone_slices()) as usize;
        if let Some(s) = self.zones[zidx].staged.iter_mut().find(|s| s.lpn == lpn) {
            s.ppa = new_ppa;
        }
    }

    /// Handles a zone reset (paper §III-D, E.2): releases the zone's
    /// buffer, invalidates its SLC-resident slices (staged remainders and
    /// §III-E patch slices), erases the reserved superblock and clears all
    /// mapping state.
    pub(crate) fn reset_zone_inner(
        &mut self,
        now: SimTime,
        zone_id: ZoneId,
    ) -> Result<SimTime, DeviceError> {
        let zidx = zone_id.raw() as usize;
        if zidx >= self.zones.len() {
            return Err(DeviceError::OutOfRange {
                offset: zone_id.raw() * self.cfg.zone_size_bytes(),
                capacity: self.cfg.capacity_bytes(),
            });
        }
        let zone_base = self.zone_start(zone_id);
        let zs = self.zone_slices();

        // Drop buffered data (host discards the zone's contents).
        let buf_idx = zone_id.raw() as usize % self.buffers.len();
        if self.buffers[buf_idx].owner == Some(zone_id) {
            self.buffers[buf_idx].release();
        }

        // Invalidate SLC-resident slices belonging to this zone.
        let doomed: Vec<Ppa> = self
            .slc
            .owner
            .iter()
            .filter(|(_, lpn)| lpn.raw() / zs == zone_id.raw())
            .map(|(ppa, _)| ppa)
            .collect();
        for ppa in doomed {
            self.flash.invalidate(ppa).map_err(internal)?;
            self.slc.owner.remove(&ppa);
        }
        self.zones[zidx].staged.clear();

        // Directly erase the reserved normal blocks.
        let sb = self.cfg.geometry.zone_superblock(zone_id);
        let mut t = now;
        if !self.flash.superblock_erased(sb) {
            t = self.flash.erase_superblock(now, sb);
            self.breakdown.erase += t.saturating_since(now);
            if t > now {
                self.spans.open(now, SpanKind::Erase);
                self.spans.close(t);
            }
        }

        self.table.unmap_zone(zone_id);
        self.cache.invalidate_zone(zone_base);
        self.note_bits(zone_base, zs, conzone_types::MapGranularity::Page);
        self.zones[zidx].reset();
        self.counters.zone_resets += 1;
        self.probe.emit(t, DeviceEvent::ZoneReset { zone: zone_id });
        self.debug_assert_invariants("after zone reset");
        Ok(t + self.cfg.host_overhead)
    }

    /// Superblocks currently on the SLC used (GC-eligible) list, for tests.
    pub fn slc_used_superblocks(&self) -> Vec<SuperblockId> {
        self.slc.used.clone()
    }
}
