//! Simulated-time attribution: where a workload's device time goes.
//!
//! Every host-visible wait is charged to the internal activity that caused
//! it, turning "this workload is slow" into "62 % of device time is
//! mapping fetches" — the kind of answer the paper builds ConZone to
//! provide (§I: "understand and efficiently improve the hardware design").

use conzone_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Cumulative host-visible time by internal activity.
///
/// All categories measure *request-blocking* simulated time, so overlapped
/// background work (tPROG behind `buffer_free`) does not appear here.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Mapping-table fetches on L2P cache misses (read path Ⅱ).
    pub mapping_fetch: SimDuration,
    /// Flash data reads for host reads (read path ③).
    pub data_read: SimDuration,
    /// Write-path waits: buffer transfers, premature flushes, combines.
    pub write_path: SimDuration,
    /// Reading staged fragments back out of SLC (combine path ③ of §III-B).
    pub combine_read: SimDuration,
    /// SLC garbage collection blocking a host request.
    pub gc: SimDuration,
    /// L2P persistence-log flushes (§III-E).
    pub l2p_log: SimDuration,
    /// Zone-reset erases.
    pub erase: SimDuration,
}

impl TimeBreakdown {
    /// Total attributed time.
    pub fn total(&self) -> SimDuration {
        self.mapping_fetch
            + self.data_read
            + self.write_path
            + self.combine_read
            + self.gc
            + self.l2p_log
            + self.erase
    }

    /// Every category with its stable name, in declaration order — the
    /// shape serializers and exporters should use so category names travel
    /// with the numbers.
    pub fn categories(&self) -> [(&'static str, SimDuration); 7] {
        [
            ("mapping_fetch", self.mapping_fetch),
            ("data_read", self.data_read),
            ("write_path", self.write_path),
            ("combine_read", self.combine_read),
            ("gc", self.gc),
            ("l2p_log", self.l2p_log),
            ("erase", self.erase),
        ]
    }

    /// Fraction of attributed time spent in `part`, in `[0, 1]`.
    pub fn share(&self, part: SimDuration) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            0.0
        } else {
            part.as_nanos() as f64 / total as f64
        }
    }
}

impl core::fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "mapping {:.1}% | data read {:.1}% | write {:.1}% | combine {:.1}% | \
             gc {:.1}% | l2p log {:.1}% | erase {:.1}% (total {})",
            self.share(self.mapping_fetch) * 100.0,
            self.share(self.data_read) * 100.0,
            self.share(self.write_path) * 100.0,
            self.share(self.combine_read) * 100.0,
            self.share(self.gc) * 100.0,
            self.share(self.l2p_log) * 100.0,
            self.share(self.erase) * 100.0,
            self.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let b = TimeBreakdown {
            mapping_fetch: SimDuration::from_micros(25),
            data_read: SimDuration::from_micros(50),
            write_path: SimDuration::from_micros(25),
            ..TimeBreakdown::default()
        };
        assert_eq!(b.total(), SimDuration::from_micros(100));
        assert!((b.share(b.data_read) - 0.5).abs() < 1e-9);
        assert_eq!(TimeBreakdown::default().share(SimDuration::ZERO), 0.0);
        assert!(b.to_string().contains("50.0%"));
    }

    #[test]
    fn categories_cover_every_field() {
        let b = TimeBreakdown {
            mapping_fetch: SimDuration::from_nanos(1),
            data_read: SimDuration::from_nanos(2),
            write_path: SimDuration::from_nanos(4),
            combine_read: SimDuration::from_nanos(8),
            gc: SimDuration::from_nanos(16),
            l2p_log: SimDuration::from_nanos(32),
            erase: SimDuration::from_nanos(64),
        };
        let cats = b.categories();
        let sum: u64 = cats.iter().map(|(_, d)| d.as_nanos()).sum();
        assert_eq!(sum, b.total().as_nanos(), "no field missing or doubled");
        let mut names: Vec<&str> = cats.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cats.len(), "category names are distinct");
    }
}
