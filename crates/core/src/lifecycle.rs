//! Explicit zone lifecycle commands: open, close and finish.
//!
//! Writes open zones implicitly; these commands complete the NVMe ZNS
//! state machine. *Close* is especially meaningful on a consumer device:
//! it flushes the zone's share of the limited write buffers (prematurely,
//! into SLC, if less than a programming unit accumulated) and releases
//! both the open-zone slot and the buffer — the host-side tool for
//! avoiding the Fig. 6(b) conflicts.

use conzone_types::{DeviceError, SimTime, ZoneId, ZoneState};

use crate::device::ConZone;

impl ConZone {
    fn checked_zone(&self, zone: ZoneId) -> Result<usize, DeviceError> {
        let idx = zone.raw() as usize;
        if idx >= self.zones.len() {
            return Err(DeviceError::OutOfRange {
                offset: zone.raw() * self.cfg.zone_size_bytes(),
                capacity: self.cfg.capacity_bytes(),
            });
        }
        Ok(idx)
    }

    /// Explicitly opens a zone (see [`ZonedDevice::open_zone`]).
    ///
    /// [`ZonedDevice::open_zone`]: conzone_types::ZonedDevice::open_zone
    pub(crate) fn open_zone_inner(
        &mut self,
        now: SimTime,
        zone: ZoneId,
    ) -> Result<SimTime, DeviceError> {
        let idx = self.checked_zone(zone)?;
        if self.is_conventional(zone) {
            // Conventional zones have no open/close lifecycle.
            return Ok(now + self.cfg.host_overhead);
        }
        match self.zones[idx].state {
            ZoneState::Open => {}
            ZoneState::Full => return Err(DeviceError::ZoneFull { zone }),
            ZoneState::Empty | ZoneState::Closed => {
                if self.open_zone_count() >= self.cfg.max_open_zones {
                    return Err(DeviceError::TooManyOpenZones {
                        limit: self.cfg.max_open_zones,
                    });
                }
                self.zones[idx].state = ZoneState::Open;
            }
        }
        Ok(now + self.cfg.host_overhead)
    }

    /// Explicitly closes a zone (see [`ZonedDevice::close_zone`]).
    ///
    /// [`ZonedDevice::close_zone`]: conzone_types::ZonedDevice::close_zone
    pub(crate) fn close_zone_inner(
        &mut self,
        now: SimTime,
        zone: ZoneId,
    ) -> Result<SimTime, DeviceError> {
        let idx = self.checked_zone(zone)?;
        if self.is_conventional(zone) || self.zones[idx].state != ZoneState::Open {
            return Err(DeviceError::ZoneNotWritable { zone });
        }
        // Release the zone's buffer: drain it (prematurely if sub-unit).
        let buf_idx = zone.raw() as usize % self.buffers.len();
        let mut t = now;
        if self.buffers[buf_idx].owner == Some(zone) {
            t = self.flush_buffer(t, buf_idx, true)?;
        }
        self.zones[idx].state = ZoneState::Closed;
        Ok(t + self.cfg.host_overhead)
    }

    /// Finishes a zone (see [`ZonedDevice::finish_zone`]).
    ///
    /// [`ZonedDevice::finish_zone`]: conzone_types::ZonedDevice::finish_zone
    pub(crate) fn finish_zone_inner(
        &mut self,
        now: SimTime,
        zone: ZoneId,
    ) -> Result<SimTime, DeviceError> {
        let idx = self.checked_zone(zone)?;
        if self.is_conventional(zone) {
            return Err(DeviceError::ZoneNotWritable { zone });
        }
        let mut t = now;
        if self.zones[idx].state != ZoneState::Full {
            let buf_idx = zone.raw() as usize % self.buffers.len();
            if self.buffers[buf_idx].owner == Some(zone) {
                t = self.flush_buffer(t, buf_idx, true)?;
            }
            self.zones[idx].state = ZoneState::Full;
        }
        Ok(t + self.cfg.host_overhead)
    }
}
