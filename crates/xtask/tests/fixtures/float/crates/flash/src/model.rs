//! Violating fixture: a float field in sim-visible state.

pub struct WearModel {
    pub factor: f64,
}
