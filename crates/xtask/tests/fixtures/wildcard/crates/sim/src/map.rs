//! Violating fixture: a wildcard arm absorbing DeviceEvent variants.

pub fn kind(e: &DeviceEvent) -> u32 {
    match e {
        DeviceEvent::HostRead { .. } => 0,
        _ => 99,
    }
}
