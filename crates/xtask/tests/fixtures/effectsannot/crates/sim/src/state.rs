//! Violating fixture: every malformed effect-marker shape.

// xtask-effect: cold
fn missing_reason() {}

// xtask-effect: warm — lukewarm is not a thing
fn unknown_kind() {}

// xtask-effect: hot_path
// xtask-effect: cold — cannot be both
fn conflicted() {}

// xtask-effect: hot_path

pub struct Dangling;
