//! Cross-crate callee: the trait method `core::submit` dispatches into,
//! reaching an allocation through a macro-generated function.

pub struct Table;

pub trait Stepper {
    fn step(&self);
}

impl Stepper for Table {
    fn step(&self) {
        refill()
    }
}

fn refill() {
    grow()
}

emit_helpers! {
    fn grow() {
        let _scratch = Vec::with_capacity(8);
    }
}
