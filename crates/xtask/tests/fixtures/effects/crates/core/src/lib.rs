//! Violating fixture: hot paths that reach forbidden effects through
//! cross-crate method dispatch, a closure callback and a macro-generated
//! function.

// xtask-effect: hot_path
pub fn submit(dev: &Table) {
    dev.step()
}

// xtask-effect: hot_path
pub fn drain(xs: &[u64]) {
    xs.iter().for_each(|x| audit(*x))
}

fn audit(x: u64) {
    panic!("audit failed on {x}")
}
