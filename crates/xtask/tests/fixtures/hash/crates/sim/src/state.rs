//! Violating fixture: a hash map holding sim-visible state.

use std::collections::HashMap;
