//! Violating fixture: `gc_runs` is missing from both exporter lists, and
//! the interval diff names a field that does not exist.

pub struct Counters {
    pub host_reads: u64,
    pub gc_runs: u64,
}

impl Counters {
    pub fn named_fields(&self) -> Vec<(&'static str, u64)> {
        fields!(host_reads)
    }

    pub fn since(&self, base: &Counters) -> Counters {
        diff!(host_reads, bogus)
    }
}
