//! Violating fixture: an unwrap in non-test library code of a core crate.

pub fn first(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}
