//! Violating fixture: a narrowing cast on a 64-bit sim quantity.

pub fn steps(raw: u64) -> u32 {
    raw as u32
}
