//! Clean fixture: a hot path whose forbidden effects are all discharged —
//! a reasoned cold marker, a `#[cold]` attribute, a leaf allow, and a
//! bounds-only indexing effect (inferred but deliberately unenforced).

// xtask-effect: hot_path
pub fn submit(xs: &[u64], i: usize) -> u64 {
    checkpoint(xs, i);
    refill();
    evict();
    xs[i]
}

// xtask-effect: cold — refill slow path: runs off the IO path
fn refill() {
    let _scratch = Vec::with_capacity(8);
}

#[cold]
fn evict() {
    panic!("cold by attribute")
}

fn checkpoint(xs: &[u64], i: usize) {
    // xtask-lint: allow(hot-path-effects) — documented bounds invariant
    assert!(i < xs.len(), "index in range");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_excluded_from_the_graph() {
        let v = vec![1u64];
        super::submit(&v, 0);
    }
}
