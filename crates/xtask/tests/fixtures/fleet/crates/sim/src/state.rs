//! Violating fixture: non-Send interior mutability, thread-local state
//! and a process-global in a sim-visible crate.
use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<u64> = RefCell::new(0);
}

static mut TOTAL: u64 = 0;
