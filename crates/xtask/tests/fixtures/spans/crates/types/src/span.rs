//! Violating fixture: `GcStall` is not handled by `breakdown_category`
//! (the name and index mappings cover it).

pub enum SpanKind {
    IoWrite,
    WritePath,
    GcStall,
}

impl SpanKind {
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::IoWrite => "io_write",
            SpanKind::WritePath => "write_path",
            SpanKind::GcStall => "gc_stall",
        }
    }

    pub fn index(&self) -> usize {
        match self {
            SpanKind::IoWrite => 0,
            SpanKind::WritePath => 1,
            SpanKind::GcStall => 2,
        }
    }

    pub fn breakdown_category(&self) -> Option<&'static str> {
        match self {
            SpanKind::IoWrite => None,
            SpanKind::WritePath => Some("write_path"),
            _ => None, // xtask-lint: allow(wildcard-match) — fixture exercises coverage, not exhaustiveness
        }
    }
}
