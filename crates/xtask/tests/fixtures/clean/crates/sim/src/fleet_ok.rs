//! Passing fixture for the semantic rules: Send-safe state, widening
//! and literal casts, floats only as conversion locals, and exhaustive
//! matches over protected enums.

use std::sync::atomic::AtomicU64;

pub struct Slots {
    pub total: AtomicU64,
    pub cells: Vec<u64>,
}

pub fn widen(x: u32) -> u64 {
    let tag = 0x1f as u8;
    u64::from(x) + x as u64 + u64::from(tag)
}

pub fn ratio(n: u64, d: u64) -> f64 {
    n as f64 / d.max(1) as f64
}

pub fn label(e: &DeviceEvent) -> &'static str {
    match e {
        DeviceEvent::HostRead { .. } => "host_read",
        DeviceEvent::HostWrite { .. } => "host_write",
        DeviceEvent::PowerCut => "power_cut",
    }
}
