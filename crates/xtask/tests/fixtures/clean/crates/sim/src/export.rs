//! Passing fixture: the exporter maps every `DeviceEvent` variant.

use crate::DeviceEvent;

pub fn event_args(e: &DeviceEvent) -> Vec<(&'static str, u64)> {
    match e {
        DeviceEvent::HostRead { bytes } => vec![("bytes", *bytes)],
        DeviceEvent::HostWrite { bytes } => vec![("bytes", *bytes)],
        DeviceEvent::PowerCut => vec![],
    }
}
