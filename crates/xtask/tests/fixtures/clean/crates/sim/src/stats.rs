//! Passing fixture: the stats boundary file is exempt from
//! float-determinism (floats are fine once results leave the core).

pub struct Summary {
    pub mean: f64,
}
