//! Passing fixture: deterministic collections, simulated time only, typed
//! errors, and one keyed-only hash map behind a reasoned allow directive.

use std::collections::BTreeMap;

// xtask-lint: allow(hash-collections) — keyed lookups only, never iterated
use std::collections::HashMap as KeyedMap;

pub struct State {
    pub ordered: BTreeMap<u64, u64>,
    pub keyed: KeyedMap<u64, u64>,
}

pub fn lookup(s: &State, k: u64) -> Result<u64, String> {
    s.ordered
        .get(&k)
        .or_else(|| s.keyed.get(&k))
        .copied()
        .ok_or_else(|| format!("no entry for {k}"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_test_code() {
        let v: Option<u64> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
