//! Passing fixture: every `SpanKind` variant is handled by all three
//! mappings.

pub enum SpanKind {
    IoWrite,
    WritePath,
}

impl SpanKind {
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::IoWrite => "io_write",
            SpanKind::WritePath => "write_path",
        }
    }

    pub fn index(&self) -> usize {
        match self {
            SpanKind::IoWrite => 0,
            SpanKind::WritePath => 1,
        }
    }

    pub fn breakdown_category(&self) -> Option<&'static str> {
        match self {
            SpanKind::IoWrite => None,
            SpanKind::WritePath => Some("write_path"),
        }
    }
}
