//! Passing fixture: every `DeviceEvent` variant is handled everywhere.

pub enum DeviceEvent {
    HostRead { bytes: u64 },
    HostWrite { bytes: u64 },
    PowerCut,
}

impl DeviceEvent {
    pub fn kind_name(&self) -> &'static str {
        match self {
            DeviceEvent::HostRead { .. } => "host_read",
            DeviceEvent::HostWrite { .. } => "host_write",
            DeviceEvent::PowerCut => "power_cut",
        }
    }

    pub fn kind_index(&self) -> usize {
        match self {
            DeviceEvent::HostRead { .. } => 0,
            DeviceEvent::HostWrite { .. } => 1,
            DeviceEvent::PowerCut => 2,
        }
    }
}
