//! Passing fixture: every `Counters` field appears in both exporter lists.

pub struct Counters {
    pub host_reads: u64,
    pub host_writes: u64,
    pub gc_runs: u64,
}

impl Counters {
    pub fn named_fields(&self) -> Vec<(&'static str, u64)> {
        fields!(host_reads, host_writes, gc_runs)
    }

    pub fn since(&self, base: &Counters) -> Counters {
        diff!(host_reads, host_writes, gc_runs)
    }
}
