//! Companion to the events fixture: the exporter itself is complete.

use crate::DeviceEvent;

pub fn event_args(e: &DeviceEvent) -> Vec<(&'static str, u64)> {
    match e {
        DeviceEvent::HostRead { bytes } => vec![("bytes", *bytes)],
        DeviceEvent::PowerCut => vec![],
    }
}
