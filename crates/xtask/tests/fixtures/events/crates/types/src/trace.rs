//! Violating fixture: `PowerCut` is not handled by `kind_name` (the other
//! two mappings cover it).

pub enum DeviceEvent {
    HostRead { bytes: u64 },
    PowerCut,
}

impl DeviceEvent {
    pub fn kind_name(&self) -> &'static str {
        match self {
            DeviceEvent::HostRead { .. } => "host_read",
            _ => "other", // xtask-lint: allow(wildcard-match) — fixture exercises coverage, not exhaustiveness
        }
    }

    pub fn kind_index(&self) -> usize {
        match self {
            DeviceEvent::HostRead { .. } => 0,
            DeviceEvent::PowerCut => 1,
        }
    }
}
