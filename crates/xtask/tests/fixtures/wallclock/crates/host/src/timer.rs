//! Violating fixture: ambient wall-clock time in simulator-reachable code.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
