//! Fixture for allow-directive hygiene: a nested anchor where the inner
//! directive wins (the outer one is reported unused), plus stale allows
//! naming an unknown rule, a coverage rule, and a rule nothing trips.

// xtask-lint: allow(hash-collections) — outer anchor: the inner one wins
pub mod inner {
    // xtask-lint: allow(hash-collections) — keyed only, never iterated
    pub use std::collections::HashMap;
}

// xtask-lint: allow(bogus-rule) — no such rule
// xtask-lint: allow(counter-coverage) — coverage cannot be suppressed
// xtask-lint: allow(wall-clock) — nothing here reads the clock
pub fn quiet() {}
