//! Fixture tests for the determinism-hygiene lint pass: one passing tree
//! plus one violating tree per rule under `tests/fixtures/`, asserting the
//! exact diagnostics, the binary's exit status, and — as a self-check —
//! that the live workspace itself scans clean.
//!
//! The fixture trees mimic the workspace layout (`crates/<name>/src/*.rs`)
//! because the scanner derives its per-crate rule policy from the path.
//! They live under `tests/`, which `collect_sources` skips, so the real
//! workspace lint never descends into them.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{lint_workspace, lint_workspace_report, Violation};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Vec<Violation> {
    lint_workspace(&fixture(name)).expect("fixture tree scans")
}

#[test]
fn clean_tree_has_no_violations() {
    let v = lint("clean");
    assert!(v.is_empty(), "clean fixture should pass every rule: {v:#?}");
}

#[test]
fn hash_collections_fires_with_exact_diagnostic() {
    let v = lint("hash");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/sim/src/state.rs"));
    assert_eq!(v[0].line, 3);
    assert_eq!(v[0].rule, "hash-collections");
    assert_eq!(
        v[0].message,
        "HashMap in sim-visible state: iteration order is randomized per \
         process and breaks seeded reruns; use BTreeMap/BTreeSet or an \
         insertion-ordered structure"
    );
    assert_eq!(
        v[0].to_string(),
        "crates/sim/src/state.rs:3: [hash-collections] HashMap in \
         sim-visible state: iteration order is randomized per process and \
         breaks seeded reruns; use BTreeMap/BTreeSet or an \
         insertion-ordered structure"
    );
}

#[test]
fn wall_clock_fires_with_exact_diagnostic() {
    let v = lint("wallclock");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/host/src/timer.rs"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[0].rule, "wall-clock");
    assert_eq!(
        v[0].message,
        "Instant::now is ambient nondeterminism: simulated time comes from \
         SimTime and randomness from seeded generators (bench and test \
         code are exempt)"
    );
}

#[test]
fn unwrap_expect_fires_with_exact_diagnostic() {
    let v = lint("unwrap");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/core/src/lib.rs"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[0].rule, "unwrap-expect");
    assert_eq!(
        v[0].message,
        ".unwrap() in non-test library code: return a typed error \
         (DeviceError/FlashError/JsonError) instead"
    );
}

#[test]
fn counter_coverage_fires_with_exact_diagnostics() {
    let v = lint("counters");
    assert_eq!(v.len(), 3, "{v:#?}");
    for violation in &v {
        assert_eq!(violation.file, Path::new("crates/types/src/counters.rs"));
        assert_eq!(violation.line, 4, "anchored at `pub struct Counters`");
        assert_eq!(violation.rule, "counter-coverage");
    }
    assert_eq!(
        v[0].message,
        "Counters field `gc_runs` is missing from the named_fields \
         exporter list: it would silently vanish from every exporter"
    );
    assert_eq!(
        v[1].message,
        "Counters field `gc_runs` is missing from the since() interval \
         diff: it would silently vanish from every exporter"
    );
    assert_eq!(
        v[2].message,
        "since() interval diff names `bogus`, which is not a Counters field"
    );
}

#[test]
fn event_coverage_fires_with_exact_diagnostic() {
    let v = lint("events");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/types/src/trace.rs"));
    assert_eq!(v[0].line, 10, "anchored at `fn kind_name`");
    assert_eq!(v[0].rule, "event-coverage");
    assert_eq!(
        v[0].message,
        "DeviceEvent::PowerCut is not handled by fn kind_name"
    );
}

#[test]
fn span_coverage_fires_with_exact_diagnostic() {
    let v = lint("spans");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/types/src/span.rs"));
    assert_eq!(v[0].line, 27, "anchored at `fn breakdown_category`");
    assert_eq!(v[0].rule, "span-coverage");
    assert_eq!(
        v[0].message,
        "SpanKind::GcStall is not handled by fn breakdown_category"
    );
}

#[test]
fn fleet_readiness_fires_with_exact_diagnostics() {
    let v = lint("fleet");
    assert_eq!(v.len(), 4, "{v:#?}");
    for violation in &v {
        assert_eq!(violation.file, Path::new("crates/sim/src/state.rs"));
        assert_eq!(violation.rule, "fleet-readiness");
    }
    assert_eq!(v[0].line, 3, "the RefCell import");
    assert_eq!(v[1].line, 5, "the thread_local! block");
    assert!(v[1].message.starts_with("thread_local! pins sim state"));
    assert_eq!(v[2].line, 6, "the RefCell inside the thread_local");
    assert_eq!(v[3].line, 9, "the static mut");
    assert!(v[3].message.starts_with("static mut is process-global"));
}

#[test]
fn float_determinism_fires_with_exact_diagnostic() {
    let v = lint("float");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/flash/src/model.rs"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[0].rule, "float-determinism");
    assert_eq!(
        v[0].message,
        "f64 field feeds sim-visible state: float rounding varies with \
         platform and optimization level and breaks bit-identical seeded \
         reruns; store fixed-point integers (ppm, nanoseconds) and \
         convert at the export boundary"
    );
}

#[test]
fn truncating_cast_fires_with_exact_diagnostic() {
    let v = lint("cast");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/sim/src/decode.rs"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[0].rule, "truncating-cast");
    assert_eq!(
        v[0].message,
        "`as u32` narrows a runtime value: sim times, counters and \
         addresses are u64, and a silent wrap skews results without \
         failing; use try_from with a typed error or an explicit \
         documented mask"
    );
}

#[test]
fn wildcard_match_fires_with_exact_diagnostic() {
    let v = lint("wildcard");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/sim/src/map.rs"));
    assert_eq!(v[0].line, 6, "anchored at the `_` arm");
    assert_eq!(v[0].rule, "wildcard-match");
    assert_eq!(
        v[0].message,
        "`_` arm on a DeviceEvent match: a newly added variant would be \
         silently absorbed here instead of failing the build; name every \
         variant so the coverage rules stay honest"
    );
}

/// The effect analysis is interprocedural and workspace-wide: the chain
/// below crosses a crate boundary through method-union dispatch
/// (`dev.step()` resolves to `ftl::Table::step`), passes through a
/// macro-generated function (`grow` lives inside `emit_helpers!`), and
/// a closure callback charges its body to the enclosing function
/// (`drain`'s `for_each` closure calls the panicking `audit`).
#[test]
fn hot_path_effects_fire_with_exact_diagnostics() {
    let v = lint("effects");
    assert_eq!(v.len(), 2, "{v:#?}");

    // Sorted by file: the panic chain anchors at `audit`'s panic! in
    // core, the allocation chain at `grow`'s Vec::with_capacity in ftl.
    assert_eq!(v[0].file, Path::new("crates/core/src/lib.rs"));
    assert_eq!(v[0].line, 16, "anchored at the leaf panic! site");
    assert_eq!(v[0].rule, "hot-path-effects");
    assert_eq!(
        v[0].message,
        "hot path `core::drain` (crates/core/src/lib.rs:11) panics: \
         core::drain → core::audit → panic — remove it, \
         allow(hot-path-effects) at this leaf site, or mark an \
         intermediate function `xtask-effect: cold`"
    );

    assert_eq!(v[1].file, Path::new("crates/ftl/src/lib.rs"));
    assert_eq!(v[1].line, 22, "anchored at the macro-generated leaf");
    assert_eq!(v[1].rule, "hot-path-effects");
    assert_eq!(
        v[1].message,
        "hot path `core::submit` (crates/core/src/lib.rs:6) allocates: \
         core::submit → ftl::Table::step → ftl::refill → ftl::grow → \
         Vec::with_capacity — remove it, allow(hot-path-effects) at this \
         leaf site, or mark an intermediate function `xtask-effect: cold`"
    );
}

/// Every escape hatch discharges its effect: a reasoned cold marker, a
/// `#[cold]` attribute, a leaf allow on an assert, `#[cfg(test)]`
/// exclusion — and a bounds-only hot path stays clean because BOUNDS is
/// inferred but deliberately unenforced.
#[test]
fn effects_clean_tree_discharges_every_effect() {
    let report = lint_workspace_report(&fixture("effectsclean"), None).expect("tree scans");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(
        report.warnings.is_empty(),
        "the leaf allow was consumed, so no unused-allow warning: {:#?}",
        report.warnings
    );

    // The report lists every annotated function with its inferred
    // transitive effects; cold cuts stop propagation into `submit`.
    let summary: Vec<(String, bool, bool, &[&str])> = report
        .functions
        .iter()
        .map(|f| (f.function.clone(), f.hot, f.cold, f.effects.as_slice()))
        .collect();
    assert_eq!(
        summary,
        [
            ("core::submit".to_string(), true, false, &["bounds"][..]),
            ("core::refill".to_string(), false, true, &["allocates"][..]),
            ("core::evict".to_string(), false, true, &["panics"][..]),
        ]
    );
}

#[test]
fn effect_annotation_fires_with_exact_diagnostics() {
    let v = lint("effectsannot");
    assert_eq!(v.len(), 4, "{v:#?}");
    for violation in &v {
        assert_eq!(violation.file, Path::new("crates/sim/src/state.rs"));
        assert_eq!(violation.rule, "effect-annotation");
    }
    assert_eq!(v[0].line, 3, "the reasonless cold marker");
    assert_eq!(
        v[0].message,
        "cold marker is missing its reason (write `// xtask-effect: cold — <reason>`)"
    );
    assert_eq!(v[1].line, 6, "the unknown marker kind");
    assert_eq!(
        v[1].message,
        "unknown effect marker `warm` (expected `hot_path` or `cold`)"
    );
    assert_eq!(v[2].line, 11, "anchored at the conflicted fn");
    assert_eq!(
        v[2].message,
        "`conflicted` is marked both hot_path and cold — a function \
         cannot be on the hot path and exempt from it"
    );
    assert_eq!(v[3].line, 13, "the dangling marker above a struct");
    assert_eq!(
        v[3].message,
        "effect marker is not attached to a function \
         (write it on the line of, or directly above, a `fn`)"
    );
}

/// Nested allow anchors: the directive closest to the offending line is
/// the one consumed, and every directive that suppressed nothing is
/// reported as a warning — without failing the lint.
#[test]
fn unused_and_stale_allows_are_reported_as_warnings() {
    let report = lint_workspace_report(&fixture("allows"), None).expect("tree scans");
    assert!(
        report.violations.is_empty(),
        "the inner allow suppresses the HashMap import: {:#?}",
        report.violations
    );
    let w = &report.warnings;
    assert_eq!(w.len(), 4, "{w:#?}");
    for warning in w {
        assert_eq!(warning.file, Path::new("crates/sim/src/state.rs"));
    }
    assert_eq!(
        w[0].to_string(),
        "crates/sim/src/state.rs:5: warning: unused allow(hash-collections): \
         nothing on this anchor trips the rule"
    );
    assert_eq!(w[1].message, "allow(bogus-rule) names an unknown rule");
    assert_eq!(
        w[2].message,
        "allow(counter-coverage) has no effect: coverage rules cannot be suppressed"
    );
    assert_eq!(
        w[3].message,
        "unused allow(wall-clock): nothing on this anchor trips the rule"
    );
}

/// `--changed` scopes the per-file rules to the given set but the
/// workspace-wide analyses (coverage, effect inference) always see the
/// whole tree; unused-allow warnings are suppressed on scoped runs.
#[test]
fn changed_scope_limits_per_file_rules_only() {
    // Per-file rule, file not in scope: nothing fires.
    let report = lint_workspace_report(&fixture("hash"), Some(&[])).expect("tree scans");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(report.warnings.is_empty(), "scoped runs skip allow hygiene");

    // Same tree, file in scope: the diagnostic is identical to a full run.
    let scoped = [PathBuf::from("crates/sim/src/state.rs")];
    let report = lint_workspace_report(&fixture("hash"), Some(&scoped)).expect("tree scans");
    assert_eq!(report.violations, lint("hash"));

    // Workspace rules ignore the scope: coverage drift and hot-path
    // effect violations fire even with an empty changed set.
    let report = lint_workspace_report(&fixture("counters"), Some(&[])).expect("tree scans");
    assert_eq!(report.violations.len(), 3, "{:#?}", report.violations);
    let report = lint_workspace_report(&fixture("effects"), Some(&[])).expect("tree scans");
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
}

/// The walker must never descend into `target/`, `vendor/`, hidden
/// directories, or through symlinks — a stale build artifact or a link
/// pointing outside the tree must not produce phantom violations.
#[test]
fn walker_skips_target_vendor_hidden_and_symlinks() {
    let tmp = std::env::temp_dir().join(format!("xtask-walker-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let decoys = [
        // The classic decoy: a crate-shaped tree inside target/.
        "target/src",
        "crates/sim/target/debug",
        "vendor/evil/src",
        ".hidden/src",
    ];
    for d in decoys {
        std::fs::create_dir_all(tmp.join(d)).expect("mkdir");
    }
    std::fs::create_dir_all(tmp.join("crates/sim/src")).expect("mkdir");
    let bad = "use std::collections::HashMap;\n";
    std::fs::write(tmp.join("target/src/bad.rs"), bad).expect("write");
    std::fs::write(tmp.join("crates/sim/target/debug/bad.rs"), bad).expect("write");
    std::fs::write(tmp.join("vendor/evil/src/bad.rs"), bad).expect("write");
    std::fs::write(tmp.join(".hidden/src/bad.rs"), bad).expect("write");
    std::fs::write(tmp.join("crates/sim/src/ok.rs"), "pub fn ok() {}\n").expect("write");
    #[cfg(unix)]
    {
        // A symlinked file and a symlinked directory cycle.
        std::os::unix::fs::symlink(
            tmp.join("vendor/evil/src/bad.rs"),
            tmp.join("crates/sim/src/linked.rs"),
        )
        .expect("symlink file");
        std::os::unix::fs::symlink(&tmp, tmp.join("crates/sim/src/loop")).expect("symlink dir");
    }
    let v = lint_workspace(&tmp).expect("decoy tree scans");
    std::fs::remove_dir_all(&tmp).expect("cleanup");
    assert!(v.is_empty(), "decoys leaked into the scan: {v:#?}");
}

fn run_binary(root: &Path, json: bool) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.args(["lint", "--root"]).arg(root);
    if json {
        cmd.arg("--json");
    }
    cmd.output().expect("xtask binary runs")
}

#[test]
fn binary_exit_status_reflects_findings() {
    let clean = run_binary(&fixture("clean"), false);
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(clean.status.success(), "clean fixture: {stdout}");
    assert!(stdout.contains("xtask lint: clean"), "{stdout}");

    // Warnings print but never affect the exit status.
    let allows = run_binary(&fixture("allows"), false);
    let stdout = String::from_utf8_lossy(&allows.stdout);
    assert!(
        allows.status.success(),
        "warnings are not failures: {stdout}"
    );
    assert!(
        stdout.contains("warning: unused allow(hash-collections)"),
        "{stdout}"
    );
    assert!(stdout.contains("xtask lint: clean"), "{stdout}");

    for tree in [
        "hash",
        "wallclock",
        "unwrap",
        "counters",
        "events",
        "spans",
        "fleet",
        "float",
        "cast",
        "wildcard",
        "effects",
        "effectsannot",
    ] {
        let out = run_binary(&fixture(tree), false);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            !out.status.success(),
            "fixture `{tree}` should exit nonzero: {stdout}"
        );
        assert!(stdout.contains("violation(s)"), "`{tree}`: {stdout}");
    }
}

/// `--json` output is a stable snapshot: fixed key order, one violation
/// object per line, trailing newline. CI consumers diff this textually.
#[test]
fn json_output_matches_snapshot() {
    let out = run_binary(&fixture("hash"), true);
    assert!(!out.status.success(), "violations still exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = concat!(
        "{\n",
        "  \"rules\": [\"hash-collections\", \"wall-clock\", \"unwrap-expect\", ",
        "\"counter-coverage\", \"event-coverage\", \"span-coverage\", ",
        "\"fleet-readiness\", \"float-determinism\", \"truncating-cast\", ",
        "\"wildcard-match\", \"hot-path-effects\", \"effect-annotation\"],\n",
        "  \"violation_count\": 1,\n",
        "  \"violations\": [\n",
        "    {\"file\": \"crates/sim/src/state.rs\", \"line\": 3, ",
        "\"rule\": \"hash-collections\", \"message\": \"HashMap in sim-visible state: ",
        "iteration order is randomized per process and breaks seeded reruns; ",
        "use BTreeMap/BTreeSet or an insertion-ordered structure\"}\n",
        "  ],\n",
        "  \"warning_count\": 0,\n",
        "  \"warnings\": [],\n",
        "  \"functions\": []\n",
        "}\n",
    );
    assert_eq!(stdout, expected);

    let clean = run_binary(&fixture("clean"), true);
    assert!(clean.status.success());
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("\"violation_count\": 0"), "{stdout}");
}

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/xtask")
        .to_path_buf();
    let v = lint_workspace(&root).expect("workspace scans");
    assert!(v.is_empty(), "live workspace has lint violations: {v:#?}");
}
