//! Fixture tests for the determinism-hygiene lint pass: one passing tree
//! plus one violating tree per rule under `tests/fixtures/`, asserting the
//! exact diagnostics, the binary's exit status, and — as a self-check —
//! that the live workspace itself scans clean.
//!
//! The fixture trees mimic the workspace layout (`crates/<name>/src/*.rs`)
//! because the scanner derives its per-crate rule policy from the path.
//! They live under `tests/`, which `collect_sources` skips, so the real
//! workspace lint never descends into them.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{lint_workspace, Violation};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> Vec<Violation> {
    lint_workspace(&fixture(name)).expect("fixture tree scans")
}

#[test]
fn clean_tree_has_no_violations() {
    let v = lint("clean");
    assert!(v.is_empty(), "clean fixture should pass every rule: {v:#?}");
}

#[test]
fn hash_collections_fires_with_exact_diagnostic() {
    let v = lint("hash");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/sim/src/state.rs"));
    assert_eq!(v[0].line, 3);
    assert_eq!(v[0].rule, "hash-collections");
    assert_eq!(
        v[0].message,
        "HashMap in sim-visible state: iteration order is randomized per \
         process and breaks seeded reruns; use BTreeMap/BTreeSet or an \
         insertion-ordered structure"
    );
    assert_eq!(
        v[0].to_string(),
        "crates/sim/src/state.rs:3: [hash-collections] HashMap in \
         sim-visible state: iteration order is randomized per process and \
         breaks seeded reruns; use BTreeMap/BTreeSet or an \
         insertion-ordered structure"
    );
}

#[test]
fn wall_clock_fires_with_exact_diagnostic() {
    let v = lint("wallclock");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/host/src/timer.rs"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[0].rule, "wall-clock");
    assert_eq!(
        v[0].message,
        "Instant::now is ambient nondeterminism: simulated time comes from \
         SimTime and randomness from seeded generators (bench and test \
         code are exempt)"
    );
}

#[test]
fn unwrap_expect_fires_with_exact_diagnostic() {
    let v = lint("unwrap");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/core/src/lib.rs"));
    assert_eq!(v[0].line, 4);
    assert_eq!(v[0].rule, "unwrap-expect");
    assert_eq!(
        v[0].message,
        ".unwrap() in non-test library code: return a typed error \
         (DeviceError/FlashError/JsonError) instead"
    );
}

#[test]
fn counter_coverage_fires_with_exact_diagnostics() {
    let v = lint("counters");
    assert_eq!(v.len(), 3, "{v:#?}");
    for violation in &v {
        assert_eq!(violation.file, Path::new("crates/types/src/counters.rs"));
        assert_eq!(violation.line, 4, "anchored at `pub struct Counters`");
        assert_eq!(violation.rule, "counter-coverage");
    }
    assert_eq!(
        v[0].message,
        "Counters field `gc_runs` is missing from the named_fields \
         exporter list: it would silently vanish from every exporter"
    );
    assert_eq!(
        v[1].message,
        "Counters field `gc_runs` is missing from the since() interval \
         diff: it would silently vanish from every exporter"
    );
    assert_eq!(
        v[2].message,
        "since() interval diff names `bogus`, which is not a Counters field"
    );
}

#[test]
fn event_coverage_fires_with_exact_diagnostic() {
    let v = lint("events");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/types/src/trace.rs"));
    assert_eq!(v[0].line, 10, "anchored at `fn kind_name`");
    assert_eq!(v[0].rule, "event-coverage");
    assert_eq!(
        v[0].message,
        "DeviceEvent::PowerCut is not handled by fn kind_name"
    );
}

#[test]
fn span_coverage_fires_with_exact_diagnostic() {
    let v = lint("spans");
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].file, Path::new("crates/types/src/span.rs"));
    assert_eq!(v[0].line, 27, "anchored at `fn breakdown_category`");
    assert_eq!(v[0].rule, "span-coverage");
    assert_eq!(
        v[0].message,
        "SpanKind::GcStall is not handled by fn breakdown_category"
    );
}

fn run_binary(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("xtask binary runs")
}

#[test]
fn binary_exit_status_reflects_findings() {
    let clean = run_binary(&fixture("clean"));
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(clean.status.success(), "clean fixture: {stdout}");
    assert!(stdout.contains("xtask lint: clean"), "{stdout}");

    for tree in ["hash", "wallclock", "unwrap", "counters", "events", "spans"] {
        let out = run_binary(&fixture(tree));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            !out.status.success(),
            "fixture `{tree}` should exit nonzero: {stdout}"
        );
        assert!(stdout.contains("violation(s)"), "`{tree}`: {stdout}");
    }
}

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/xtask")
        .to_path_buf();
    let v = lint_workspace(&root).expect("workspace scans");
    assert!(v.is_empty(), "live workspace has lint violations: {v:#?}");
}
