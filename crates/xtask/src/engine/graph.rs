//! The workspace call graph and the interprocedural effect fixpoint.
//!
//! Call sites resolve to function symbols with name-and-shape
//! heuristics (the reduced AST has no type inference):
//!
//! * `name(…)` → every free function called `name`.
//! * `Qual::name(…)` → methods of type/trait `Qual` (with `Self`
//!   resolved to the enclosing impl type); when `Qual` names no type,
//!   it is a module path and the call resolves like a free function.
//! * `self.name(…)` → methods of the enclosing impl type, falling back
//!   to name-union when the type declares none (trait default bodies).
//! * `recv.name(…)` → the union of every workspace method called
//!   `name` — deliberately conservative: a trait-object or generic
//!   receiver could be any of them.
//!
//! Unresolved calls (std and vendored functions) contribute nothing;
//! the builtin effect table in `effects` is how raw std calls earn
//! effects. Effects then propagate caller-ward to fixpoint: a function
//! has the union of its intrinsic effects and the effects of every
//! resolved callee, except that calls into `cold`-marked functions are
//! charged nothing — the reasoned escape hatch for slow paths.
//!
//! The `hot-path-effects` rule queries the fixpoint: every function
//! marked `hot_path` must be transitively free of `allocates`,
//! `panics`, `locks` and `wall_clock`. A violation names the shortest
//! call chain from the hot function to the *leaf* — the function whose
//! own tokens exhibit the effect — and anchors the diagnostic at the
//! leaf site, where a reasoned allow can discharge it.

use crate::engine::effects::EffectSet;
use crate::engine::symbols::{CallKind, FnSym};
use crate::Violation;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub(crate) struct Graph {
    pub fns: Vec<FnSym>,
    /// Resolved callee ids per function, deduped, cold callees removed.
    edges: Vec<Vec<usize>>,
}

/// Builds the graph, resolves every call site and runs the effect
/// fixpoint (results land in `fns[i].effects`).
pub(crate) fn build(mut fns: Vec<FnSym>) -> Graph {
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        match &f.self_ty {
            None => free.entry(&f.name).or_default().push(i),
            Some(ty) => {
                typed.entry((ty, &f.name)).or_default().push(i);
                by_name.entry(&f.name).or_default().push(i);
                // A trait-impl method is also reachable through the
                // trait: `T::m(&x)` and trait-object dispatch.
                if let Some(tr) = &f.trait_of {
                    typed.entry((tr, &f.name)).or_default().push(i);
                }
            }
        }
    }

    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(fns.len());
    for f in &fns {
        let mut out = BTreeSet::new();
        for call in &f.calls {
            let name = call.name.as_str();
            let targets: Vec<usize> = match &call.kind {
                CallKind::Bare => free.get(name).cloned().unwrap_or_default(),
                CallKind::Qualified(q) => {
                    let q: &str = match (q.as_str(), &f.self_ty) {
                        ("Self", Some(ty)) => ty,
                        (q, _) => q,
                    };
                    match typed.get(&(q, name)) {
                        Some(ids) => ids.clone(),
                        // No type called `q`: a module-qualified free
                        // function (`json::parse(…)`).
                        None => free.get(name).cloned().unwrap_or_default(),
                    }
                }
                CallKind::SelfMethod => {
                    match f.self_ty.as_deref().and_then(|ty| typed.get(&(ty, name))) {
                        Some(ids) => ids.clone(),
                        None => by_name.get(name).cloned().unwrap_or_default(),
                    }
                }
                CallKind::Method => by_name.get(name).cloned().unwrap_or_default(),
            };
            for t in targets {
                // Cold cuts propagation: the callee keeps its effects,
                // the caller is not charged for them.
                if !fns[t].cold {
                    out.insert(t);
                }
            }
        }
        edges.push(out.into_iter().collect());
    }

    // Effect fixpoint: monotone join over a finite lattice, so a naive
    // iterate-until-stable loop terminates (≤ bits × fns rounds).
    let mut effects: Vec<EffectSet> = fns
        .iter()
        .map(|f| {
            f.intrinsics
                .iter()
                .fold(EffectSet::EMPTY, |acc, s| acc.union(s.effect))
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut e = effects[i];
            for &j in &edges[i] {
                e = e.union(effects[j]);
            }
            if e != effects[i] {
                effects[i] = e;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (f, e) in fns.iter_mut().zip(&effects) {
        f.effects = *e;
    }

    Graph { fns, edges }
}

impl Graph {
    /// Enforces the hot-path contract, appending one violation per
    /// (hot function, forbidden effect), anchored at the leaf site.
    pub(crate) fn check_hot_paths(&self, out: &mut Vec<Violation>) {
        for (i, f) in self.fns.iter().enumerate() {
            if !f.hot {
                continue;
            }
            let bad = f.effects.intersect(EffectSet::FORBIDDEN_ON_HOT);
            for (bit, name) in EffectSet::BITS {
                if !bad.contains(bit) {
                    continue;
                }
                let Some((path, site_idx)) = self.shortest_chain(i, bit) else {
                    continue; // unreachable if the fixpoint is consistent
                };
                let leaf = &self.fns[*path.last().unwrap_or(&i)];
                let site = &leaf.intrinsics[site_idx];
                let chain = path
                    .iter()
                    .map(|&k| self.fns[k].qualified())
                    .collect::<Vec<_>>()
                    .join(" → ");
                out.push(Violation {
                    file: leaf.file.clone(),
                    line: site.line + 1,
                    rule: "hot-path-effects",
                    message: format!(
                        "hot path `{}` ({}:{}) {name}: {chain} → {} — \
                         remove it, allow(hot-path-effects) at this leaf \
                         site, or mark an intermediate function \
                         `xtask-effect: cold`",
                        f.qualified(),
                        f.file.display(),
                        f.line,
                        site.what,
                    ),
                });
            }
        }
    }

    /// BFS for the shortest call chain from `from` to a function whose
    /// *intrinsic* effects contain `bit`. Returns the node path and the
    /// index of the first matching intrinsic site in the leaf.
    /// Deterministic: neighbours expand in sorted-id order.
    fn shortest_chain(&self, from: usize, bit: EffectSet) -> Option<(Vec<usize>, usize)> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen = BTreeSet::from([from]);
        while let Some(n) = queue.pop_front() {
            if let Some(site_idx) = self.fns[n].intrinsics.iter().position(|s| s.effect == bit) {
                let mut path = vec![n];
                let mut cur = n;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some((path, site_idx));
            }
            for &j in &self.edges[n] {
                if seen.insert(j) {
                    parent.insert(j, n);
                    queue.push_back(j);
                }
            }
        }
        None
    }

    /// Inferred effects of every annotated (`hot_path` or `cold`)
    /// function, for the JSON report.
    pub(crate) fn annotated_effects(&self) -> Vec<&FnSym> {
        self.fns.iter().filter(|f| f.hot || f.cold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{symbols, FileCtx};
    use std::path::Path;

    fn graph(src: &str) -> Graph {
        let ctx = FileCtx::build(Path::new("crates/core/src/x.rs"), src).expect("parses");
        let mut syms = Vec::new();
        let mut issues = Vec::new();
        symbols::collect(&ctx, "core", &mut syms, &mut issues);
        assert!(issues.is_empty(), "{}", issues[0].message);
        build(syms)
    }

    fn effects_of(g: &Graph, name: &str) -> Vec<&'static str> {
        g.fns
            .iter()
            .find(|f| f.name == name)
            .expect(name)
            .effects
            .names()
    }

    #[test]
    fn effects_propagate_through_free_calls_to_fixpoint() {
        let g = graph(
            "fn a() { b() }\n\
             fn b() { c() }\n\
             fn c() { let v = Vec::with_capacity(8); }\n",
        );
        assert_eq!(effects_of(&g, "a"), ["allocates"]);
        assert_eq!(effects_of(&g, "b"), ["allocates"]);
    }

    #[test]
    fn recursion_converges() {
        let g = graph(
            "fn ping(n: u64) { if n > 0 { pong(n) } }\n\
             fn pong(n: u64) { ping(n - 1); x.unwrap(); }\n",
        );
        assert_eq!(effects_of(&g, "ping"), ["panics"]);
    }

    #[test]
    fn cold_cuts_propagation_but_keeps_its_own_effects() {
        let g = graph(
            "fn hot() { refill() }\n\
             // xtask-effect: cold — refill slow path\n\
             fn refill() { let v = Vec::with_capacity(8); }\n",
        );
        assert!(effects_of(&g, "hot").is_empty());
        assert_eq!(effects_of(&g, "refill"), ["allocates"]);
    }

    #[test]
    fn self_and_qualified_methods_resolve_to_the_impl_type() {
        let g = graph(
            "struct A; struct B;\n\
             impl A { fn go(&self) { self.step() } fn step(&self) {} }\n\
             impl B { fn step(&self) { panic!(\"b\") } }\n",
        );
        // A::go resolves self.step() to A::step, not B::step.
        assert!(effects_of(&g, "go").is_empty());
    }

    #[test]
    fn unknown_receiver_unions_all_methods_of_that_name() {
        let g = graph(
            "struct A; struct B;\n\
             impl A { fn step(&self) {} }\n\
             impl B { fn step(&self) { panic!(\"b\") } }\n\
             fn drive(x: &dyn Stepper) { x.step() }\n",
        );
        assert_eq!(effects_of(&g, "drive"), ["panics"]);
    }

    #[test]
    fn trait_qualified_calls_reach_every_impl() {
        let g = graph(
            "trait T { fn m(&self); }\n\
             struct S;\n\
             impl T for S { fn m(&self) { assert!(false) } }\n\
             fn f(x: &S) { T::m(x) }\n",
        );
        assert_eq!(effects_of(&g, "f"), ["panics"]);
    }

    #[test]
    fn hot_path_violation_reports_the_chain_and_leaf() {
        let src = "\
// xtask-effect: hot_path
fn hot() { mid() }
fn mid() { leaf() }
fn leaf() { m.lock(); }
";
        let g = graph(src);
        let mut out = Vec::new();
        g.check_hot_paths(&mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        let v = &out[0];
        assert_eq!(v.rule, "hot-path-effects");
        assert_eq!(v.line, 4, "anchored at the leaf lock() site");
        assert!(v.message.contains("core::hot → core::mid → core::leaf"));
        assert!(v.message.contains("locks"));
    }

    #[test]
    fn bounds_and_rng_are_inferred_but_not_enforced() {
        let g = graph(
            "// xtask-effect: hot_path\n\
             fn hot(xs: &[u64], i: usize) -> u64 { xs[i] }\n",
        );
        let mut out = Vec::new();
        g.check_hot_paths(&mut out);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(effects_of(&g, "hot"), ["bounds"]);
    }

    #[test]
    fn hot_fn_calling_hot_fn_is_fine_when_both_clean() {
        let g = graph(
            "// xtask-effect: hot_path\n\
             fn a() { b() }\n\
             // xtask-effect: hot_path\n\
             fn b() {}\n",
        );
        let mut out = Vec::new();
        g.check_hot_paths(&mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
