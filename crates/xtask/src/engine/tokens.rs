//! A flattened view of a file's token trees.
//!
//! Token-pattern rules (banned identifiers, `.unwrap()` chains, `as`
//! casts) want to look at small windows of *adjacent* tokens without
//! caring about tree structure, while still being able to tell where
//! groups open and close (an empty `()` after `.unwrap` is part of the
//! pattern; the token before a `.` receiver check may be a group close).
//! Flattening the tree once per file gives every rule an O(n) scan.

use proc_macro2::{Delimiter, Span, TokenStream, TokenTree};

/// One element of the flattened stream.
#[derive(Debug, Clone)]
pub(crate) enum FlatTok {
    /// A group's opening delimiter. `empty` is true when the group has
    /// no tokens inside (`()` as opposed to `(x)`).
    Open {
        delim: Delimiter,
        span: Span,
        empty: bool,
    },
    /// A group's closing delimiter (span covers the whole group).
    Close { span: Span },
    /// A leaf token: identifier, punct or literal.
    Tok(TokenTree),
}

impl FlatTok {
    /// The identifier text, if this is an ident leaf.
    pub(crate) fn ident(&self) -> Option<&str> {
        match self {
            FlatTok::Tok(t) => t.as_ident(),
            _ => None,
        }
    }

    /// The punct character, if this is a punct leaf.
    pub(crate) fn punct(&self) -> Option<char> {
        match self {
            FlatTok::Tok(t) => t.as_punct(),
            _ => None,
        }
    }

    /// The span of the element.
    pub(crate) fn span(&self) -> Span {
        match self {
            FlatTok::Open { span, .. } | FlatTok::Close { span, .. } => *span,
            FlatTok::Tok(t) => t.span(),
        }
    }

    /// 0-based line index of the element's start.
    pub(crate) fn line_idx(&self) -> usize {
        self.span().line.saturating_sub(1)
    }
}

/// Flattens a token stream depth-first, in source order.
pub(crate) fn flatten(stream: &TokenStream) -> Vec<FlatTok> {
    let mut out = Vec::new();
    fn walk(tokens: &[TokenTree], out: &mut Vec<FlatTok>) {
        for t in tokens {
            match t {
                TokenTree::Group(g) => {
                    out.push(FlatTok::Open {
                        delim: g.delimiter(),
                        span: g.span(),
                        empty: g.stream().is_empty(),
                    });
                    walk(g.stream().tokens(), out);
                    out.push(FlatTok::Close { span: g.span() });
                }
                other => out.push(FlatTok::Tok(other.clone())),
            }
        }
    }
    walk(stream.tokens(), &mut out);
    out
}

/// Whether `flat[i..]` starts with the given ident/punct pattern on a
/// single source line. Pattern entries are either an identifier text or
/// a one-character punct string.
pub(crate) fn matches_pattern(flat: &[FlatTok], i: usize, pattern: &[&str]) -> bool {
    let Some(first) = flat.get(i) else {
        return false;
    };
    let line = first.span().line;
    for (k, want) in pattern.iter().enumerate() {
        let Some(tok) = flat.get(i + k) else {
            return false;
        };
        if tok.span().line != line {
            return false;
        }
        let mut chars = want.chars();
        let (c, rest) = (chars.next(), chars.next());
        let is_punct_pat = rest.is_none() && c.is_some_and(|c| !c.is_alphanumeric() && c != '_');
        let ok = if is_punct_pat {
            tok.punct() == c
        } else {
            tok.ident() == Some(want)
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(src: &str) -> Vec<FlatTok> {
        let ts: TokenStream = src.parse().expect("lexes");
        flatten(&ts)
    }

    #[test]
    fn flattening_preserves_order_and_group_edges() {
        let f = flat("a.unwrap()");
        assert_eq!(f[0].ident(), Some("a"));
        assert_eq!(f[1].punct(), Some('.'));
        assert_eq!(f[2].ident(), Some("unwrap"));
        assert!(matches!(
            f[3],
            FlatTok::Open {
                delim: Delimiter::Parenthesis,
                empty: true,
                ..
            }
        ));
        assert!(matches!(f[4], FlatTok::Close { .. }));
    }

    #[test]
    fn pattern_matching_requires_one_line() {
        let f = flat("Instant::now()");
        assert!(matches_pattern(&f, 0, &["Instant", ":", ":", "now"]));
        let f = flat("Instant::\nnow()");
        assert!(!matches_pattern(&f, 0, &["Instant", ":", ":", "now"]));
    }

    #[test]
    fn pattern_matching_is_exact_on_idents() {
        let f = flat("rand::random_range()");
        assert!(!matches_pattern(&f, 0, &["rand", ":", ":", "random"]));
    }
}
