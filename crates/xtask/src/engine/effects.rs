//! The effect lattice and the builtin (intrinsic) effect table.
//!
//! Every function in the sim-visible crates gets an [`EffectSet`]: a
//! small powerset lattice joined over the call graph until fixpoint
//! (`graph` module). The *intrinsic* effects of a function are the ones
//! its own tokens exhibit — constructing an owned container, calling
//! `.unwrap()`, indexing a slice — recognised by the token patterns in
//! this module. Everything else a function does to earn an effect is
//! *transitive*: it calls something that has one.
//!
//! The hot-path contract (`hot-path-effects` rule) forbids `allocates`,
//! `panics`, `locks` and `wall_clock` on functions marked
//! `// xtask-effect: hot_path`. `bounds` (slice indexing, non-literal
//! divisors) and `rng` are inferred and reported in the JSON report but
//! not enforced: bounds checks are deterministic aborts already covered
//! by the debug invariant checker, and the emulator's only RNG is the
//! explicitly seeded generator the `wall-clock` rule polices.

use crate::engine::tokens::FlatTok;
use proc_macro2::Delimiter;

/// A set of effects — a tiny bitflag powerset lattice (`union` is join,
/// `EMPTY` is bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub(crate) struct EffectSet(u8);

impl EffectSet {
    pub(crate) const EMPTY: EffectSet = EffectSet(0);
    /// Constructs an owned container/string/box (fresh heap memory).
    pub(crate) const ALLOC: EffectSet = EffectSet(1);
    /// Explicit panic family: `unwrap`, `expect`, `panic!`, `assert!*`,
    /// `unreachable!`, `todo!`, `unimplemented!`.
    pub(crate) const PANIC: EffectSet = EffectSet(1 << 1);
    /// Implicit abort family: slice indexing and non-literal divisors.
    pub(crate) const BOUNDS: EffectSet = EffectSet(1 << 2);
    /// Takes a lock (`Mutex`, `RwLock`, `Condvar`, `.lock()`).
    pub(crate) const LOCK: EffectSet = EffectSet(1 << 3);
    /// Reads ambient time (`Instant::now`, `SystemTime`, `.elapsed()`).
    pub(crate) const WALL_CLOCK: EffectSet = EffectSet(1 << 4);
    /// Ambient randomness (`thread_rng`, `rand::random`).
    pub(crate) const RNG: EffectSet = EffectSet(1 << 5);

    /// The effects the hot-path contract forbids.
    pub(crate) const FORBIDDEN_ON_HOT: EffectSet =
        EffectSet(Self::ALLOC.0 | Self::PANIC.0 | Self::LOCK.0 | Self::WALL_CLOCK.0);

    /// All single-effect bits with their report names, in display order.
    pub(crate) const BITS: [(EffectSet, &'static str); 6] = [
        (Self::ALLOC, "allocates"),
        (Self::PANIC, "panics"),
        (Self::BOUNDS, "bounds"),
        (Self::LOCK, "locks"),
        (Self::WALL_CLOCK, "wall_clock"),
        (Self::RNG, "rng"),
    ];

    pub(crate) fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    pub(crate) fn contains(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    pub(crate) fn intersect(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & other.0)
    }

    pub(crate) fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Report names of every effect present, in stable order.
    pub(crate) fn names(self) -> Vec<&'static str> {
        Self::BITS
            .iter()
            .filter(|(bit, _)| self.contains(*bit))
            .map(|&(_, name)| name)
            .collect()
    }

    /// Display name of a single-effect set.
    #[cfg(test)]
    pub(crate) fn name(self) -> &'static str {
        Self::BITS
            .iter()
            .find(|(bit, _)| *bit == self)
            .map_or("?", |&(_, name)| name)
    }
}

/// One intrinsic effect occurrence inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct EffectSite {
    /// The single effect bit this site exhibits.
    pub effect: EffectSet,
    /// 0-based line of the offending token.
    pub line: usize,
    /// What the token pattern was (`Vec::new`, `.unwrap()`, `a[i]`, …).
    pub what: &'static str,
}

/// Identifier-path patterns (`A::b` or bare idents) and the effect they
/// exhibit. The seeded builtin table: how raw std calls earn effects.
const PATH_EFFECTS: [(&str, &[&str], EffectSet); 16] = [
    ("Vec::new", &["Vec", ":", ":", "new"], EffectSet::ALLOC),
    (
        "Vec::with_capacity",
        &["Vec", ":", ":", "with_capacity"],
        EffectSet::ALLOC,
    ),
    ("Box::new", &["Box", ":", ":", "new"], EffectSet::ALLOC),
    (
        "String::new",
        &["String", ":", ":", "new"],
        EffectSet::ALLOC,
    ),
    (
        "String::from",
        &["String", ":", ":", "from"],
        EffectSet::ALLOC,
    ),
    (
        "String::with_capacity",
        &["String", ":", ":", "with_capacity"],
        EffectSet::ALLOC,
    ),
    (
        "VecDeque::new",
        &["VecDeque", ":", ":", "new"],
        EffectSet::ALLOC,
    ),
    (
        "VecDeque::with_capacity",
        &["VecDeque", ":", ":", "with_capacity"],
        EffectSet::ALLOC,
    ),
    ("Rc::new", &["Rc", ":", ":", "new"], EffectSet::ALLOC),
    ("Arc::new", &["Arc", ":", ":", "new"], EffectSet::ALLOC),
    (
        "Instant::now",
        &["Instant", ":", ":", "now"],
        EffectSet::WALL_CLOCK,
    ),
    ("SystemTime", &["SystemTime"], EffectSet::WALL_CLOCK),
    ("thread_rng", &["thread_rng"], EffectSet::RNG),
    (
        "rand::random",
        &["rand", ":", ":", "random"],
        EffectSet::RNG,
    ),
    ("Mutex::new", &["Mutex", ":", ":", "new"], EffectSet::LOCK),
    ("RwLock::new", &["RwLock", ":", ":", "new"], EffectSet::LOCK),
];

/// Method-call patterns (`.name(` on any receiver) and their effect.
/// `.clone()` is deliberately absent: the token view cannot tell a
/// `Copy` clone from an owned duplication, and the owned-duplication
/// idioms (`to_vec`, `to_owned`, `to_string`) are all listed.
const METHOD_EFFECTS: [(&str, EffectSet); 8] = [
    ("collect", EffectSet::ALLOC),
    ("to_vec", EffectSet::ALLOC),
    ("to_owned", EffectSet::ALLOC),
    ("to_string", EffectSet::ALLOC),
    ("unwrap", EffectSet::PANIC),
    ("expect", EffectSet::PANIC),
    ("lock", EffectSet::LOCK),
    ("elapsed", EffectSet::WALL_CLOCK),
];

/// Macro invocations (`name!`) and their effect. `debug_assert!*` is
/// absent on purpose: it compiles out of release builds, and the hot
/// contract is about release steady state.
const MACRO_EFFECTS: [(&str, EffectSet); 10] = [
    ("vec", EffectSet::ALLOC),
    ("format", EffectSet::ALLOC),
    ("panic", EffectSet::PANIC),
    ("assert", EffectSet::PANIC),
    ("assert_eq", EffectSet::PANIC),
    ("assert_ne", EffectSet::PANIC),
    ("unreachable", EffectSet::PANIC),
    ("todo", EffectSet::PANIC),
    ("unimplemented", EffectSet::PANIC),
    ("matches", EffectSet::EMPTY), // common, listed to document the decision
];

/// Keyword identifiers that look like call/index receivers but are not.
pub(crate) fn is_keyword(ident: &str) -> bool {
    matches!(
        ident,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "fn"
            | "unsafe"
            | "where"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "const"
            | "static"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "mod"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "await"
            | "async"
    )
}

/// Scans a flattened token window (`flat[lo..hi]`, token indices) for
/// intrinsic effect sites, honouring `skip` *byte* ranges (the extents
/// of nested named functions, which are symbols of their own).
pub(crate) fn scan_intrinsics(
    flat: &[FlatTok],
    lo: usize,
    hi: usize,
    skip: &[(usize, usize)],
    out: &mut Vec<EffectSite>,
) {
    let skipped = |t: &FlatTok| {
        skip.iter()
            .any(|&(s, e)| t.span().lo >= s && t.span().lo < e)
    };
    let mut i = lo;
    while i < hi {
        if skipped(&flat[i]) {
            i += 1;
            continue;
        }
        // Path patterns (`Vec::new`, `SystemTime`, …).
        for (what, pattern, effect) in PATH_EFFECTS {
            if crate::engine::tokens::matches_pattern(flat, i, pattern) {
                // A path pattern must not be the tail of a longer path
                // (`my::Vec::new` still counts; `MyVec::new` must not,
                // which ident matching already guarantees).
                out.push(EffectSite {
                    effect,
                    line: flat[i].line_idx(),
                    what,
                });
            }
        }
        // Method patterns: `. name (`.
        if flat[i].punct() == Some('.') {
            if let (Some(name), Some(FlatTok::Open { delim, .. })) =
                (flat.get(i + 1).and_then(FlatTok::ident), flat.get(i + 2))
            {
                if *delim == Delimiter::Parenthesis {
                    for (what, effect) in METHOD_EFFECTS {
                        if name == what && !effect.is_empty() {
                            out.push(EffectSite {
                                effect,
                                line: flat[i + 1].line_idx(),
                                what,
                            });
                        }
                    }
                }
            }
        }
        // Macro patterns: `name !`.
        if let (Some(name), Some('!')) = (flat[i].ident(), flat.get(i + 1).and_then(FlatTok::punct))
        {
            for (what, effect) in MACRO_EFFECTS {
                if name == what && !effect.is_empty() {
                    out.push(EffectSite {
                        effect,
                        line: flat[i].line_idx(),
                        what,
                    });
                }
            }
        }
        // Indexing: a bracket group right after a value (ident or a
        // closed group), which is `xs[i]` / `foo()[i]` — a bounds
        // check. Attributes (`#[...]`), types (`: [u8; 4]`) and array
        // literals (`= [0; n]`) all have a non-value token before the
        // bracket.
        if let FlatTok::Open {
            delim: Delimiter::Bracket,
            empty: false,
            ..
        } = &flat[i]
        {
            let prev_is_value = i > lo
                && match &flat[i - 1] {
                    FlatTok::Tok(t) => t.as_ident().is_some_and(|id| !is_keyword(id)),
                    FlatTok::Close { .. } => true,
                    FlatTok::Open { .. } => false,
                };
            if prev_is_value {
                out.push(EffectSite {
                    effect: EffectSet::BOUNDS,
                    line: flat[i].line_idx(),
                    what: "slice indexing",
                });
            }
        }
        // Division/remainder by a non-literal divisor.
        if matches!(flat[i].punct(), Some('/') | Some('%')) {
            let prev_is_value = i > lo
                && match &flat[i - 1] {
                    FlatTok::Tok(t) => {
                        t.as_ident().is_some_and(|id| !is_keyword(id)) || t.as_literal().is_some()
                    }
                    FlatTok::Close { .. } => true,
                    FlatTok::Open { .. } => false,
                };
            let next_not_literal = match flat.get(i + 1) {
                Some(FlatTok::Tok(t)) => t.as_literal().is_none(),
                Some(FlatTok::Open { .. }) => true,
                _ => false,
            };
            if prev_is_value && next_not_literal {
                out.push(EffectSite {
                    effect: EffectSet::BOUNDS,
                    line: flat[i].line_idx(),
                    what: "division by a non-literal divisor",
                });
            }
        }
        i += 1;
    }
}

/// One parsed `// xtask-effect: <kind> — reason` marker occurrence.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct EffectMarker {
    /// The marker kind text (`hot_path`, `cold`, or something unknown).
    pub kind: String,
    /// Whether an alphanumeric reason follows the kind.
    pub has_reason: bool,
}

/// Extracts every effect marker on a single (comment-view) line.
pub(crate) fn effect_markers(comment_line: &str) -> Vec<EffectMarker> {
    const NEEDLE: &str = "xtask-effect:";
    let mut out = Vec::new();
    let mut rest = comment_line;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = rest[pos + NEEDLE.len()..].trim_start();
        let kind: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let tail = &after[kind.len()..];
        let reason = tail.trim_start_matches([' ', '\t', '—', '–', '-', ':']);
        let has_reason = reason.chars().any(|c| c.is_alphanumeric());
        if !kind.is_empty() {
            out.push(EffectMarker { kind, has_reason });
        }
        rest = &rest[pos + NEEDLE.len()..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tokens::flatten;
    use proc_macro2::TokenStream;

    fn sites(src: &str) -> Vec<(&'static str, &'static str)> {
        let ts: TokenStream = src.parse().expect("lexes");
        let flat = flatten(&ts);
        let mut out = Vec::new();
        scan_intrinsics(&flat, 0, flat.len(), &[], &mut out);
        out.iter().map(|s| (s.effect.name(), s.what)).collect()
    }

    #[test]
    fn lattice_join_and_names() {
        let e = EffectSet::ALLOC.union(EffectSet::LOCK);
        assert!(e.contains(EffectSet::ALLOC));
        assert!(!e.contains(EffectSet::PANIC));
        assert_eq!(e.names(), ["allocates", "locks"]);
        assert!(EffectSet::FORBIDDEN_ON_HOT.contains(EffectSet::WALL_CLOCK));
        assert!(!EffectSet::FORBIDDEN_ON_HOT.contains(EffectSet::BOUNDS));
    }

    #[test]
    fn builtin_paths_and_methods_are_recognised() {
        assert_eq!(
            sites("let v = Vec::with_capacity(4);"),
            [("allocates", "Vec::with_capacity")]
        );
        assert_eq!(sites("xs.iter().collect()"), [("allocates", "collect")]);
        assert_eq!(sites("m.lock()"), [("locks", "lock")]);
        assert_eq!(sites("x.unwrap()"), [("panics", "unwrap")]);
        assert_eq!(sites("panic!(\"boom\")"), [("panics", "panic")]);
        assert_eq!(
            sites("let t = Instant::now();"),
            [("wall_clock", "Instant::now")]
        );
    }

    #[test]
    fn indexing_is_bounds_but_types_and_attrs_are_not() {
        assert_eq!(sites("let x = xs[i];"), [("bounds", "slice indexing")]);
        assert_eq!(sites("foo()[0]"), [("bounds", "slice indexing")]);
        assert!(sites("let x: [u8; 4] = make();").is_empty());
        assert!(sites("#[inline] fn f() {}").is_empty());
        assert!(sites("let a = [0u8; 8];").is_empty());
    }

    #[test]
    fn division_by_literal_is_exempt() {
        assert!(sites("let x = a / 2;").is_empty());
        assert_eq!(
            sites("let x = a % n;"),
            [("bounds", "division by a non-literal divisor")]
        );
        assert_eq!(
            sites("let x = a / b.len();"),
            [("bounds", "division by a non-literal divisor")]
        );
    }

    #[test]
    fn method_names_without_call_parens_do_not_match() {
        // A field named `lock` or a path segment is not a lock call.
        assert!(sites("let l = self.lock;").is_empty());
        assert!(sites("use std::sync::atomic;").is_empty());
    }

    #[test]
    fn effect_marker_parsing() {
        let m = effect_markers("// xtask-effect: hot_path");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].kind, "hot_path");
        assert!(!m[0].has_reason);
        let m = effect_markers("// xtask-effect: cold — GC refill slow path");
        assert_eq!(m[0].kind, "cold");
        assert!(m[0].has_reason);
        assert!(effect_markers("// nothing here").is_empty());
    }
}
