//! `wall-clock`: no ambient time or randomness outside bench/test code.
//!
//! Simulated time comes from `SimTime`; randomness from explicitly
//! seeded generators. One diagnostic per line per pattern, like the
//! previous engine.

use std::collections::BTreeSet;

use crate::engine::tokens::matches_pattern;
use crate::engine::FileCtx;
use crate::Violation;

/// (display text, token pattern) per banned source of nondeterminism.
const BANNED: [(&str, &[&str]); 4] = [
    ("Instant::now", &["Instant", ":", ":", "now"]),
    ("SystemTime", &["SystemTime"]),
    ("thread_rng", &["thread_rng"]),
    ("rand::random", &["rand", ":", ":", "random"]),
];

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
    for i in 0..ctx.flat.len() {
        for (pat, toks) in BANNED {
            if !matches_pattern(&ctx.flat, i, toks) {
                continue;
            }
            let idx = ctx.flat[i].line_idx();
            if ctx.in_test(idx) || !seen.insert((idx, pat)) {
                continue;
            }
            ctx.push(
                out,
                idx,
                "wall-clock",
                format!(
                    "{pat} is ambient nondeterminism: simulated time \
                     comes from SimTime and randomness from seeded \
                     generators (bench and test code are exempt)"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn each_pattern_is_flagged_once_per_line() {
        let src = "fn f() { let a = Instant::now(); let b = Instant::now(); }\n\
                   fn g() { let r = rand::random(); }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/host/src/x.rs"),
            src,
            policy_for("host"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.starts_with("Instant::now"));
        assert!(out[1].message.starts_with("rand::random"));
    }

    #[test]
    fn prefixed_idents_do_not_match() {
        let src = "fn f() { let x = MyInstant::now_ish(); let y = thread_rng_seed; }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/host/src/x.rs"),
            src,
            policy_for("host"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }
}
