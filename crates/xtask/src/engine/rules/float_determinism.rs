//! `float-determinism`: no `f32`/`f64` in sim-visible state or
//! signatures. Float rounding depends on evaluation order, platform and
//! optimization level, so a float that feeds simulator state breaks
//! bit-identical seeded reruns. The rule looks at *type positions* —
//! struct/enum fields, const/static types, and function parameters —
//! because that is where floats become part of the model's state or
//! contract; stats/export/json boundaries in `crates/sim` are exempt
//! (floats are fine once results leave the deterministic core).

use std::collections::BTreeSet;
use std::path::Path;

use crate::engine::FileCtx;
use crate::Violation;
use syn::visit::{self, Visit};
use syn::TypeTokens;

/// Boundary files where floats are part of the export format, not the
/// simulated state.
const EXEMPT: [&str; 3] = [
    "crates/sim/src/stats.rs",
    "crates/sim/src/export.rs",
    "crates/sim/src/json.rs",
];

/// (0-based line, float type, position description) per float found.
struct FloatTypes {
    found: Vec<(usize, &'static str, &'static str)>,
}

impl FloatTypes {
    fn scan(&mut self, ty: &TypeTokens, what: &'static str) {
        for (ident, span) in ty.idents() {
            let fty = match ident.as_str() {
                "f32" => "f32",
                "f64" => "f64",
                _ => continue,
            };
            self.found.push((span.line.saturating_sub(1), fty, what));
        }
    }
}

impl<'ast> Visit<'ast> for FloatTypes {
    fn visit_field(&mut self, field: &'ast syn::Field) {
        self.scan(&field.ty, "field");
        visit::walk_field(self, field);
    }

    fn visit_item_const(&mut self, item: &'ast syn::ItemConst) {
        self.scan(&item.ty, "const");
        visit::walk_item_const(self, item);
    }

    fn visit_item_static(&mut self, item: &'ast syn::ItemStatic) {
        self.scan(&item.ty, "static");
        visit::walk_item_static(self, item);
    }

    fn visit_item_fn(&mut self, item: &'ast syn::ItemFn) {
        for ty in &item.param_types {
            self.scan(ty, "fn parameter");
        }
        visit::walk_item_fn(self, item);
    }
}

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if EXEMPT.iter().any(|e| ctx.rel == Path::new(e)) {
        return;
    }
    let mut floats = FloatTypes { found: Vec::new() };
    floats.visit_file(&ctx.ast);
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for (idx, fty, what) in floats.found {
        if ctx.in_test(idx) || !seen.insert(idx) {
            continue;
        }
        ctx.push(
            out,
            idx,
            "float-determinism",
            format!(
                "{fty} {what} feeds sim-visible state: float rounding \
                 varies with platform and optimization level and breaks \
                 bit-identical seeded reruns; store fixed-point integers \
                 (ppm, nanoseconds) and convert at the export boundary"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn float_fields_consts_and_params_are_flagged() {
        let src = "struct Wear { factor: f64 }\n\
                   const RATE: f32 = 0.5;\n\
                   fn apply(scale: f64) {}\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/flash/src/x.rs"),
            src,
            policy_for("flash"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[0].message.starts_with("f64 field"));
        assert!(out[1].message.starts_with("f32 const"));
        assert!(out[2].message.starts_with("f64 fn parameter"));
    }

    #[test]
    fn float_locals_return_types_and_exempt_files_pass() {
        // Locals and return types are conversions, not stored state.
        let src = "fn ratio(n: u64, d: u64) -> f64 { n as f64 / d as f64 }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");

        let src = "struct Summary { mean: f64 }\n";
        lint_file(
            Path::new("crates/sim/src/stats.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "exempt boundary file: {out:?}");
    }
}
