//! `truncating-cast`: no narrowing `as` casts in sim-visible code.
//!
//! Times, counters and addresses in the simulator are `u64`; an
//! `x as u32` silently wraps after 4 Gi events / 4 GiB of address
//! space and skews results without a crash. Literal-suffix narrowing
//! (`0xff as u8`) is exempt — the value is known at the cast site.
//! Use `try_from` with a typed error, or an explicit mask when the
//! truncation is intentional (and say so in an allow reason).

use std::collections::BTreeSet;

use crate::engine::tokens::FlatTok;
use crate::engine::FileCtx;
use crate::Violation;

const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let flat = &ctx.flat;
    let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
    for i in 0..flat.len() {
        if flat[i].ident() != Some("as") {
            continue;
        }
        let Some(target) = flat
            .get(i + 1)
            .and_then(FlatTok::ident)
            .and_then(|t| NARROW.iter().copied().find(|n| *n == t))
        else {
            continue;
        };
        // A literal source (`0xff as u8`) narrows a compile-time-known
        // value, not a runtime sim quantity.
        if i > 0 && matches!(&flat[i - 1], FlatTok::Tok(t) if t.as_literal().is_some()) {
            continue;
        }
        let idx = flat[i].line_idx();
        if ctx.in_test(idx) || !seen.insert((idx, target)) {
            continue;
        }
        ctx.push(
            out,
            idx,
            "truncating-cast",
            format!(
                "`as {target}` narrows a runtime value: sim times, \
                 counters and addresses are u64, and a silent wrap skews \
                 results without failing; use try_from with a typed error \
                 or an explicit documented mask"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn narrowing_casts_are_flagged_and_widening_is_not() {
        let src = "fn f(x: u64) { let a = x as u32; let b = x as u128; let c = x as u64; }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`as u32`"));
    }

    #[test]
    fn literal_casts_and_imports_are_exempt() {
        let src = "use std::io::Read as u8reader;\nfn f() { let m = 0xff as u8; }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }
}
