//! The per-file rule passes and workspace cross-checks.
//!
//! Each per-file rule is a function from a [`FileCtx`] to findings; the
//! findings are routed through the allowlist by `FileCtx::push`. Rules
//! skip `#[cfg(test)]` lines themselves (test code is exempt from every
//! per-file rule). The coverage cross-checks in [`coverage`] run once
//! per workspace and bypass the allowlist on purpose: an exporter gap
//! is never acceptable, only fixable.

pub(crate) mod coverage;
mod fleet_readiness;
mod float_determinism;
mod hash_collections;
mod truncating_cast;
mod unwrap_expect;
mod wall_clock;
mod wildcard_match;

use super::{FileCtx, Policy};
use crate::Violation;

/// Runs every applicable per-file rule over one file.
pub(crate) fn run(ctx: &FileCtx<'_>, policy: Policy, out: &mut Vec<Violation>) {
    if policy.hash_collections {
        hash_collections::check(ctx, out);
    }
    if policy.wall_clock {
        wall_clock::check(ctx, out);
    }
    if policy.unwrap_expect {
        unwrap_expect::check(ctx, out);
    }
    if policy.fleet_readiness {
        fleet_readiness::check(ctx, out);
    }
    if policy.float_determinism {
        float_determinism::check(ctx, out);
    }
    if policy.truncating_cast {
        truncating_cast::check(ctx, out);
    }
    if policy.wildcard_match {
        wildcard_match::check(ctx, out);
    }
}
