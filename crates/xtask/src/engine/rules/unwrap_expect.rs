//! `unwrap-expect`: no `.unwrap()` / `.expect(…)` in non-test library
//! code of the error-typed crates; return `DeviceError`/`FlashError`/
//! `JsonError` instead. `self.expect(…)` is exempt — it is a
//! user-defined method (the JSON parser's token matcher), not
//! `Option`/`Result::expect`. Every occurrence is flagged, including
//! several on one line.

use proc_macro2::Delimiter;

use crate::engine::tokens::FlatTok;
use crate::engine::FileCtx;
use crate::Violation;

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let flat = &ctx.flat;
    for i in 0..flat.len() {
        if flat[i].punct() != Some('.') {
            continue;
        }
        let line = flat[i].span().line;
        let idx = line.saturating_sub(1);
        if ctx.in_test(idx) {
            continue;
        }
        let (Some(name_tok), Some(open_tok)) = (flat.get(i + 1), flat.get(i + 2)) else {
            continue;
        };
        if name_tok.span().line != line || open_tok.span().line != line {
            continue;
        }
        let paren = |empty_only: bool| match open_tok {
            FlatTok::Open { delim, empty, .. } => {
                *delim == Delimiter::Parenthesis && (!empty_only || *empty)
            }
            _ => false,
        };
        let flagged = match name_tok.ident() {
            Some("unwrap") if paren(true) => Some(".unwrap()"),
            Some("expect") if paren(false) => {
                // `self.expect(…)`: receiver is the `self` ident right
                // before the dot, on the same line.
                let receiver_is_self =
                    i > 0 && flat[i - 1].ident() == Some("self") && flat[i - 1].span().line == line;
                (!receiver_is_self).then_some(".expect")
            }
            _ => None,
        };
        if let Some(pat) = flagged {
            ctx.push(
                out,
                idx,
                "unwrap-expect",
                format!(
                    "{pat} in non-test library code: return a typed \
                     error (DeviceError/FlashError/JsonError) instead"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn every_occurrence_is_flagged() {
        let src = "fn f() { a.unwrap(); b.unwrap().c.unwrap(); }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            src,
            policy_for("core"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn unwrap_with_arguments_is_a_different_method() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_default(); }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            src,
            policy_for("core"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }
}
