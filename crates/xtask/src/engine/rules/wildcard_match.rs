//! `wildcard-match`: no `_ =>` arms on matches over the protected
//! enums (`DeviceEvent`, `SpanKind`, `InvariantKind`, `FaultKind`).
//!
//! The coverage rules guarantee every variant reaches the exporters;
//! a wildcard arm defeats them from the other side — a newly added
//! variant is silently absorbed instead of failing the build. A match
//! counts as protected when any non-wild arm's pattern names
//! `Enum::Variant` for one of the protected enums.

use proc_macro2::TokenTree;

use crate::engine::FileCtx;
use crate::Violation;
use syn::visit::{self, Visit};

const PROTECTED: [&str; 4] = ["DeviceEvent", "SpanKind", "InvariantKind", "FaultKind"];

/// Whether a pattern's tokens reference `Enum::…` for a protected enum,
/// recursing into nested groups (`Some(DeviceEvent::HostRead)`).
fn names_protected(tokens: &[TokenTree]) -> Option<&'static str> {
    for (i, t) in tokens.iter().enumerate() {
        if let Some(g) = t.as_group() {
            if let Some(name) = names_protected(g.stream().tokens()) {
                return Some(name);
            }
            continue;
        }
        let Some(ident) = t.as_ident() else { continue };
        let Some(name) = PROTECTED.iter().copied().find(|p| *p == ident) else {
            continue;
        };
        let followed_by_path = tokens.get(i + 1).and_then(TokenTree::as_punct) == Some(':')
            && tokens.get(i + 2).and_then(TokenTree::as_punct) == Some(':');
        if followed_by_path {
            return Some(name);
        }
    }
    None
}

struct WildArms {
    /// (0-based line of the `_` arm, protected enum name).
    found: Vec<(usize, &'static str)>,
}

impl<'ast> Visit<'ast> for WildArms {
    fn visit_expr_match(&mut self, m: &'ast syn::ExprMatch) {
        let protected = m
            .arms
            .iter()
            .filter(|a| !a.wild)
            .find_map(|a| names_protected(&a.pat_tokens));
        if let Some(name) = protected {
            for arm in m.arms.iter().filter(|a| a.wild) {
                self.found.push((arm.span.line.saturating_sub(1), name));
            }
        }
        visit::walk_expr_match(self, m);
    }
}

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let mut arms = WildArms { found: Vec::new() };
    arms.visit_file(&ctx.ast);
    for (idx, name) in arms.found {
        if ctx.in_test(idx) {
            continue;
        }
        ctx.push(
            out,
            idx,
            "wildcard-match",
            format!(
                "`_` arm on a {name} match: a newly added variant would \
                 be silently absorbed here instead of failing the build; \
                 name every variant so the coverage rules stay honest"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn wildcard_on_protected_enum_is_flagged() {
        let src = "fn f(e: DeviceEvent) -> u32 {\n\
                       match e {\n\
                           DeviceEvent::HostRead { .. } => 1,\n\
                           _ => 0,\n\
                       }\n\
                   }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("DeviceEvent"));
    }

    #[test]
    fn wildcards_on_unprotected_matches_are_fine() {
        let src = "fn f(x: u32) -> u32 {\n\
                       match x {\n\
                           0 => 1,\n\
                           _ => 0,\n\
                       }\n\
                   }\n\
                   fn g(e: DeviceEvent) -> u32 {\n\
                       match e {\n\
                           DeviceEvent::HostRead { .. } => 1,\n\
                           DeviceEvent::HostWrite { .. } => 2,\n\
                       }\n\
                   }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }
}
