//! The three coverage cross-checks: `counter-coverage`,
//! `event-coverage` and `span-coverage`.
//!
//! These run once per workspace (not per file) because each compares
//! two places that must agree: an enum or struct definition against the
//! exporter mappings that enumerate it. They bypass the allowlist on
//! purpose — an exporter gap is never acceptable, only fixable.
//!
//! Anchoring matches the previous engine exactly: a missing-variant
//! diagnostic points at the handling `fn`'s `fn` keyword line, a
//! missing-exporter diagnostic at the enum/struct definition line.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::engine::tokens::{flatten, FlatTok};
use crate::Violation;
use proc_macro2::TokenTree;
use syn::visit::{self, Visit};

/// Source-order index of the nodes the coverage rules look up.
#[derive(Default)]
struct Index<'ast> {
    structs: Vec<&'ast syn::ItemStruct>,
    enums: Vec<&'ast syn::ItemEnum>,
    fns: Vec<&'ast syn::ItemFn>,
    /// Macro *invocations* (`fields!(…)`), not `macro_rules!` definitions.
    invocations: Vec<(&'ast str, &'ast [TokenTree])>,
}

impl<'ast> Visit<'ast> for Index<'ast> {
    fn visit_item_struct(&mut self, item: &'ast syn::ItemStruct) {
        self.structs.push(item);
        visit::walk_item_struct(self, item);
    }

    fn visit_item_enum(&mut self, item: &'ast syn::ItemEnum) {
        self.enums.push(item);
        visit::walk_item_enum(self, item);
    }

    fn visit_item_fn(&mut self, item: &'ast syn::ItemFn) {
        self.fns.push(item);
        visit::walk_item_fn(self, item);
    }

    fn visit_item_macro(&mut self, item: &'ast syn::ItemMacro) {
        self.invocations.push((&item.name, &item.tokens));
        visit::walk_item_macro(self, item);
    }

    fn visit_expr_macro(&mut self, m: &'ast syn::ExprMacro) {
        self.invocations.push((&m.name, &m.tokens));
        visit::walk_expr_macro(self, m);
    }
}

/// One parsed coverage-target file.
struct Target {
    rel: PathBuf,
    ast: syn::File,
    flat: Vec<FlatTok>,
}

impl Target {
    fn load(root: &Path, rel: &str) -> Option<Target> {
        let src = std::fs::read_to_string(root.join(rel)).ok()?;
        let ast = syn::parse_file(&src).ok()?;
        let flat = flatten(&ast.tokens);
        Some(Target {
            rel: PathBuf::from(rel),
            ast,
            flat,
        })
    }

    fn index(&self) -> Index<'_> {
        let mut ix = Index::default();
        ix.visit_file(&self.ast);
        ix
    }

    /// First public enum with this exact name, with its 1-based
    /// definition line and CamelCase variant names.
    fn public_enum(&self, ix: &Index<'_>, name: &str) -> Option<(usize, Vec<String>)> {
        let e = ix.enums.iter().find(|e| e.public && e.name == name)?;
        let variants = e
            .variants
            .iter()
            .map(|v| v.name.clone())
            .filter(|v| v.chars().next().is_some_and(char::is_uppercase))
            .collect();
        Some((e.span.line, variants))
    }

    /// First fn (in source order) whose name starts with `prefix` —
    /// prefix rather than equality to mirror the previous engine's
    /// substring marker search. Returns the fn's 1-based `fn` keyword
    /// line and its token extent.
    fn fn_with_prefix(&self, ix: &Index<'_>, prefix: &str) -> Option<(usize, usize, usize)> {
        let f = ix.fns.iter().find(|f| f.name.starts_with(prefix))?;
        Some((f.fn_span.line, f.fn_span.lo, f.end_byte))
    }

    /// `Enum::Variant` references between byte offsets `lo` and `hi`.
    fn variant_refs(&self, enum_name: &str, lo: usize, hi: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for i in 0..self.flat.len() {
            let at = self.flat[i].span().lo;
            if at < lo || at >= hi {
                continue;
            }
            if self.flat[i].ident() != Some(enum_name)
                || self.flat.get(i + 1).and_then(FlatTok::punct) != Some(':')
                || self.flat.get(i + 2).and_then(FlatTok::punct) != Some(':')
            {
                continue;
            }
            if let Some(v) = self.flat.get(i + 3).and_then(FlatTok::ident) {
                out.insert(v.to_string());
            }
        }
        out
    }
}

/// Comma-separated identifier list of the first `name!(…)` invocation.
fn macro_ident_list(ix: &Index<'_>, name: &str) -> Option<Vec<String>> {
    let (_, tokens) = ix.invocations.iter().find(|(n, _)| *n == name)?;
    let mut out = Vec::new();
    let mut chunk: Vec<TokenTree> = Vec::new();
    for t in tokens.iter() {
        if t.as_punct() == Some(',') {
            if !chunk.is_empty() {
                out.push(quote::render(&chunk));
                chunk.clear();
            }
        } else {
            chunk.push(t.clone());
        }
    }
    if !chunk.is_empty() {
        out.push(quote::render(&chunk));
    }
    Some(out)
}

/// Cross-checks `Counters` fields against the exporter field lists.
pub(crate) fn check_counter_coverage(root: &Path, out: &mut Vec<Violation>) {
    let Some(target) = Target::load(root, "crates/types/src/counters.rs") else {
        return; // fixture trees without a types crate skip this rule
    };
    let ix = target.index();
    let Some(counters) = ix.structs.iter().find(|s| s.public && s.name == "Counters") else {
        return;
    };
    let struct_line = counters.span.line;
    let fields: Vec<String> = counters
        .fields
        .iter()
        .filter(|f| f.public && f.ty.render() == "u64")
        .filter_map(|f| f.name.clone())
        .collect();
    for (macro_name, what) in [
        ("fields", "named_fields exporter list"),
        ("diff", "since() interval diff"),
    ] {
        let Some(listed) = macro_ident_list(&ix, macro_name) else {
            out.push(Violation {
                file: target.rel.clone(),
                line: struct_line,
                rule: "counter-coverage",
                message: format!("could not locate the {macro_name}!(…) {what}"),
            });
            continue;
        };
        let listed_set: BTreeSet<&str> = listed.iter().map(String::as_str).collect();
        for f in &fields {
            if !listed_set.contains(f.as_str()) {
                out.push(Violation {
                    file: target.rel.clone(),
                    line: struct_line,
                    rule: "counter-coverage",
                    message: format!(
                        "Counters field `{f}` is missing from the {what}: \
                         it would silently vanish from every exporter"
                    ),
                });
            }
        }
        let field_set: BTreeSet<&str> = fields.iter().map(String::as_str).collect();
        for l in &listed {
            if !field_set.contains(l.as_str()) {
                out.push(Violation {
                    file: target.rel.clone(),
                    line: struct_line,
                    rule: "counter-coverage",
                    message: format!("{what} names `{l}`, which is not a Counters field"),
                });
            }
        }
    }
}

/// Cross-checks `DeviceEvent` variants against `kind_name`, `kind_index`
/// and the `event_args` exporter mapping.
pub(crate) fn check_event_coverage(root: &Path, out: &mut Vec<Violation>) {
    let Some(trace) = Target::load(root, "crates/types/src/trace.rs") else {
        return;
    };
    let trace_ix = trace.index();
    let Some((enum_line, variants)) = trace.public_enum(&trace_ix, "DeviceEvent") else {
        return;
    };

    fn check(
        variants: &[String],
        covered: &BTreeSet<String>,
        place: &str,
        file: &Path,
        line: usize,
        out: &mut Vec<Violation>,
    ) {
        for v in variants {
            if !covered.contains(v) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line,
                    rule: "event-coverage",
                    message: format!("DeviceEvent::{v} is not handled by {place}"),
                });
            }
        }
    }

    for (fn_prefix, place) in [
        ("kind_name", "fn kind_name"),
        ("kind_index", "fn kind_index"),
    ] {
        match trace.fn_with_prefix(&trace_ix, fn_prefix) {
            Some((line, lo, hi)) => check(
                &variants,
                &trace.variant_refs("DeviceEvent", lo, hi),
                place,
                &trace.rel,
                line,
                out,
            ),
            None => out.push(Violation {
                file: trace.rel.clone(),
                line: enum_line,
                rule: "event-coverage",
                message: format!("could not locate `{place}` next to DeviceEvent"),
            }),
        }
    }

    if let Some(export) = Target::load(root, "crates/sim/src/export.rs") {
        let export_ix = export.index();
        match export.fn_with_prefix(&export_ix, "event_args") {
            Some((line, lo, hi)) => check(
                &variants,
                &export.variant_refs("DeviceEvent", lo, hi),
                "the event_args exporter mapping",
                &export.rel,
                line,
                out,
            ),
            None => out.push(Violation {
                file: export.rel.clone(),
                line: 1,
                rule: "event-coverage",
                message: "could not locate `fn event_args` in the exporter".to_string(),
            }),
        }
    }
}

/// Cross-checks `SpanKind` variants against `name`, `index` and
/// `breakdown_category` — the three total mappings every exporter and the
/// breakdown reconciliation rely on.
pub(crate) fn check_span_coverage(root: &Path, out: &mut Vec<Violation>) {
    let Some(span) = Target::load(root, "crates/types/src/span.rs") else {
        return; // fixture trees without a span module skip this rule
    };
    let ix = span.index();
    let Some((enum_line, variants)) = span.public_enum(&ix, "SpanKind") else {
        return;
    };

    for (fn_prefix, place) in [
        ("name", "fn name"),
        ("index", "fn index"),
        ("breakdown_category", "fn breakdown_category"),
    ] {
        match span.fn_with_prefix(&ix, fn_prefix) {
            Some((line, lo, hi)) => {
                let covered = span.variant_refs("SpanKind", lo, hi);
                for v in &variants {
                    if !covered.contains(v) {
                        out.push(Violation {
                            file: span.rel.clone(),
                            line,
                            rule: "span-coverage",
                            message: format!("SpanKind::{v} is not handled by {place}"),
                        });
                    }
                }
            }
            None => out.push(Violation {
                file: span.rel.clone(),
                line: enum_line,
                rule: "span-coverage",
                message: format!("could not locate `{place}` next to SpanKind"),
            }),
        }
    }
}
