//! `hash-collections`: no `HashMap`/`HashSet` in sim-visible crates.
//!
//! Their iteration order is randomized per process (SipHash with random
//! keys), so any iteration that feeds simulator behaviour breaks seeded
//! reruns. One diagnostic per line per identifier, like the previous
//! engine: a `HashMap<K, HashMap<K2, V>>` nested type is one finding.

use std::collections::BTreeSet;

use crate::engine::FileCtx;
use crate::Violation;

const BANNED: [&str; 2] = ["HashMap", "HashSet"];

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
    for tok in &ctx.flat {
        let Some(ident) = tok.ident() else {
            continue;
        };
        let Some(name) = BANNED.iter().copied().find(|n| *n == ident) else {
            continue;
        };
        let idx = tok.line_idx();
        if ctx.in_test(idx) || !seen.insert((idx, name)) {
            continue;
        }
        ctx.push(
            out,
            idx,
            "hash-collections",
            format!(
                "{name} in sim-visible state: iteration order is \
                 randomized per process and breaks seeded reruns; \
                 use BTreeMap/BTreeSet or an insertion-ordered \
                 structure"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn one_finding_per_line_per_identifier() {
        let src = "fn f() { let m: HashMap<u32, HashMap<u32, HashSet<u32>>> = make(); }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        let hash: Vec<_> = out
            .iter()
            .filter(|v| v.rule == "hash-collections")
            .collect();
        assert_eq!(hash.len(), 2, "{out:?}");
    }

    #[test]
    fn strings_and_comments_never_trip_the_rule() {
        let src = "// HashMap in prose\nfn f() { let s = \"HashMap\"; }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }
}
