//! `fleet-readiness`: sim-visible state must be shardable across fleet
//! worker threads, i.e. `Send`. Three shapes break that silently:
//!
//! * `Rc`/`RefCell`/`Cell`/`UnsafeCell` — single-thread interior
//!   mutability; an `Rc` cycle or a `RefCell` borrow panic only shows
//!   up once devices migrate between workers.
//! * `thread_local!` — pins state to an OS thread, so a device resumed
//!   on a different worker sees a fresh (diverged) copy.
//! * `static mut` — process-global mutable state aliased by every
//!   device instance in the process.

use std::collections::BTreeSet;

use crate::engine::tokens::matches_pattern;
use crate::engine::FileCtx;
use crate::Violation;
use syn::visit::{self, Visit};

const BANNED: [&str; 4] = ["Rc", "RefCell", "Cell", "UnsafeCell"];

struct StaticMuts {
    lines: Vec<usize>,
}

impl<'ast> Visit<'ast> for StaticMuts {
    fn visit_item_static(&mut self, item: &'ast syn::ItemStatic) {
        if item.mutable {
            self.lines.push(item.span.line.saturating_sub(1));
        }
        visit::walk_item_static(self, item);
    }
}

pub(crate) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
    for (i, tok) in ctx.flat.iter().enumerate() {
        let Some(ident) = tok.ident() else {
            continue;
        };
        let idx = tok.line_idx();
        if ctx.in_test(idx) {
            continue;
        }
        if let Some(name) = BANNED.iter().copied().find(|n| *n == ident) {
            if seen.insert((idx, name)) {
                ctx.push(
                    out,
                    idx,
                    "fleet-readiness",
                    format!(
                        "{name} in sim-visible code is not fleet-ready: \
                         device state must be Send so the fleet runner can \
                         shard devices across worker threads; use owned \
                         data, atomics, or a mutex-guarded structure"
                    ),
                );
            }
        }
        if matches_pattern(&ctx.flat, i, &["thread_local", "!"])
            && seen.insert((idx, "thread_local"))
        {
            ctx.push(
                out,
                idx,
                "fleet-readiness",
                "thread_local! pins sim state to one OS thread: a \
                 device migrated to another fleet worker silently sees \
                 a fresh copy and diverges; keep the state inside the \
                 device instance"
                    .to_string(),
            );
        }
    }

    let mut statics = StaticMuts { lines: Vec::new() };
    statics.visit_file(&ctx.ast);
    for idx in statics.lines {
        if ctx.in_test(idx) {
            continue;
        }
        ctx.push(
            out,
            idx,
            "fleet-readiness",
            "static mut is process-global mutable state: fleet mode \
             runs many devices per process, so every instance aliases \
             this; move it into the device instance"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_file, policy_for};
    use std::path::Path;

    #[test]
    fn interior_mutability_thread_local_and_static_mut_are_flagged() {
        let src = "use std::cell::RefCell;\n\
                   thread_local! { static SCRATCH: RefCell<u64> = RefCell::new(0); }\n\
                   static mut GLOBAL: u64 = 0;\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        let fleet: Vec<_> = out.iter().filter(|v| v.rule == "fleet-readiness").collect();
        // line 1: RefCell import; line 2: thread_local! + RefCell; line 3: static mut.
        assert_eq!(fleet.len(), 4, "{out:?}");
    }

    #[test]
    fn send_safe_state_is_clean() {
        let src = "use std::sync::atomic::AtomicU64;\n\
                   static SLOTS: AtomicU64 = AtomicU64::new(0);\n\
                   struct CellMap { cells: Vec<u64> }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/sim/src/x.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }
}
