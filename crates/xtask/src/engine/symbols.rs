//! Workspace symbol table: one [`FnSym`] per analysed function.
//!
//! The effect analysis needs to know, for every function in the
//! sim-visible crates, *who it is* (free function, inherent method,
//! trait method — and of which type), *what it intrinsically does*
//! (its builtin-table effect sites) and *whom it calls* (its call
//! sites, classified by shape so the `graph` module can resolve them).
//! This module extracts all three from a [`FileCtx`], walking items
//! recursively through modules, impls, traits, item-position macro
//! invocations (macro-generated functions) and functions nested inside
//! other function bodies.
//!
//! Functions also carry their effect *markers*:
//!
//! ```text
//! // xtask-effect: hot_path
//! pub fn write_range(…) { … }
//!
//! // xtask-effect: cold — GC refill slow path, runs off the IO path
//! fn refill_free_list(…) { … }
//! ```
//!
//! `hot_path` opts the function into the hot-path contract (the
//! `hot-path-effects` rule); `cold` cuts effect propagation through the
//! function (callers are not charged for what it does) and requires a
//! reason, like an allow directive. `#[cold]` attributes count as cold
//! markers too — the attribute already declares the same intent to the
//! optimiser. Malformed markers are reported through the
//! `effect-annotation` rule.

use std::path::PathBuf;

use crate::engine::effects::{self, EffectSet, EffectSite};
use crate::engine::tokens::FlatTok;
use crate::engine::FileCtx;
use proc_macro2::{Delimiter, TokenTree};
use syn::{Block, Expr, Item, ItemFn};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `name(…)` — a free function (or tuple-struct constructor, which
    /// resolves to nothing).
    Bare,
    /// `Qualifier::name(…)` — an associated function, `Self::name`, a
    /// trait-qualified call, or a module-qualified free function.
    Qualified(String),
    /// `recv.name(…)` — a method on an unknown receiver type.
    Method,
    /// `self.name(…)` — a method on the enclosing impl type.
    SelfMethod,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct CallSite {
    pub kind: CallKind,
    pub name: String,
}

/// One analysed function.
#[derive(Debug)]
pub(crate) struct FnSym {
    pub crate_name: String,
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line of the function name.
    pub line: usize,
    pub name: String,
    /// The impl self type for inherent/trait-impl methods, or the trait
    /// name for trait default bodies; `None` for free functions.
    pub self_ty: Option<String>,
    /// The trait an `impl Trait for Type` method implements.
    pub trait_of: Option<String>,
    /// Marked `// xtask-effect: hot_path`.
    pub hot: bool,
    /// Marked cold (`#[cold]` or a reasoned `xtask-effect: cold`):
    /// effect propagation stops here.
    pub cold: bool,
    /// Builtin-table effect sites in the body (allow-filtered).
    pub intrinsics: Vec<EffectSite>,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Transitive effects, filled in by the graph fixpoint.
    pub effects: EffectSet,
}

impl FnSym {
    /// `crate::Type::name`-style display name.
    pub(crate) fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{}::{}::{}", self.crate_name, ty, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// A file-local problem with an effect marker, reported through the
/// `effect-annotation` rule.
pub(crate) struct MarkerIssue {
    /// 0-based line of the marker (or function).
    pub line: usize,
    pub message: String,
}

/// Walks one file and appends its function symbols and marker issues.
pub(crate) fn collect(
    ctx: &FileCtx<'_>,
    crate_name: &str,
    syms: &mut Vec<FnSym>,
    issues: &mut Vec<MarkerIssue>,
) {
    let mut walker = Walker {
        ctx,
        crate_name,
        syms,
        issues,
        consumed_marker_lines: Vec::new(),
    };
    for item in &ctx.ast.items {
        walker.item(item, &ImplCtx::none());
    }
    // Any effect marker on a line no function claimed is dangling.
    for (idx, line) in ctx.comment_lines.iter().enumerate() {
        if effects::effect_markers(line).is_empty() {
            continue;
        }
        if ctx.in_test(idx) || walker.consumed_marker_lines.contains(&idx) {
            continue;
        }
        walker.issues.push(MarkerIssue {
            line: idx,
            message: "effect marker is not attached to a function \
                      (write it on the line of, or directly above, a `fn`)"
                .to_string(),
        });
    }
}

/// The impl/trait context a function is found in.
#[derive(Clone, Default)]
struct ImplCtx {
    self_ty: Option<String>,
    trait_of: Option<String>,
}

impl ImplCtx {
    fn none() -> ImplCtx {
        ImplCtx::default()
    }
}

struct Walker<'a, 'c> {
    ctx: &'a FileCtx<'c>,
    crate_name: &'a str,
    syms: &'a mut Vec<FnSym>,
    issues: &'a mut Vec<MarkerIssue>,
    consumed_marker_lines: Vec<usize>,
}

impl Walker<'_, '_> {
    fn item(&mut self, item: &Item, ictx: &ImplCtx) {
        if item.is_cfg_test() {
            return;
        }
        match item {
            Item::Fn(f) => self.function(f, ictx),
            Item::Mod(m) => {
                if let Some(items) = &m.content {
                    for it in items {
                        self.item(it, ictx);
                    }
                }
            }
            Item::Impl(imp) => {
                let (trait_of, self_ty) = impl_context(&imp.header);
                let ictx = ImplCtx { self_ty, trait_of };
                for it in &imp.items {
                    self.item(it, &ictx);
                }
            }
            Item::Trait(tr) => {
                let ictx = ImplCtx {
                    self_ty: Some(tr.name.clone()),
                    trait_of: None,
                };
                for it in &tr.items {
                    self.item(it, &ictx);
                }
            }
            // Macro-generated functions: the reduced parser exposes a
            // macro invocation's body as parsed expressions, so `fn`
            // items emitted literally inside one are analysable.
            Item::Macro(m) => {
                for e in &m.body {
                    if let Expr::Item(it) = e {
                        self.item(it, ictx);
                    }
                }
            }
            _ => {}
        }
    }

    fn function(&mut self, f: &ItemFn, ictx: &ImplCtx) {
        let Some(body) = &f.body else {
            return; // trait declarations carry no analysable body
        };
        let first_line = f
            .attrs
            .first()
            .map_or(f.span.line, |a| a.span.line.min(f.span.line))
            .saturating_sub(1);
        if self.ctx.in_test(first_line) || f.attrs.iter().any(|a| a.is_test()) {
            return;
        }

        // Effect markers anchor like allow directives: on the item's
        // first line or in the contiguous comment block above it.
        let mut hot = false;
        let mut cold = f.attrs.iter().any(|a| a.path == "cold");
        for l in self.ctx.anchor_candidates(first_line) {
            let markers = effects::effect_markers(&self.ctx.comment_lines[l]);
            if markers.is_empty() {
                continue;
            }
            self.consumed_marker_lines.push(l);
            for m in markers {
                match m.kind.as_str() {
                    "hot_path" => hot = true,
                    "cold" if m.has_reason => cold = true,
                    "cold" => self.issues.push(MarkerIssue {
                        line: l,
                        message: "cold marker is missing its reason (write \
                                  `// xtask-effect: cold — <reason>`)"
                            .to_string(),
                    }),
                    other => self.issues.push(MarkerIssue {
                        line: l,
                        message: format!(
                            "unknown effect marker `{other}` \
                             (expected `hot_path` or `cold`)"
                        ),
                    }),
                }
            }
        }
        if hot && cold {
            self.issues.push(MarkerIssue {
                line: first_line,
                message: format!(
                    "`{}` is marked both hot_path and cold — a function \
                     cannot be on the hot path and exempt from it",
                    f.name
                ),
            });
        }

        // Nested named functions are symbols of their own: exclude
        // their byte extents from this body's scan, then recurse.
        let mut nested: Vec<(usize, usize)> = Vec::new();
        collect_nested_fns(body, &mut |it| {
            let lo = it
                .attrs()
                .first()
                .map_or(it.span().lo, |a| a.span.lo.min(it.span().lo));
            nested.push((lo, it.end_byte()));
        });
        for e in &body.exprs {
            self.nested_items(e);
        }

        let (start, end) = self.token_window(body, f.end_byte);
        let mut intrinsics = Vec::new();
        effects::scan_intrinsics(&self.ctx.flat, start, end, &nested, &mut intrinsics);
        // The leaf-site escape hatch: an allow directive at the effect
        // site discharges it before it ever enters the lattice.
        intrinsics.retain(|site| !self.ctx.consume_allow(site.line, "hot-path-effects"));

        let mut calls = Vec::new();
        scan_calls(&self.ctx.flat, start, end, &nested, &mut calls);

        self.syms.push(FnSym {
            crate_name: self.crate_name.to_string(),
            file: self.ctx.rel.to_path_buf(),
            line: f.name_span.line,
            name: f.name.clone(),
            self_ty: ictx.self_ty.clone(),
            trait_of: ictx.trait_of.clone(),
            hot,
            cold,
            intrinsics,
            calls,
            effects: EffectSet::EMPTY,
        });
    }

    /// Recurses into items nested inside a body (functions declared in
    /// function scope, inline modules, …).
    fn nested_items(&mut self, e: &Expr) {
        match e {
            Expr::Item(it) => self.item(it, &ImplCtx::none()),
            Expr::Group(g) => {
                for e in &g.exprs {
                    self.nested_items(e);
                }
            }
            Expr::Match(m) => {
                for e in &m.scrutinee {
                    self.nested_items(e);
                }
                for arm in &m.arms {
                    for e in &arm.body {
                        self.nested_items(e);
                    }
                }
            }
            Expr::Macro(m) => {
                for e in &m.body {
                    self.nested_items(e);
                }
            }
            Expr::Tokens(_) => {}
        }
    }

    /// The flat-token index window of a function body: from the body's
    /// opening brace to the function's last token. Closures stay inside
    /// the window (their effects are attributed to the enclosing
    /// function); enclosing-group `Close` markers that point back
    /// before the body end the scan.
    fn token_window(&self, body: &Block, end_byte: usize) -> (usize, usize) {
        let body_lo = body.span.lo;
        let flat = &self.ctx.flat;
        let mut start = 0;
        while start < flat.len() && flat[start].span().lo < body_lo {
            start += 1;
        }
        let mut end = start;
        while end < flat.len() {
            let lo = flat[end].span().lo;
            if lo >= end_byte || (matches!(flat[end], FlatTok::Close { .. }) && lo < body_lo) {
                break;
            }
            end += 1;
        }
        (start, end)
    }
}

/// Finds `fn` items directly nested in a body (any depth of expression
/// nesting, but not inside *their* bodies — recursion handles those).
fn collect_nested_fns(body: &Block, on_fn: &mut impl FnMut(&Item)) {
    fn walk(e: &Expr, on_fn: &mut impl FnMut(&Item)) {
        match e {
            Expr::Item(it) => {
                if matches!(**it, Item::Fn(_)) {
                    on_fn(it);
                }
            }
            Expr::Group(g) => {
                for e in &g.exprs {
                    walk(e, on_fn);
                }
            }
            Expr::Match(m) => {
                for e in &m.scrutinee {
                    walk(e, on_fn);
                }
                for arm in &m.arms {
                    for e in &arm.body {
                        walk(e, on_fn);
                    }
                }
            }
            Expr::Macro(m) => {
                for e in &m.body {
                    walk(e, on_fn);
                }
            }
            Expr::Tokens(_) => {}
        }
    }
    for e in &body.exprs {
        walk(e, on_fn);
    }
}

/// Classifies every call site in a token window. Shapes:
///
/// * `name(…)` → [`CallKind::Bare`]
/// * `Qual::name(…)` → [`CallKind::Qualified`]
/// * `self.name(…)` → [`CallKind::SelfMethod`]
/// * `recv.name(…)` → [`CallKind::Method`]
///
/// `name!(…)` macro invocations are not calls (the builtin macro table
/// covers the ones with effects, and their argument tokens are scanned
/// like any others). Calls through closure-typed *parameters*
/// (`f(x)` where `f: impl Fn()`) resolve to nothing — a documented
/// limitation; closure *bodies* are charged to the defining function.
fn scan_calls(
    flat: &[FlatTok],
    lo: usize,
    hi: usize,
    skip: &[(usize, usize)],
    out: &mut Vec<CallSite>,
) {
    let skipped = |t: &FlatTok| {
        skip.iter()
            .any(|&(s, e)| t.span().lo >= s && t.span().lo < e)
    };
    for i in lo..hi {
        if skipped(&flat[i]) {
            continue;
        }
        let Some(name) = flat[i].ident() else {
            continue;
        };
        if effects::is_keyword(name) {
            continue;
        }
        let next_is_paren = matches!(
            flat.get(i + 1),
            Some(FlatTok::Open {
                delim: Delimiter::Parenthesis,
                ..
            })
        );
        if !next_is_paren || i + 1 >= hi {
            continue;
        }
        let prev = if i > lo { Some(&flat[i - 1]) } else { None };
        let prev_punct = prev.and_then(|t| t.punct());
        let site = match prev_punct {
            Some('!') => continue, // macro invocation
            Some('.') => {
                let receiver = (i >= lo + 2).then(|| &flat[i - 2]).and_then(FlatTok::ident);
                if receiver == Some("self") && (i < lo + 3 || flat[i - 3].punct() != Some('.')) {
                    CallSite {
                        kind: CallKind::SelfMethod,
                        name: name.to_string(),
                    }
                } else {
                    CallSite {
                        kind: CallKind::Method,
                        name: name.to_string(),
                    }
                }
            }
            Some(':') if i >= lo + 3 && flat[i - 2].punct() == Some(':') => {
                match flat[i - 3].ident() {
                    Some(q) => CallSite {
                        kind: CallKind::Qualified(q.to_string()),
                        name: name.to_string(),
                    },
                    // `<T as Trait>::name(…)` and similar: treat as a
                    // plain method-by-name lookup.
                    None => CallSite {
                        kind: CallKind::Method,
                        name: name.to_string(),
                    },
                }
            }
            _ => CallSite {
                kind: CallKind::Bare,
                name: name.to_string(),
            },
        };
        out.push(site);
    }
}

/// Parses an `impl` header token run into `(trait, self_ty)`:
/// `impl<T> Foo<T>` → `(None, Foo)`;
/// `impl Probe for RingBufferSink` → `(Some(Probe), RingBufferSink)`.
fn impl_context(header: &[TokenTree]) -> (Option<String>, Option<String>) {
    // Strip leading generic parameters `<…>`.
    let mut toks = header;
    if toks.first().and_then(TokenTree::as_punct) == Some('<') {
        let mut depth = 0i32;
        let mut cut = toks.len();
        for (k, t) in toks.iter().enumerate() {
            match t.as_punct() {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        cut = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        toks = &toks[cut.min(toks.len())..];
    }
    // Split at a top-level `for`.
    let mut depth = 0i32;
    let mut for_at = None;
    for (k, t) in toks.iter().enumerate() {
        match t.as_punct() {
            Some('<') => depth += 1,
            Some('>') => depth -= 1,
            _ => {}
        }
        if depth == 0 && t.as_ident() == Some("for") {
            for_at = Some(k);
            break;
        }
    }
    match for_at {
        Some(k) => (type_name(&toks[..k]), type_name(&toks[k + 1..])),
        None => (None, type_name(toks)),
    }
}

/// The principal type name of a path-ish token run: the last top-level
/// identifier before generics/where, skipping lifetimes and `&`/`mut`.
fn type_name(toks: &[TokenTree]) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    let mut prev_lifetime = false;
    for t in toks {
        match t.as_punct() {
            Some('<') => depth += 1,
            Some('>') => depth -= 1,
            Some('\'') => {
                prev_lifetime = true;
                continue;
            }
            _ => {}
        }
        if depth == 0 {
            if let Some(id) = t.as_ident() {
                if prev_lifetime {
                    prev_lifetime = false;
                    continue;
                }
                if id == "where" {
                    break;
                }
                if !matches!(id, "dyn" | "mut" | "const") {
                    last = Some(id.to_string());
                }
            }
        }
        prev_lifetime = false;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn collect_src(src: &str) -> (Vec<FnSym>, Vec<MarkerIssue>) {
        let ctx = FileCtx::build(Path::new("crates/core/src/x.rs"), src).expect("parses");
        let mut syms = Vec::new();
        let mut issues = Vec::new();
        collect(&ctx, "core", &mut syms, &mut issues);
        (syms, issues)
    }

    #[test]
    fn free_fns_methods_and_trait_impls_are_classified() {
        let (syms, issues) = collect_src(
            "fn free() {}\n\
             struct S;\n\
             impl S { fn m(&self) {} }\n\
             trait T { fn d(&self) { helper() } }\n\
             impl T for S { fn d(&self) {} }\n\
             fn helper() {}\n",
        );
        assert!(issues.is_empty());
        let names: Vec<String> = syms.iter().map(FnSym::qualified).collect();
        assert_eq!(
            names,
            [
                "core::free",
                "core::S::m",
                "core::T::d",
                "core::S::d",
                "core::helper"
            ]
        );
        assert_eq!(syms[3].trait_of.as_deref(), Some("T"));
        let decl = &syms[2];
        assert_eq!(decl.calls.len(), 1);
        assert_eq!(decl.calls[0].kind, CallKind::Bare);
    }

    #[test]
    fn call_shapes_are_classified() {
        let (syms, _) = collect_src(
            "impl S { fn m(&mut self) {\n\
                 free();\n\
                 Self::assoc();\n\
                 Other::q(1);\n\
                 self.own();\n\
                 recv.meth();\n\
                 mac!(ro);\n\
             } }\n",
        );
        let calls: Vec<(CallKind, &str)> = syms[0]
            .calls
            .iter()
            .map(|c| (c.kind.clone(), c.name.as_str()))
            .collect();
        assert_eq!(
            calls,
            [
                (CallKind::Bare, "free"),
                (CallKind::Qualified("Self".to_string()), "assoc"),
                (CallKind::Qualified("Other".to_string()), "q"),
                (CallKind::SelfMethod, "own"),
                (CallKind::Method, "meth"),
            ]
        );
    }

    #[test]
    fn nested_fn_bodies_are_not_charged_to_the_encloser() {
        let (syms, _) = collect_src(
            "fn outer() {\n\
                 fn inner() { let v = Vec::with_capacity(4); }\n\
                 let x = 1;\n\
             }\n",
        );
        let outer = syms.iter().find(|s| s.name == "outer").expect("outer");
        let inner = syms.iter().find(|s| s.name == "inner").expect("inner");
        assert!(outer.intrinsics.is_empty(), "{:?}", outer.intrinsics);
        assert_eq!(inner.intrinsics.len(), 1);
    }

    #[test]
    fn closure_bodies_are_charged_to_the_encloser() {
        let (syms, _) = collect_src("fn f() { let g = || Vec::with_capacity(2); g(); }\n");
        assert_eq!(syms.len(), 1);
        assert_eq!(syms[0].intrinsics.len(), 1);
    }

    #[test]
    fn markers_attach_and_dangling_markers_are_issues() {
        let (syms, issues) = collect_src(
            "// xtask-effect: hot_path\n\
             fn hot() {}\n\
             // xtask-effect: cold — refill slow path\n\
             fn slow() {}\n\
             #[cold]\n\
             fn attr_cold() {}\n\
             // xtask-effect: hot_path\n\
             struct NotAFn;\n",
        );
        assert!(syms[0].hot && !syms[0].cold);
        assert!(syms[1].cold && !syms[1].hot);
        assert!(syms[2].cold);
        assert_eq!(issues.len(), 1, "{:?}", issues[0].message);
        assert!(issues[0].message.contains("not attached"));
    }

    #[test]
    fn cold_without_reason_and_unknown_kinds_are_issues() {
        let (_, issues) = collect_src(
            "// xtask-effect: cold\n\
             fn a() {}\n\
             // xtask-effect: lukewarm — eh\n\
             fn b() {}\n",
        );
        assert_eq!(issues.len(), 2);
        assert!(issues[0].message.contains("missing its reason"));
        assert!(issues[1].message.contains("unknown effect marker"));
    }

    #[test]
    fn impl_header_parsing() {
        let parse = |src: &str| {
            let ctx = FileCtx::build(Path::new("crates/core/src/x.rs"), src).expect("parses");
            let Item::Impl(imp) = &ctx.ast.items[0] else {
                panic!()
            };
            impl_context(&imp.header)
        };
        assert_eq!(parse("impl Foo {}"), (None, Some("Foo".to_string())));
        assert_eq!(
            parse("impl<T: Clone> Foo<T> where T: Copy {}"),
            (None, Some("Foo".to_string()))
        );
        assert_eq!(
            parse("impl Probe for RingBufferSink {}"),
            (
                Some("Probe".to_string()),
                Some("RingBufferSink".to_string())
            )
        );
        assert_eq!(
            parse("impl<'a> conzone_types::Probe for Sink<'a> {}"),
            (Some("Probe".to_string()), Some("Sink".to_string()))
        );
    }

    #[test]
    fn macro_generated_fns_are_collected() {
        let (syms, _) = collect_src(
            "macro_rules! ignored { () => {} }\n\
             emit_fns! { fn generated() { target(); } }\n\
             fn target() {}\n",
        );
        let gen = syms.iter().find(|s| s.name == "generated");
        assert!(
            gen.is_some(),
            "{:?}",
            syms.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
        assert_eq!(gen.unwrap().calls[0].name, "target");
    }
}
