//! Parsing of `// xtask-lint: allow(rule) — reason` directives.
//!
//! A directive names one or more rules (comma-separated inside the
//! parentheses) and must carry a human-readable reason after the
//! closing parenthesis; a directive without a reason is rejected and
//! the violation it would have suppressed is annotated instead of
//! silenced. Directives are recognised on the violating line itself or
//! in the contiguous comment-only block immediately above it, and —
//! new in engine v2 — on the first line of any enclosing item, so one
//! directive above a function or module can vouch for its whole body.

/// One parsed directive occurrence on a comment line.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Directive {
    /// Rule names listed inside `allow(...)`, trimmed.
    pub rules: Vec<String>,
    /// Whether an alphanumeric reason follows the closing parenthesis.
    pub has_reason: bool,
}

/// Extracts every directive on a single (comment-view) line.
pub(crate) fn directives(comment_line: &str) -> Vec<Directive> {
    const NEEDLE: &str = "xtask-lint: allow(";
    let mut out = Vec::new();
    let mut rest = comment_line;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = &rest[pos + NEEDLE.len()..];
        let Some(close) = after.find(')') else {
            // Malformed (unclosed) directive: ignore it, like the
            // previous engine, which only matched fully spelled needles.
            break;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = after[close + 1..].trim_start_matches([' ', '\t', '—', '–', '-', ':']);
        let has_reason = reason.chars().any(|c| c.is_alphanumeric());
        if !rules.is_empty() {
            out.push(Directive { rules, has_reason });
        }
        rest = &after[close + 1..];
    }
    out
}

/// The annotation appended to a violation whose directive lacks a reason.
pub(crate) fn missing_reason(rule: &str) -> String {
    format!(
        "allow({rule}) directive is missing its reason \
         (write `// xtask-lint: allow({rule}) — <reason>`)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rule_with_reason_parses() {
        let d = directives("// xtask-lint: allow(hash-collections) — test-only scratch map");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rules, ["hash-collections"]);
        assert!(d[0].has_reason);
    }

    #[test]
    fn multiple_rules_share_one_directive() {
        let d = directives("// xtask-lint: allow(fleet-readiness, wall-clock) — profiler scratch");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rules, ["fleet-readiness", "wall-clock"]);
        assert!(d[0].has_reason);
    }

    #[test]
    fn missing_reason_is_detected() {
        let d = directives("// xtask-lint: allow(wall-clock)");
        assert_eq!(d.len(), 1);
        assert!(!d[0].has_reason);
        // Dash-only "reasons" do not count either.
        let d = directives("// xtask-lint: allow(wall-clock) — ");
        assert!(!d[0].has_reason);
    }

    #[test]
    fn two_directives_on_one_line_are_both_seen() {
        let d = directives(
            "// xtask-lint: allow(wall-clock) — bench loop; xtask-lint: allow(unwrap-expect) — ditto",
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].rules, ["wall-clock"]);
        assert_eq!(d[1].rules, ["unwrap-expect"]);
    }

    #[test]
    fn unclosed_directive_is_ignored() {
        assert!(directives("// xtask-lint: allow(wall-clock").is_empty());
        assert!(directives("// no directive here").is_empty());
    }
}
