//! The AST analysis engine behind `cargo xtask lint`.
//!
//! Engine v2 parses every library source with the vendored `syn`
//! stand-in and hands each rule a [`FileCtx`]: the parsed [`syn::File`],
//! a flattened token view ([`tokens::FlatTok`]), per-line
//! `#[cfg(test)]` classification derived from AST item extents, and the
//! comment/code split the allowlist machinery matches directives
//! against. Rules are per-file passes (`rules::run`) plus workspace
//! cross-checks (`rules::coverage`) that compare enum variants and
//! struct fields against their exporter mappings.

pub(crate) mod allow;
pub(crate) mod effects;
pub(crate) mod graph;
pub(crate) mod rules;
pub(crate) mod symbols;
pub(crate) mod tokens;

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::{FnEffects, Report, Violation, Warning};
use syn::visit::{self, Visit};
use tokens::FlatTok;

/// Per-crate rule applicability.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Policy {
    pub hash_collections: bool,
    pub wall_clock: bool,
    pub unwrap_expect: bool,
    pub fleet_readiness: bool,
    pub float_determinism: bool,
    pub truncating_cast: bool,
    pub wildcard_match: bool,
    /// Whether the crate participates in the workspace effect analysis
    /// (`hot-path-effects` + `effect-annotation`).
    pub effects: bool,
}

impl Policy {
    fn any(&self) -> bool {
        self.hash_collections
            || self.wall_clock
            || self.unwrap_expect
            || self.fleet_readiness
            || self.float_determinism
            || self.truncating_cast
            || self.wildcard_match
            || self.effects
    }

    /// Whether a (suppressible) rule applies to this crate. Coverage
    /// rules return false: they ignore the allowlist by design, so an
    /// allow naming them can never be "used".
    fn enables(&self, rule: &str) -> bool {
        match rule {
            "hash-collections" => self.hash_collections,
            "wall-clock" => self.wall_clock,
            "unwrap-expect" => self.unwrap_expect,
            "fleet-readiness" => self.fleet_readiness,
            "float-determinism" => self.float_determinism,
            "truncating-cast" => self.truncating_cast,
            "wildcard-match" => self.wildcard_match,
            "hot-path-effects" | "effect-annotation" => self.effects,
            _ => false,
        }
    }
}

/// Which rules apply to a crate. `bench` is exempt from everything (it
/// measures the wall clock on purpose); `xtask` lints itself out of scope
/// (its rule tables mention the banned identifiers).
pub(crate) fn policy_for(crate_name: &str) -> Policy {
    match crate_name {
        "bench" | "xtask" => Policy {
            hash_collections: false,
            wall_clock: false,
            unwrap_expect: false,
            fleet_readiness: false,
            float_determinism: false,
            truncating_cast: false,
            wildcard_match: false,
            effects: false,
        },
        "core" | "ftl" | "flash" | "sim" => Policy {
            hash_collections: true,
            wall_clock: true,
            unwrap_expect: true,
            fleet_readiness: true,
            float_determinism: true,
            truncating_cast: true,
            wildcard_match: true,
            effects: true,
        },
        // types, legacy, femu, host and the root `conzone` package hold
        // sim-visible state but surface errors as panics at the CLI edge.
        _ => Policy {
            hash_collections: true,
            wall_clock: true,
            unwrap_expect: false,
            fleet_readiness: true,
            float_determinism: true,
            truncating_cast: true,
            wildcard_match: true,
            effects: true,
        },
    }
}

/// Splits a source file into two same-length views: `code` (comments,
/// string and char literals blanked to spaces) and `comments` (everything
/// *except* comment text blanked). Newlines are preserved in both so line
/// numbers stay aligned. The AST carries spans for every token the rules
/// inspect, but allow directives live in comments — which the lexer
/// drops — so the directive scanner keeps this masked-text view.
pub(crate) fn split_source(src: &str) -> (String, String) {
    let b = src.as_bytes();
    let mut code = vec![b' '; b.len()];
    let mut comments = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                comments[i] = b[i];
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'\n' {
                    code[i] = b'\n';
                    comments[i] = b'\n';
                    i += 1;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    comments[i] = b[i];
                    comments[i + 1] = b[i + 1];
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    comments[i] = b[i];
                    comments[i + 1] = b[i + 1];
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    comments[i] = b[i];
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal `r"…"` / `r#"…"#…`.
        if c == b'r' && matches!(b.get(i + 1), Some(b'"') | Some(b'#')) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                code[i] = b'r';
                i = j + 1;
                while i < b.len() {
                    if b[i] == b'\n' {
                        code[i] = b'\n';
                        comments[i] = b'\n';
                        i += 1;
                    } else if b[i] == b'"' {
                        let close = (1..=hashes).all(|h| b.get(i + h) == Some(&b'#'));
                        if close {
                            i += 1 + hashes;
                            break;
                        }
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
            // `r` not starting a raw string: plain identifier character.
        }
        // String literal.
        if c == b'"' {
            code[i] = b'"';
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'\n' {
                    code[i] = b'\n';
                    comments[i] = b'\n';
                    i += 1;
                } else if b[i] == b'"' {
                    code[i] = b'"';
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals, `'a` in
        // `&'a str` is a lifetime and stays code.
        if c == b'\'' {
            let is_char = matches!(
                (b.get(i + 1), b.get(i + 2)),
                (Some(b'\\'), _) | (Some(_), Some(b'\''))
            );
            if is_char {
                code[i] = b'\'';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        code[i] = b'\'';
                        i += 1;
                        break;
                    } else if b[i] == b'\n' {
                        break;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        code[i] = c;
        i += 1;
    }
    (
        String::from_utf8_lossy(&code).into_owned(),
        String::from_utf8_lossy(&comments).into_owned(),
    )
}

/// The byte extent of one AST item: where a leading allow directive
/// would anchor (`first_line`), and the range a line must start in to
/// count as inside the item.
#[derive(Debug, Clone, Copy)]
struct ItemScope {
    /// 0-based line of the item's first token (its first attribute when
    /// it has any).
    first_line: usize,
    lo: usize,
    hi: usize,
    /// Byte offset of the `#[cfg(test)]` attribute, when present.
    cfg_test_lo: Option<usize>,
}

/// Collects every item's scope, recursing into modules, impls, traits
/// and items nested inside function bodies.
struct ScopeCollector {
    scopes: Vec<ItemScope>,
}

impl<'ast> Visit<'ast> for ScopeCollector {
    fn visit_item(&mut self, item: &'ast syn::Item) {
        let attrs = item.attrs();
        let anchor = item.span();
        let lo = attrs
            .first()
            .map_or(anchor.lo, |a| a.span.lo.min(anchor.lo));
        let first_line = attrs
            .first()
            .map_or(anchor.line, |a| a.span.line.min(anchor.line))
            .saturating_sub(1);
        self.scopes.push(ItemScope {
            first_line,
            lo,
            hi: item.end_byte(),
            cfg_test_lo: attrs.iter().find(|a| a.is_cfg_test()).map(|a| a.span.lo),
        });
        visit::walk_item(self, item);
    }
}

/// State shared by the per-file rules of one file.
pub(crate) struct FileCtx<'a> {
    pub rel: &'a Path,
    pub ast: syn::File,
    /// The file's tokens, flattened depth-first in source order.
    pub flat: Vec<FlatTok>,
    /// Masked code view, split into lines (strings/comments blanked).
    pub code_lines: Vec<String>,
    /// Masked comment view, split into lines (everything else blanked).
    pub comment_lines: Vec<String>,
    /// Per line: whether it starts inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Byte offset of each line's first character.
    line_starts: Vec<usize>,
    /// Extents of every item, for item-anchored allow directives.
    scopes: Vec<ItemScope>,
    /// `(directive line, rule)` pairs that suppressed a finding, for
    /// the unused-allow warnings.
    used_allows: RefCell<BTreeSet<(usize, String)>>,
}

impl<'a> FileCtx<'a> {
    /// Parses `src` and derives every per-file view the rules consume.
    pub(crate) fn build(rel: &'a Path, src: &str) -> Result<FileCtx<'a>, String> {
        let ast = syn::parse_file(src)
            .map_err(|e| format!("{}: {}:{}: {}", rel.display(), e.line, e.column, e.message))?;
        let flat = tokens::flatten(&ast.tokens);
        let mut collector = ScopeCollector { scopes: Vec::new() };
        collector.visit_file(&ast);

        let (code, comments) = split_source(src);
        let code_lines: Vec<String> = code.split('\n').map(str::to_string).collect();
        let comment_lines: Vec<String> = comments.split('\n').map(str::to_string).collect();
        let mut line_starts = Vec::with_capacity(code_lines.len());
        let mut offset = 0usize;
        for line in &code_lines {
            line_starts.push(offset);
            offset += line.len() + 1;
        }
        let in_test = line_starts
            .iter()
            .map(|&off| {
                collector
                    .scopes
                    .iter()
                    .any(|s| s.cfg_test_lo.is_some_and(|lo| off >= lo && off < s.hi))
            })
            .collect();

        Ok(FileCtx {
            rel,
            ast,
            flat,
            code_lines,
            comment_lines,
            in_test,
            line_starts,
            scopes: collector.scopes,
            used_allows: RefCell::new(BTreeSet::new()),
        })
    }

    /// Whether line `idx` (0-based) starts inside `#[cfg(test)]` code.
    pub(crate) fn in_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// Whether a valid allow directive for `rule` covers line `idx`:
    /// on the line itself, in the contiguous comment-only block
    /// immediately above it, or anchored to an enclosing item. Anchors
    /// are consulted most-specific first — line scope, then enclosing
    /// items innermost-outward — and the first directive naming the
    /// rule wins, so exactly one directive is marked used per
    /// suppression no matter how the anchors nest. Returns `Err` with
    /// a diagnostic when a directive names the rule but its reason is
    /// missing.
    fn allowed(&self, idx: usize, rule: &str) -> Result<bool, String> {
        let mut missing: Option<String> = None;
        match self.allowed_at(idx, rule) {
            Ok(true) => return Ok(true),
            Ok(false) => {}
            Err(why) => missing = Some(why),
        }
        let off = self.line_starts.get(idx).copied().unwrap_or(usize::MAX);
        let mut enclosing: Vec<&ItemScope> = self
            .scopes
            .iter()
            .filter(|s| s.first_line != idx && off >= s.lo && off < s.hi)
            .collect();
        // Innermost first: latest start, then earliest end as the
        // tie-break, so the resolution order is total and deterministic.
        enclosing.sort_by_key(|s| (std::cmp::Reverse(s.lo), s.hi));
        for s in enclosing {
            match self.allowed_at(s.first_line, rule) {
                Ok(true) => return Ok(true),
                Ok(false) => {}
                Err(why) => {
                    missing.get_or_insert(why);
                }
            }
        }
        match missing {
            Some(why) => Err(why),
            None => Ok(false),
        }
    }

    /// The anchor lines a directive for line `at` may live on: the line
    /// itself, then the contiguous comment-only block above it.
    pub(crate) fn anchor_candidates(&self, at: usize) -> Vec<usize> {
        let mut candidates = vec![at];
        let mut l = at;
        while l > 0 {
            l -= 1;
            let comment_only = self.code_lines.get(l).is_some_and(|c| c.trim().is_empty())
                && self
                    .comment_lines
                    .get(l)
                    .is_some_and(|c| !c.trim().is_empty());
            if comment_only {
                candidates.push(l);
            } else {
                break;
            }
        }
        candidates
    }

    /// The line-scope directive check over [`Self::anchor_candidates`].
    /// A successful suppression records the directive as used.
    fn allowed_at(&self, at: usize, rule: &str) -> Result<bool, String> {
        for l in self.anchor_candidates(at) {
            for d in allow::directives(&self.comment_lines[l]) {
                if d.rules.iter().any(|r| r == rule) {
                    if d.has_reason {
                        self.used_allows.borrow_mut().insert((l, rule.to_string()));
                        return Ok(true);
                    }
                    return Err(allow::missing_reason(rule));
                }
            }
        }
        Ok(false)
    }

    /// Allow check for analyses that pre-filter findings (the effect
    /// scan): true when a reasoned directive covers the line, marking
    /// it used.
    pub(crate) fn consume_allow(&self, idx: usize, rule: &str) -> bool {
        matches!(self.allowed(idx, rule), Ok(true))
    }

    /// Appends a warning for every reasoned allow directive that never
    /// suppressed anything, plus directives naming unknown or
    /// non-suppressible rules. Test lines are skipped (every rule
    /// already exempts them, so directives there are decoration).
    pub(crate) fn unused_allow_warnings(&self, policy: Policy, out: &mut Vec<Warning>) {
        let used = self.used_allows.borrow();
        for (idx, line) in self.comment_lines.iter().enumerate() {
            if self.in_test(idx) {
                continue;
            }
            for d in allow::directives(line) {
                for r in &d.rules {
                    let message = if !crate::RULES.contains(&r.as_str()) {
                        format!("allow({r}) names an unknown rule")
                    } else if matches!(
                        r.as_str(),
                        "counter-coverage" | "event-coverage" | "span-coverage"
                    ) {
                        format!("allow({r}) has no effect: coverage rules cannot be suppressed")
                    } else if !policy.enables(r) {
                        format!("allow({r}) has no effect: the rule does not apply to this crate")
                    } else if !used.contains(&(idx, r.clone())) {
                        format!("unused allow({r}): nothing on this anchor trips the rule")
                    } else {
                        continue;
                    };
                    out.push(Warning {
                        file: self.rel.to_path_buf(),
                        line: idx + 1,
                        message,
                    });
                }
            }
        }
    }

    /// Routes a finding through the allowlist and into `out`.
    pub(crate) fn push(
        &self,
        out: &mut Vec<Violation>,
        idx: usize,
        rule: &'static str,
        message: String,
    ) {
        let (line, message) = match self.allowed(idx, rule) {
            Ok(true) => return,
            Ok(false) => (idx + 1, message),
            Err(why) => (idx + 1, format!("{message} ({why})")),
        };
        out.push(Violation {
            file: self.rel.to_path_buf(),
            line,
            rule,
            message,
        });
    }
}

/// Scans one library source file with the per-file rules (rule unit
/// tests; production runs go through [`lint_workspace_report`]).
#[cfg(test)]
pub(crate) fn lint_file(
    rel: &Path,
    src: &str,
    policy: Policy,
    out: &mut Vec<Violation>,
) -> Result<(), String> {
    let ctx = FileCtx::build(rel, src)?;
    rules::run(&ctx, policy, out);
    Ok(())
}

/// Collects the library `.rs` files to lint under `root`, with their crate
/// names. Test trees (`tests/`, `benches/`, `tests.rs`, `proptests.rs`),
/// `examples/`, `vendor/`, `target/`, hidden directories and symlinks are
/// excluded — the walker never follows a link out of the tree it was
/// pointed at.
pub(crate) fn collect_sources(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let Ok(meta) = std::fs::symlink_metadata(&path) else {
                continue;
            };
            if meta.file_type().is_symlink() {
                continue;
            }
            if meta.is_dir() {
                if name.starts_with('.')
                    || matches!(
                        name.as_str(),
                        "target" | "vendor" | "tests" | "benches" | "examples"
                    )
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !matches!(name.as_str(), "tests.rs" | "proptests.rs")
            {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                let crate_name = match rel.components().nth(1) {
                    Some(c) if rel.starts_with("crates") => {
                        c.as_os_str().to_string_lossy().into_owned()
                    }
                    _ => "conzone".to_string(), // the root package's src/
                };
                out.push((path.clone(), crate_name));
            }
        }
    }
    Ok(out)
}

/// Runs every rule over the workspace at `root`, returning the sorted
/// violations.
pub(crate) fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(lint_workspace_report(root, None)?.violations)
}

/// The full two-phase pass.
///
/// Phase 1 parses every file once and runs the per-file rules; with
/// `changed` set (the `--changed` flag), per-file rules only run on the
/// listed files. Phase 2 keeps every parsed file alive and runs the
/// workspace analyses over all of them regardless of scoping — the
/// effect analysis and the coverage cross-checks are properties of the
/// whole tree, so a scoped run cannot skip them without losing their
/// guarantees. Unused-allow warnings are only computed on unscoped runs
/// (a scoped run leaves most allows legitimately unexercised).
pub(crate) fn lint_workspace_report(
    root: &Path,
    changed: Option<&[PathBuf]>,
) -> std::io::Result<Report> {
    let mut loaded: Vec<(PathBuf, String, String)> = Vec::new();
    for (path, crate_name) in collect_sources(root)? {
        if !policy_for(&crate_name).any() {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        loaded.push((rel, src, crate_name));
    }
    let mut ctxs: Vec<(FileCtx<'_>, Policy, &str)> = Vec::with_capacity(loaded.len());
    for (rel, src, crate_name) in &loaded {
        let ctx = FileCtx::build(rel, src)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        ctxs.push((ctx, policy_for(crate_name), crate_name));
    }
    let in_scope = |rel: &Path| changed.is_none_or(|c| c.iter().any(|p| p == rel));

    // Phase 1: per-file rules.
    let mut out = Vec::new();
    for (ctx, policy, _) in &ctxs {
        if in_scope(ctx.rel) {
            rules::run(ctx, *policy, &mut out);
        }
    }

    // Phase 2: workspace analyses over every parsed file.
    let mut syms = Vec::new();
    for (ctx, policy, crate_name) in &ctxs {
        if !policy.effects {
            continue;
        }
        let mut issues = Vec::new();
        symbols::collect(ctx, crate_name, &mut syms, &mut issues);
        for issue in issues {
            ctx.push(&mut out, issue.line, "effect-annotation", issue.message);
        }
    }
    let graph = graph::build(syms);
    graph.check_hot_paths(&mut out);
    rules::coverage::check_counter_coverage(root, &mut out);
    rules::coverage::check_event_coverage(root, &mut out);
    rules::coverage::check_span_coverage(root, &mut out);
    out.sort();

    let mut warnings = Vec::new();
    if changed.is_none() {
        for (ctx, policy, _) in &ctxs {
            ctx.unused_allow_warnings(*policy, &mut warnings);
        }
    }
    warnings.sort();

    let functions = graph
        .annotated_effects()
        .into_iter()
        .map(|f| FnEffects {
            function: f.qualified(),
            file: f.file.clone(),
            line: f.line,
            hot: f.hot,
            cold: f.cold,
            effects: f.effects.names(),
        })
        .collect();

    Ok(Report {
        violations: out,
        warnings,
        functions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_strings_and_comments() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */\n";
        let (code, comments) = split_source(src);
        assert!(!code.contains("HashMap"));
        assert_eq!(comments.matches("HashMap").count(), 2);
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let r = r#\"HashMap \"quoted\" \"#; let c = '\\''; let l: &'static str = s;\n";
        let (code, _) = split_source(src);
        assert!(!code.contains("HashMap"));
        assert!(code.contains("'static"));
    }

    #[test]
    fn cfg_test_lines_are_classified_from_the_ast() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn x() { a.unwrap(); }\n}\nfn tail() {}\n";
        let ctx = FileCtx::build(Path::new("crates/core/src/x.rs"), src).expect("parses");
        assert!(!ctx.in_test(0), "fn live");
        assert!(ctx.in_test(2), "mod tests body opens");
        assert!(ctx.in_test(3), "nested fn");
        assert!(ctx.in_test(4), "closing brace line");
        assert!(!ctx.in_test(5), "fn tail");
    }

    #[test]
    fn self_expect_is_not_flagged() {
        let mut out = Vec::new();
        let src = "fn f(&mut self) { self.expect(b'x'); data.expect(\"boom\"); }\n";
        lint_file(
            Path::new("crates/sim/src/json.rs"),
            src,
            policy_for("sim"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains(".expect"));
    }

    #[test]
    fn allow_directive_requires_reason() {
        let with_reason =
            "// xtask-lint: allow(hash-collections) — keyed only\nuse std::collections::HashMap;\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            with_reason,
            policy_for("core"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");

        let bare = "// xtask-lint: allow(hash-collections)\nuse std::collections::HashMap;\n";
        out.clear();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            bare,
            policy_for("core"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing its reason"), "{out:?}");
    }

    #[test]
    fn multi_rule_directive_suppresses_each_listed_rule() {
        let src = "// xtask-lint: allow(hash-collections, wall-clock) — scratch profiler state\n\
                   fn f() { let m: HashMap<u32, u32> = make(); let t = Instant::now(); }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            src,
            policy_for("core"),
            &mut out,
        )
        .expect("parses");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn item_anchored_directive_covers_the_whole_body() {
        // The directive sits above the fn, the violation is three lines
        // into its body: line-scope would miss it, item-scope finds it.
        let src = "// xtask-lint: allow(wall-clock) — startup banner only\n\
                   fn banner() {\n\
                       let a = 1;\n\
                       let b = 2;\n\
                       let t = Instant::now();\n\
                   }\n\
                   fn other() { let t = Instant::now(); }\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            src,
            policy_for("core"),
            &mut out,
        )
        .expect("parses");
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 7, "only the undirected fn is flagged");
    }

    #[test]
    fn directive_above_same_line_and_block_above_all_work() {
        for src in [
            "use std::collections::HashMap; // xtask-lint: allow(hash-collections) — keyed only\n",
            "// a longer explanation\n// xtask-lint: allow(hash-collections) — keyed only\nuse std::collections::HashMap;\n",
        ] {
            let mut out = Vec::new();
            lint_file(
                Path::new("crates/core/src/x.rs"),
                src,
                policy_for("core"),
                &mut out,
            )
            .expect("parses");
            assert!(out.is_empty(), "{src:?} -> {out:?}");
        }
    }
}
