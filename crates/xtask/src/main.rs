//! `cargo xtask` — repo-local developer tasks.
//!
//! The `.cargo/config.toml` alias makes `cargo xtask lint` run the
//! determinism-hygiene pass described in the library crate (and in
//! `docs/internals.md` §8). Exit status is nonzero when any rule fires,
//! so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ → the workspace root two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--root <path>]");
    eprintln!();
    eprintln!("Runs the determinism-hygiene lint pass over the workspace:");
    for rule in xtask::RULES {
        eprintln!("  - {rule}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = workspace_root();
    let mut cmd = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if cmd != Some("lint") {
        return usage();
    }

    match xtask::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean ({} rules)", xtask::RULES.len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
