//! `cargo xtask` — repo-local developer tasks.
//!
//! The `.cargo/config.toml` alias makes `cargo xtask lint` run the
//! determinism-hygiene pass described in the library crate (and in
//! `docs/internals.md` §8), and `cargo xtask bench` regenerate and
//! validate the committed `BENCH_<date>.json` performance snapshot
//! (`docs/internals.md` §9). Exit status is nonzero when any lint rule
//! fires or the snapshot fails validation, so CI can gate on both.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use conzone_sim::json::{self, Json};

fn workspace_root() -> PathBuf {
    // crates/xtask/ → the workspace root two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint  [--root <path>] [--json] [--changed]");
    eprintln!("       cargo xtask bench [--root <path>] [--smoke] [--out <path>]");
    eprintln!();
    eprintln!("lint — runs the determinism-hygiene pass over the workspace:");
    for rule in xtask::RULES {
        eprintln!("  - {rule}");
    }
    eprintln!();
    eprintln!("--changed scopes the per-file rules to files reported modified or");
    eprintln!("untracked by git; workspace rules (coverage, effect analysis)");
    eprintln!("always see the whole tree. Unused-allow warnings are suppressed");
    eprintln!("on scoped runs.");
    eprintln!();
    eprintln!("bench — builds and runs the `bench_snapshot` binary (selfprof");
    eprintln!("and counting-alloc enabled), writes BENCH_<date>.json (or --out),");
    eprintln!("and validates the emitted JSON: schema tag, required fields, the");
    eprintln!("observability overhead guard (attaching spans/probe must not");
    eprintln!("change simulated results), and the steady-state allocation guard");
    eprintln!("(hot paths must perform zero allocations per op after warmup).");
    eprintln!("--smoke shrinks the workloads for CI.");
    ExitCode::FAILURE
}

/// Root-relative paths of files git reports as modified or untracked,
/// for `lint --changed`. Errors (not a repo, git missing) are fatal: a
/// silently empty scope would make the lint vacuously pass.
fn changed_paths(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::new();
    for args in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let out = std::process::Command::new("git")
            .current_dir(root)
            .args(args)
            .output()
            .map_err(|e| format!("failed to run git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                paths.push(PathBuf::from(line));
            }
        }
    }
    paths.sort();
    paths.dedup();
    Ok(paths)
}

fn cmd_lint(root: &Path, json: bool, changed: bool) -> ExitCode {
    let scope = if changed {
        match changed_paths(root) {
            Ok(paths) => Some(paths),
            Err(e) => {
                eprintln!("xtask lint: --changed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    match xtask::lint_workspace_report(root, scope.as_deref()) {
        Ok(report) if json => {
            print!("{}", xtask::report_to_json(&report));
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            for w in &report.warnings {
                println!("{w}");
            }
            if report.violations.is_empty() {
                let scoped = scope
                    .as_ref()
                    .map(|s| format!(", {} changed file(s)", s.len()))
                    .unwrap_or_default();
                println!("xtask lint: clean ({} rules{scoped})", xtask::RULES.len());
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

/// Today's date as `YYYY-MM-DD` (UTC), via days-since-epoch to civil
/// conversion (Howard Hinnant's `civil_from_days` algorithm).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Checks the snapshot JSON: parseable, right schema tag, required
/// sections present, and both machine-independent guards green
/// (instrumentation must not change simulated results; reruns must be
/// sim-identical). Returns human-readable failures.
fn validate_snapshot(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let j = match json::parse(text) {
        Ok(j) => j,
        Err(e) => return vec![format!("snapshot is not valid JSON: {e}")],
    };
    match j.get("schema").and_then(Json::as_str) {
        Some("conzone-bench/1") => {}
        other => errs.push(format!(
            "schema tag is {other:?}, expected \"conzone-bench/1\""
        )),
    }
    match j.get("workloads").and_then(Json::as_array) {
        Some(ws) if !ws.is_empty() => {
            for w in ws {
                for field in ["name", "sim_ops", "wall_seconds", "ops_per_wall_second"] {
                    if w.get(field).is_none() {
                        errs.push(format!("a workload entry is missing `{field}`"));
                    }
                }
            }
        }
        _ => errs.push("`workloads` is missing or empty".to_string()),
    }
    match j
        .get("overhead")
        .and_then(|o| o.get("instrumented_identical"))
    {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => errs.push(
            "overhead guard FAILED: attaching spans/probe changed simulated results".to_string(),
        ),
        _ => errs.push("`overhead.instrumented_identical` is missing".to_string()),
    }
    match j.get("repro").and_then(|r| r.get("sim_identical")) {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            errs.push("repro guard FAILED: rerun changed simulated results".to_string());
        }
        _ => errs.push("`repro.sim_identical` is missing".to_string()),
    }
    // The steady-state allocation guard — the runtime cross-check of the
    // static `hot-path-effects` rule. The committed snapshot must come
    // from a counting build and must have measured zero allocations/op.
    let guard = j.get("alloc_guard");
    match guard.and_then(|g| g.get("enabled")) {
        Some(Json::Bool(true)) => match guard.and_then(|g| g.get("steady_state_zero")) {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => errs.push(
                "alloc guard FAILED: steady-state hot paths touched the global allocator"
                    .to_string(),
            ),
            _ => errs.push("`alloc_guard.steady_state_zero` is missing".to_string()),
        },
        Some(Json::Bool(false)) => errs.push(
            "alloc guard not compiled in: snapshot must be built with `counting-alloc`".to_string(),
        ),
        _ => errs.push("`alloc_guard.enabled` is missing".to_string()),
    }
    match guard
        .and_then(|g| g.get("workloads"))
        .and_then(Json::as_array)
    {
        Some(ws) if ws.len() >= 3 => {}
        _ => errs.push(
            "`alloc_guard.workloads` must cover all three reference workloads \
             (seqwrite, randread, qd-arbitrate)"
                .to_string(),
        ),
    }
    for field in ["selfprof", "peak_rss_bytes"] {
        if j.get(field).is_none() {
            errs.push(format!("`{field}` is missing"));
        }
    }
    errs
}

fn cmd_bench(root: &Path, smoke: bool, out: Option<PathBuf>) -> ExitCode {
    let out = out.unwrap_or_else(|| root.join(format!("BENCH_{}.json", today())));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = std::process::Command::new(cargo);
    cmd.current_dir(root).args([
        "run",
        "--release",
        "--quiet",
        "-p",
        "conzone-bench",
        "--features",
        "conzone-bench/selfprof,conzone-bench/counting-alloc",
        "--bin",
        "bench_snapshot",
        "--",
    ]);
    if smoke {
        cmd.arg("--smoke");
    }
    cmd.arg("--out").arg(&out);
    match cmd.status() {
        Ok(status) if status.success() => {}
        Ok(status) => {
            eprintln!("xtask bench: bench_snapshot exited with {status}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("xtask bench: failed to launch cargo: {e}");
            return ExitCode::FAILURE;
        }
    }

    let text = match std::fs::read_to_string(&out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench: cannot read {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    let errs = validate_snapshot(&text);
    if errs.is_empty() {
        // Advisory only: wall-clock repro depends on machine load, so it
        // never gates CI — the committed trajectory should stay within
        // ±10 % when regenerated on a quiet machine.
        if let Some(delta) = json::parse(&text)
            .ok()
            .and_then(|j| j.get("repro")?.get("delta_pct")?.as_f64())
        {
            if delta > 10.0 {
                eprintln!(
                    "xtask bench: warning — headline ops/wall-sec differed by \
                     {delta:.1} % between reruns (target ±10 %)"
                );
            }
        }
        println!("xtask bench: snapshot valid at {}", out.display());
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            println!("xtask bench: {e}");
        }
        println!("xtask bench: {} validation failure(s)", errs.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = workspace_root();
    let mut cmd = None;
    let mut smoke = false;
    let mut json = false;
    let mut changed = false;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "lint" | "bench" if cmd.is_none() => cmd = Some(a.as_str()),
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--json" if cmd == Some("lint") => json = true,
            "--changed" if cmd == Some("lint") => changed = true,
            "--smoke" if cmd == Some("bench") => smoke = true,
            "--out" if cmd == Some("bench") => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match cmd {
        Some("lint") => cmd_lint(&root, json, changed),
        Some("bench") => cmd_bench(&root, smoke, out),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_format_is_sane() {
        let d = today();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
        let year: u32 = d[..4].parse().unwrap();
        assert!((2024..2200).contains(&year), "{d}");
    }

    #[test]
    fn snapshot_validation_catches_failures() {
        assert!(!validate_snapshot("not json").is_empty());
        let bad_schema = r#"{"schema":"other/9"}"#;
        assert!(validate_snapshot(bad_schema)
            .iter()
            .any(|e| e.contains("schema tag")));
        let guard_fail = r#"{
            "schema": "conzone-bench/1",
            "workloads": [{"name":"w","sim_ops":1,"wall_seconds":0.1,"ops_per_wall_second":10.0}],
            "repro": {"sim_identical": true, "delta_pct": 1.0},
            "overhead": {"instrumented_identical": false},
            "alloc_guard": {"enabled": true, "steady_state_zero": true,
                            "workloads": [{"name":"a"},{"name":"b"},{"name":"c"}]},
            "selfprof": {"enabled": false},
            "peak_rss_bytes": 1
        }"#;
        let errs = validate_snapshot(guard_fail);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("overhead guard FAILED"), "{errs:?}");
        let ok = guard_fail.replace(
            r#""instrumented_identical": false"#,
            r#""instrumented_identical": true"#,
        );
        assert!(validate_snapshot(&ok).is_empty());
        let alloc_fail = ok.replace(
            r#""steady_state_zero": true"#,
            r#""steady_state_zero": false"#,
        );
        let errs = validate_snapshot(&alloc_fail);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("alloc guard FAILED"), "{errs:?}");
        let not_counting = ok.replace(r#""enabled": true"#, r#""enabled": false"#);
        assert!(validate_snapshot(&not_counting)
            .iter()
            .any(|e| e.contains("counting-alloc")));
    }
}
