//! The determinism-hygiene lint pass behind `cargo xtask lint`.
//!
//! ConZone's value as an emulator rests on bit-identical seeded reruns, so
//! this pass makes determinism a *statically enforced* property instead of
//! a test-observed one. Six rules:
//!
//! * [`hash-collections`] — no `std::collections::HashMap`/`HashSet` in
//!   crates that hold sim-visible state. Their iteration order is
//!   randomized per process (SipHash with random keys), so any iteration
//!   that feeds simulator behaviour breaks seeded reruns. Use `BTreeMap`/
//!   `BTreeSet` or an insertion-ordered structure, or annotate a keyed-only
//!   use with `// xtask-lint: allow(hash-collections) — <reason>`.
//! * [`wall-clock`] — no `Instant::now`, `SystemTime`, `thread_rng` or
//!   `rand::random` outside `crates/bench` and test code. Simulated time
//!   comes from `SimTime`; randomness from explicitly seeded generators.
//! * [`unwrap-expect`] — no `.unwrap()` / `.expect(…)` in non-test library
//!   code of `core`/`ftl`/`flash`/`sim`; return typed errors instead, or
//!   annotate a genuine data-structure invariant with an allow comment.
//! * [`counter-coverage`] — every public field of `Counters` must appear
//!   in the `named_fields!`/`since` exporter lists, so a newly added
//!   counter can never silently vanish from the JSON/metrics exports.
//! * [`event-coverage`] — every `DeviceEvent` variant must be handled by
//!   `kind_name`, `kind_index` and the `event_args` exporter mapping.
//! * [`span-coverage`] — every `SpanKind` variant must be handled by
//!   `name`, `index` and `breakdown_category`, so a newly added span kind
//!   can never silently miss the exporters or the breakdown
//!   reconciliation.
//!
//! The pass is a hand-rolled source scanner, not a `syn` parse: the build
//! environment is fully offline (`vendor/` is the only dependency source
//! and carries no proc-macro stack), and the rules only need lexical
//! structure — comments and string literals stripped, `#[cfg(test)]`
//! item extents tracked by brace matching. The scanner is conservative:
//! it masks strings, char literals, line/block (and doc) comments before
//! matching, so a `"HashMap"` inside a string or doc comment never trips
//! a rule.
//!
//! # Allowlist syntax
//!
//! A violation on line *N* is suppressed by a comment on line *N* or
//! *N − 1* of the form:
//!
//! ```text
//! // xtask-lint: allow(hash-collections) — keyed lookups only, never iterated
//! ```
//!
//! The reason after the dash is mandatory; a bare `allow(...)` does not
//! suppress anything (the diagnostic says so).

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in diagnostics and allow directives.
pub const RULES: [&str; 6] = [
    "hash-collections",
    "wall-clock",
    "unwrap-expect",
    "counter-coverage",
    "event-coverage",
    "span-coverage",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Per-crate rule applicability.
#[derive(Debug, Clone, Copy)]
struct Policy {
    hash_collections: bool,
    wall_clock: bool,
    unwrap_expect: bool,
}

/// Which rules apply to a crate. `bench` is exempt from everything (it
/// measures the wall clock on purpose); `xtask` lints itself out of scope
/// (its rule tables mention the banned identifiers).
fn policy_for(crate_name: &str) -> Policy {
    match crate_name {
        "bench" | "xtask" => Policy {
            hash_collections: false,
            wall_clock: false,
            unwrap_expect: false,
        },
        "core" | "ftl" | "flash" | "sim" => Policy {
            hash_collections: true,
            wall_clock: true,
            unwrap_expect: true,
        },
        // types, legacy, femu, host and the root `conzone` package hold
        // sim-visible state but surface errors as panics at the CLI edge.
        _ => Policy {
            hash_collections: true,
            wall_clock: true,
            unwrap_expect: false,
        },
    }
}

/// Splits a source file into two same-length views: `code` (comments,
/// string and char literals blanked to spaces) and `comments` (everything
/// *except* comment text blanked). Newlines are preserved in both so line
/// numbers stay aligned.
fn split_source(src: &str) -> (String, String) {
    let b = src.as_bytes();
    let mut code = vec![b' '; b.len()];
    let mut comments = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
            i += 1;
            continue;
        }
        // Line comment (covers `///` and `//!` doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                comments[i] = b[i];
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'\n' {
                    code[i] = b'\n';
                    comments[i] = b'\n';
                    i += 1;
                } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    comments[i] = b[i];
                    comments[i + 1] = b[i + 1];
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    comments[i] = b[i];
                    comments[i + 1] = b[i + 1];
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    comments[i] = b[i];
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal `r"…"` / `r#"…"#…`.
        if c == b'r' && matches!(b.get(i + 1), Some(b'"') | Some(b'#')) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                code[i] = b'r';
                i = j + 1;
                while i < b.len() {
                    if b[i] == b'\n' {
                        code[i] = b'\n';
                        comments[i] = b'\n';
                        i += 1;
                    } else if b[i] == b'"' {
                        let close = (1..=hashes).all(|h| b.get(i + h) == Some(&b'#'));
                        if close {
                            i += 1 + hashes;
                            break;
                        }
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
            // `r` not starting a raw string: plain identifier character.
        }
        // String literal.
        if c == b'"' {
            code[i] = b'"';
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'\n' {
                    code[i] = b'\n';
                    comments[i] = b'\n';
                    i += 1;
                } else if b[i] == b'"' {
                    code[i] = b'"';
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` / `'\n'` are literals, `'a` in
        // `&'a str` is a lifetime and stays code.
        if c == b'\'' {
            let is_char = matches!(
                (b.get(i + 1), b.get(i + 2)),
                (Some(b'\\'), _) | (Some(_), Some(b'\''))
            );
            if is_char {
                code[i] = b'\'';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        code[i] = b'\'';
                        i += 1;
                        break;
                    } else if b[i] == b'\n' {
                        break;
                    } else {
                        i += 1;
                    }
                }
                continue;
            }
        }
        code[i] = c;
        i += 1;
    }
    (
        String::from_utf8_lossy(&code).into_owned(),
        String::from_utf8_lossy(&comments).into_owned(),
    )
}

/// Byte ranges of `#[cfg(test)]`-gated items in masked code, found by
/// brace matching from the attribute to the end of the following item.
fn test_ranges(code: &str) -> Vec<(usize, usize)> {
    const MARKER: &str = "#[cfg(test)]";
    let bytes = code.as_bytes();
    let mut ranges = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(MARKER) {
        let start = from + pos;
        let mut j = start + MARKER.len();
        // Find the item body: the first `{` opens it; a `;` first means an
        // out-of-line `mod tests;` (the file itself is then test-classified
        // by its path).
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(o) => {
                let mut depth = 0usize;
                let mut k = o;
                loop {
                    if k >= bytes.len() {
                        break k;
                    }
                    match bytes[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j + 1,
        };
        ranges.push((start, end));
        from = end.max(start + 1).min(code.len());
    }
    ranges
}

/// Whether an identifier occurrence at `at..at+len` is a whole word.
fn whole_word(code: &str, at: usize, len: usize) -> bool {
    let b = code.as_bytes();
    let is_ident = |c: u8| c == b'_' || c.is_ascii_alphanumeric();
    let before_ok = at == 0 || !is_ident(b[at - 1]);
    let after_ok = at + len >= b.len() || !is_ident(b[at + len]);
    before_ok && after_ok
}

/// State shared by the per-line rules of one file.
struct FileCtx<'a> {
    rel: &'a Path,
    code_lines: Vec<&'a str>,
    comment_lines: Vec<&'a str>,
    /// Per line: whether it starts inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
}

impl FileCtx<'_> {
    /// Whether line `idx` (0-based) carries a valid allow directive for
    /// `rule` on itself or in the contiguous comment block immediately
    /// above it. Returns `Err` with a diagnostic when a directive exists
    /// but its reason is missing.
    fn allowed(&self, idx: usize, rule: &str) -> Result<bool, String> {
        let needle = format!("xtask-lint: allow({rule})");
        let mut candidates = vec![idx];
        let mut l = idx;
        while l > 0 {
            l -= 1;
            let comment_only =
                self.code_lines[l].trim().is_empty() && !self.comment_lines[l].trim().is_empty();
            if comment_only {
                candidates.push(l);
            } else {
                break;
            }
        }
        for l in candidates {
            let comment = self.comment_lines[l];
            if let Some(at) = comment.find(&needle) {
                let rest = comment[at + needle.len()..]
                    .trim_start_matches([' ', '\t', '—', '–', '-', ':']);
                if rest.chars().any(|c| c.is_alphanumeric()) {
                    return Ok(true);
                }
                return Err(format!(
                    "allow({rule}) directive is missing its reason \
                     (write `// xtask-lint: allow({rule}) — <reason>`)"
                ));
            }
        }
        Ok(false)
    }

    fn push(&self, out: &mut Vec<Violation>, idx: usize, rule: &'static str, message: String) {
        let (line, message) = match self.allowed(idx, rule) {
            Ok(true) => return,
            Ok(false) => (idx + 1, message),
            Err(why) => (idx + 1, format!("{message} ({why})")),
        };
        out.push(Violation {
            file: self.rel.to_path_buf(),
            line,
            rule,
            message,
        });
    }
}

/// Scans one library source file with the per-line rules.
fn lint_file(rel: &Path, src: &str, policy: Policy, out: &mut Vec<Violation>) {
    let (code, comments) = split_source(src);
    let ranges = test_ranges(&code);
    let mut offset = 0usize;
    let mut in_test = Vec::new();
    let code_lines: Vec<&str> = code.split('\n').collect();
    for line in &code_lines {
        in_test.push(ranges.iter().any(|&(s, e)| offset >= s && offset < e));
        offset += line.len() + 1;
    }
    let ctx = FileCtx {
        rel,
        comment_lines: comments.split('\n').collect(),
        in_test,
        code_lines,
    };

    for (idx, line) in ctx.code_lines.iter().enumerate() {
        if ctx.in_test[idx] {
            continue;
        }
        if policy.hash_collections {
            for name in ["HashMap", "HashSet"] {
                let mut from = 0;
                while let Some(pos) = line[from..].find(name) {
                    let at = from + pos;
                    if whole_word(line, at, name.len()) {
                        ctx.push(
                            out,
                            idx,
                            "hash-collections",
                            format!(
                                "{name} in sim-visible state: iteration order is \
                                 randomized per process and breaks seeded reruns; \
                                 use BTreeMap/BTreeSet or an insertion-ordered \
                                 structure"
                            ),
                        );
                        break; // one diagnostic per line per identifier
                    }
                    from = at + name.len();
                }
            }
        }
        if policy.wall_clock {
            for pat in ["Instant::now", "SystemTime", "thread_rng", "rand::random"] {
                if let Some(at) = line.find(pat) {
                    if whole_word(line, at, pat.len()) {
                        ctx.push(
                            out,
                            idx,
                            "wall-clock",
                            format!(
                                "{pat} is ambient nondeterminism: simulated time \
                                 comes from SimTime and randomness from seeded \
                                 generators (bench and test code are exempt)"
                            ),
                        );
                    }
                }
            }
        }
        if policy.unwrap_expect {
            for pat in [".unwrap()", ".expect("] {
                let mut from = 0;
                while let Some(pos) = line[from..].find(pat) {
                    let at = from + pos;
                    // `self.expect(…)` is a user-defined method (e.g. the
                    // JSON parser), not Option/Result::expect.
                    let receiver_is_self = line[..at].trim_end().ends_with("self")
                        && !line[..at].trim_end().strip_suffix("self").is_some_and(|p| {
                            p.ends_with(|c: char| c == '_' || c.is_alphanumeric())
                        });
                    if !receiver_is_self {
                        ctx.push(
                            out,
                            idx,
                            "unwrap-expect",
                            format!(
                                "{} in non-test library code: return a typed \
                                 error (DeviceError/FlashError/JsonError) instead",
                                pat.trim_end_matches('(')
                            ),
                        );
                    }
                    from = at + pat.len();
                }
            }
        }
    }
}

/// Extracts the comma-separated identifiers of a `name!( … )` macro
/// invocation body from masked code.
fn macro_ident_list(code: &str, name: &str) -> Option<Vec<String>> {
    let at = code.find(&format!("{name}!"))?;
    let open = at + code[at..].find('(')?;
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    let mut end = open;
    for (k, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    end = k;
                    break;
                }
            }
            _ => {}
        }
    }
    Some(
        code[open + 1..end]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
    )
}

/// Extracts a brace-delimited body starting at the first occurrence of
/// `marker` in masked code. Returns (body, line_of_marker).
fn brace_body<'a>(code: &'a str, marker: &str) -> Option<(&'a str, usize)> {
    let at = code.find(marker)?;
    let open = at + code[at..].find('{')?;
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (k, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    let line = code[..at].matches('\n').count() + 1;
                    return Some((&code[open + 1..k], line));
                }
            }
            _ => {}
        }
    }
    None
}

/// Field names of the `Counters` struct: `pub <ident>: u64,` lines.
fn counters_struct_fields(body: &str) -> Vec<String> {
    body.lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("pub ")?;
            let (name, ty) = rest.split_once(':')?;
            let ty = ty.trim().trim_end_matches(',');
            (ty == "u64").then(|| name.trim().to_string())
        })
        .collect()
}

/// `<prefix><Variant>` references (e.g. `DeviceEvent::HostRead`) inside a
/// body of masked code. `prefix` includes the trailing `::`.
fn variant_refs(body: &str, prefix: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut from = 0;
    while let Some(pos) = body[from..].find(prefix) {
        let at = from + pos + prefix.len();
        let ident: String = body[at..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            out.insert(ident.clone());
        }
        from = at + ident.len().max(1);
    }
    out
}

/// Variant names of an enum body: identifiers at brace depth 0 of the body
/// (fields of struct variants sit one level deeper).
fn enum_variants(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut ident = String::new();
    for c in body.chars() {
        match c {
            '{' | '(' => {
                if depth == 0 && !ident.is_empty() {
                    out.push(std::mem::take(&mut ident));
                }
                depth += 1;
            }
            '}' | ')' => depth = depth.saturating_sub(1),
            c if depth == 0 && (c.is_alphanumeric() || c == '_') => ident.push(c),
            ',' if depth == 0 && !ident.is_empty() => {
                out.push(std::mem::take(&mut ident));
            }
            _ if depth == 0 => {
                // `#[…]` attributes never occur un-braced inside this enum;
                // whitespace and separators end the current identifier.
                if !ident.is_empty() && !c.is_whitespace() {
                    ident.clear();
                }
                if c.is_whitespace() && !ident.is_empty() {
                    out.push(std::mem::take(&mut ident));
                }
            }
            _ => {}
        }
    }
    if !ident.is_empty() {
        out.push(ident);
    }
    // Variant names are CamelCase; drop stray lowercase tokens (none are
    // expected, but keep the parse conservative).
    out.retain(|v| v.chars().next().is_some_and(char::is_uppercase));
    out
}

/// Cross-checks `Counters` fields against the exporter field lists.
fn check_counter_coverage(root: &Path, out: &mut Vec<Violation>) {
    let path = root.join("crates/types/src/counters.rs");
    let Ok(src) = std::fs::read_to_string(&path) else {
        return; // fixture trees without a types crate skip this rule
    };
    let rel = PathBuf::from("crates/types/src/counters.rs");
    let (code, _) = split_source(&src);
    let Some((struct_body, struct_line)) = brace_body(&code, "pub struct Counters") else {
        return;
    };
    let fields = counters_struct_fields(struct_body);
    for (macro_name, what) in [
        ("fields", "named_fields exporter list"),
        ("diff", "since() interval diff"),
    ] {
        let Some(listed) = macro_ident_list(&code, macro_name) else {
            out.push(Violation {
                file: rel.clone(),
                line: struct_line,
                rule: "counter-coverage",
                message: format!("could not locate the {macro_name}!(…) {what}"),
            });
            continue;
        };
        let listed_set: BTreeSet<&str> = listed.iter().map(String::as_str).collect();
        for f in &fields {
            if !listed_set.contains(f.as_str()) {
                out.push(Violation {
                    file: rel.clone(),
                    line: struct_line,
                    rule: "counter-coverage",
                    message: format!(
                        "Counters field `{f}` is missing from the {what}: \
                         it would silently vanish from every exporter"
                    ),
                });
            }
        }
        let field_set: BTreeSet<&str> = fields.iter().map(String::as_str).collect();
        for l in &listed {
            if !field_set.contains(l.as_str()) {
                out.push(Violation {
                    file: rel.clone(),
                    line: struct_line,
                    rule: "counter-coverage",
                    message: format!("{what} names `{l}`, which is not a Counters field"),
                });
            }
        }
    }
}

/// Cross-checks `DeviceEvent` variants against `kind_name`, `kind_index`
/// and the `event_args` exporter mapping.
fn check_event_coverage(root: &Path, out: &mut Vec<Violation>) {
    let trace_path = root.join("crates/types/src/trace.rs");
    let Ok(trace_src) = std::fs::read_to_string(&trace_path) else {
        return;
    };
    let trace_rel = PathBuf::from("crates/types/src/trace.rs");
    let (trace_code, _) = split_source(&trace_src);
    let Some((enum_body, enum_line)) = brace_body(&trace_code, "pub enum DeviceEvent") else {
        return;
    };
    let variants = enum_variants(enum_body);

    fn check(
        variants: &[String],
        covered: &BTreeSet<String>,
        place: &str,
        file: &Path,
        line: usize,
        out: &mut Vec<Violation>,
    ) {
        for v in variants {
            if !covered.contains(v) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line,
                    rule: "event-coverage",
                    message: format!("DeviceEvent::{v} is not handled by {place}"),
                });
            }
        }
    }

    for fn_name in ["fn kind_name", "fn kind_index"] {
        match brace_body(&trace_code, fn_name) {
            Some((body, line)) => {
                check(
                    &variants,
                    &variant_refs(body, "DeviceEvent::"),
                    fn_name,
                    &trace_rel,
                    line,
                    out,
                );
            }
            None => out.push(Violation {
                file: trace_rel.clone(),
                line: enum_line,
                rule: "event-coverage",
                message: format!("could not locate `{fn_name}` next to DeviceEvent"),
            }),
        }
    }

    let export_path = root.join("crates/sim/src/export.rs");
    if let Ok(export_src) = std::fs::read_to_string(&export_path) {
        let export_rel = PathBuf::from("crates/sim/src/export.rs");
        let (export_code, _) = split_source(&export_src);
        match brace_body(&export_code, "fn event_args") {
            Some((body, line)) => check(
                &variants,
                &variant_refs(body, "DeviceEvent::"),
                "the event_args exporter mapping",
                &export_rel,
                line,
                out,
            ),
            None => out.push(Violation {
                file: export_rel,
                line: 1,
                rule: "event-coverage",
                message: "could not locate `fn event_args` in the exporter".to_string(),
            }),
        }
    }
}

/// Cross-checks `SpanKind` variants against `name`, `index` and
/// `breakdown_category` — the three total mappings every exporter and the
/// breakdown reconciliation rely on.
fn check_span_coverage(root: &Path, out: &mut Vec<Violation>) {
    let span_path = root.join("crates/types/src/span.rs");
    let Ok(span_src) = std::fs::read_to_string(&span_path) else {
        return; // fixture trees without a span module skip this rule
    };
    let span_rel = PathBuf::from("crates/types/src/span.rs");
    let (span_code, _) = split_source(&span_src);
    let Some((enum_body, enum_line)) = brace_body(&span_code, "pub enum SpanKind") else {
        return;
    };
    let variants = enum_variants(enum_body);

    for fn_name in ["fn name", "fn index", "fn breakdown_category"] {
        match brace_body(&span_code, fn_name) {
            Some((body, line)) => {
                let covered = variant_refs(body, "SpanKind::");
                for v in &variants {
                    if !covered.contains(v) {
                        out.push(Violation {
                            file: span_rel.clone(),
                            line,
                            rule: "span-coverage",
                            message: format!("SpanKind::{v} is not handled by {fn_name}"),
                        });
                    }
                }
            }
            None => out.push(Violation {
                file: span_rel.clone(),
                line: enum_line,
                rule: "span-coverage",
                message: format!("could not locate `{fn_name}` next to SpanKind"),
            }),
        }
    }
}

/// Collects the library `.rs` files to lint under `root`, with their crate
/// names. Test trees (`tests/`, `benches/`, `tests.rs`, `proptests.rs`),
/// `examples/`, `vendor/`, `target/` and hidden directories are excluded.
fn collect_sources(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if path.is_dir() {
                if name.starts_with('.')
                    || matches!(
                        name.as_str(),
                        "target" | "vendor" | "tests" | "benches" | "examples"
                    )
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !matches!(name.as_str(), "tests.rs" | "proptests.rs")
            {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                let crate_name = match rel.components().nth(1) {
                    Some(c) if rel.starts_with("crates") => {
                        c.as_os_str().to_string_lossy().into_owned()
                    }
                    _ => "conzone".to_string(), // the root package's src/
                };
                out.push((path.clone(), crate_name));
            }
        }
    }
    Ok(out)
}

/// Runs every rule over the workspace at `root`, returning the sorted
/// violations.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (path, crate_name) in collect_sources(root)? {
        let policy = policy_for(&crate_name);
        if !(policy.hash_collections || policy.wall_clock || policy.unwrap_expect) {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        lint_file(&rel, &src, policy, &mut out);
    }
    check_counter_coverage(root, &mut out);
    check_event_coverage(root, &mut out);
    check_span_coverage(root, &mut out);
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_strings_and_comments() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */\n";
        let (code, comments) = split_source(src);
        assert!(!code.contains("HashMap"));
        assert_eq!(comments.matches("HashMap").count(), 2);
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn masking_handles_raw_strings_and_chars() {
        let src = "let r = r#\"HashMap \"quoted\" \"#; let c = '\\''; let l: &'static str = s;\n";
        let (code, _) = split_source(src);
        assert!(!code.contains("HashMap"));
        assert!(code.contains("'static"));
    }

    #[test]
    fn test_ranges_cover_cfg_test_items() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn x() { a.unwrap(); }\n}\nfn tail() {}\n";
        let (code, _) = split_source(src);
        let ranges = test_ranges(&code);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        assert!(code[s..e].contains("unwrap"));
        assert!(!code[e..].contains("unwrap"));
    }

    #[test]
    fn enum_variant_extraction() {
        let body = "\n  Alpha {\n x: u64,\n },\n Beta,\n Gamma { y: Inner },\n";
        assert_eq!(enum_variants(body), ["Alpha", "Beta", "Gamma"]);
    }

    #[test]
    fn self_expect_is_not_flagged() {
        let mut out = Vec::new();
        let src = "fn f(&mut self) { self.expect(b'x'); data.expect(\"boom\"); }\n";
        lint_file(
            Path::new("crates/sim/src/json.rs"),
            src,
            policy_for("sim"),
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains(".expect"));
    }

    #[test]
    fn allow_directive_requires_reason() {
        let with_reason =
            "// xtask-lint: allow(hash-collections) — keyed only\nuse std::collections::HashMap;\n";
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            with_reason,
            policy_for("core"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");

        let bare = "// xtask-lint: allow(hash-collections)\nuse std::collections::HashMap;\n";
        out.clear();
        lint_file(
            Path::new("crates/core/src/x.rs"),
            bare,
            policy_for("core"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing its reason"), "{out:?}");
    }
}
