//! The determinism-hygiene lint pass behind `cargo xtask lint`.
//!
//! ConZone's value as an emulator rests on bit-identical seeded reruns
//! and (for fleet mode) on device state that can shard across worker
//! threads, so this pass makes both *statically enforced* properties
//! instead of test-observed ones. Twelve rules:
//!
//! * [`hash-collections`] — no `std::collections::HashMap`/`HashSet` in
//!   crates that hold sim-visible state. Their iteration order is
//!   randomized per process (SipHash with random keys), so any iteration
//!   that feeds simulator behaviour breaks seeded reruns. Use `BTreeMap`/
//!   `BTreeSet` or an insertion-ordered structure, or annotate a keyed-only
//!   use with `// xtask-lint: allow(hash-collections) — <reason>`.
//! * [`wall-clock`] — no `Instant::now`, `SystemTime`, `thread_rng` or
//!   `rand::random` outside `crates/bench` and test code. Simulated time
//!   comes from `SimTime`; randomness from explicitly seeded generators.
//! * [`unwrap-expect`] — no `.unwrap()` / `.expect(…)` in non-test library
//!   code of `core`/`ftl`/`flash`/`sim`; return typed errors instead, or
//!   annotate a genuine data-structure invariant with an allow comment.
//! * [`counter-coverage`] — every public field of `Counters` must appear
//!   in the `named_fields!`/`since` exporter lists, so a newly added
//!   counter can never silently vanish from the JSON/metrics exports.
//! * [`event-coverage`] — every `DeviceEvent` variant must be handled by
//!   `kind_name`, `kind_index` and the `event_args` exporter mapping.
//! * [`span-coverage`] — every `SpanKind` variant must be handled by
//!   `name`, `index` and `breakdown_category`, so a newly added span kind
//!   can never silently miss the exporters or the breakdown
//!   reconciliation.
//! * [`fleet-readiness`] — no `Rc`/`RefCell`/`Cell`/`UnsafeCell`,
//!   `thread_local!` or `static mut` in sim-visible crates: device state
//!   must be `Send` so the fleet runner can shard devices across worker
//!   threads without silent per-thread divergence.
//! * [`float-determinism`] — no `f32`/`f64` in sim-visible type positions
//!   (struct/enum fields, const/static types, fn parameters); float
//!   rounding varies with platform and optimization level. The stats/
//!   export/json boundary files in `crates/sim` are exempt.
//! * [`truncating-cast`] — no narrowing `as` casts (`u8`/`u16`/`u32`/
//!   `i8`/`i16`/`i32` targets) on runtime values: sim times, counters and
//!   addresses are `u64` and silent wraps skew results without failing.
//! * [`wildcard-match`] — no `_ =>` arms on matches over `DeviceEvent`,
//!   `SpanKind`, `InvariantKind` or `FaultKind`; a wildcard defeats the
//!   coverage rules by silently absorbing newly added variants.
//! * [`hot-path-effects`] — functions marked `// xtask-effect: hot_path`
//!   must be *transitively* free of allocation, explicit panics, locks
//!   and wall-clock reads. A workspace call graph propagates an effect
//!   lattice (allocates, panics, bounds, locks, wall_clock, rng) from a
//!   builtin std table to fixpoint; violations name the full call chain
//!   and anchor at the leaf site. `#[cold]` / `// xtask-effect: cold —
//!   <reason>` functions cut propagation (the slow-path escape hatch).
//!   The steady-state allocation guard in `cargo xtask bench` is this
//!   rule's runtime cross-check.
//! * [`effect-annotation`] — the effect markers themselves must be
//!   well-formed: attached to a function, a known kind (`hot_path` or
//!   `cold`), `cold` carrying a reason, and never both on one function.
//!
//! # Engine
//!
//! Since engine v2 the pass parses every file with the vendored `syn`
//! stand-in (the build is fully offline; `vendor/` is the only
//! dependency source) and runs the rules as AST/token passes over a
//! per-file context: parsed items, a flattened token view with exact
//! spans, and `#[cfg(test)]` extents derived from item attributes. A
//! `"HashMap"` inside a string or doc comment can never trip a rule —
//! the lexer never produces a token for it.
//!
//! # Allowlist syntax
//!
//! A violation on line *N* is suppressed by a comment on line *N*, in
//! the contiguous comment block immediately above it, or above any
//! enclosing item (fn, mod, impl, …), of the form:
//!
//! ```text
//! // xtask-lint: allow(hash-collections) — keyed lookups only, never iterated
//! // xtask-lint: allow(fleet-readiness, wall-clock) — profiler scratch state
//! ```
//!
//! The reason after the dash is mandatory; a bare `allow(...)` does not
//! suppress anything (the diagnostic says so). The coverage rules
//! ignore the allowlist entirely: an exporter gap is only fixable.

mod engine;

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in diagnostics and allow directives.
pub const RULES: [&str; 12] = [
    "hash-collections",
    "wall-clock",
    "unwrap-expect",
    "counter-coverage",
    "event-coverage",
    "span-coverage",
    "fleet-readiness",
    "float-determinism",
    "truncating-cast",
    "wildcard-match",
    "hot-path-effects",
    "effect-annotation",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A non-fatal finding: the lint still passes, but something deserves
/// attention — today, allow directives that no longer suppress anything.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Warning {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number of the directive.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: warning: {}",
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Inferred transitive effects of one effect-annotated function, for
/// the JSON report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnEffects {
    /// `crate::Type::name` (or `crate::name` for free functions).
    pub function: String,
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Marked `// xtask-effect: hot_path`.
    pub hot: bool,
    /// Marked cold (`#[cold]` or `// xtask-effect: cold — <reason>`).
    pub cold: bool,
    /// Transitive effect names, in lattice-bit order.
    pub effects: Vec<&'static str>,
}

/// The full result of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Rule violations (failures), sorted.
    pub violations: Vec<Violation>,
    /// Non-fatal warnings, sorted. Empty on `--changed` runs: a scoped
    /// run exercises too few rules to judge whether an allow is unused.
    pub warnings: Vec<Warning>,
    /// Per-function inferred effects for every annotated function.
    pub functions: Vec<FnEffects>,
}

/// Runs every rule over the workspace at `root`, returning the sorted
/// violations.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    engine::lint_workspace(root)
}

/// Runs the lint and returns the full report. When `changed` is given,
/// per-file rules run only over those root-relative paths; workspace
/// rules (coverage, effect analysis) always see the whole tree — a
/// call-graph property cannot be judged from a partial view.
pub fn lint_workspace_report(root: &Path, changed: Option<&[PathBuf]>) -> std::io::Result<Report> {
    engine::lint_workspace_report(root, changed)
}

/// Renders violations as a JSON report with a stable field order
/// (`rules`, `violation_count`, then `violations`, each with `file`,
/// `line`, `rule`, `message`), so snapshots and CI consumers can diff
/// the output textually.
pub fn violations_to_json(violations: &[Violation]) -> String {
    let mut out = String::from("{\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{}", json_string(r));
    }
    let _ = write!(
        out,
        "],\n  \"violation_count\": {},\n  \"violations\": [",
        violations.len()
    );
    for (i, v) in violations.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&v.file.display().to_string()),
            v.line,
            json_string(v.rule),
            json_string(&v.message)
        );
    }
    if violations.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Renders the full report as JSON with a stable field order (`rules`,
/// `violation_count`, `violations`, `warning_count`, `warnings`, then
/// `functions` with per-function inferred effects), so snapshots and CI
/// consumers can diff the output textually.
pub fn report_to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{}", json_string(r));
    }
    let _ = write!(
        out,
        "],\n  \"violation_count\": {},\n  \"violations\": [",
        report.violations.len()
    );
    for (i, v) in report.violations.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&v.file.display().to_string()),
            v.line,
            json_string(v.rule),
            json_string(&v.message)
        );
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"warning_count\": {},\n  \"warnings\": [",
        report.warnings.len()
    );
    for (i, w) in report.warnings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": {}, \"line\": {}, \"message\": {}}}",
            json_string(&w.file.display().to_string()),
            w.line,
            json_string(&w.message)
        );
    }
    if !report.warnings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"functions\": [");
    for (i, f) in report.functions.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let mut effects = String::from("[");
        for (j, e) in f.effects.iter().enumerate() {
            let esep = if j == 0 { "" } else { ", " };
            let _ = write!(effects, "{esep}{}", json_string(e));
        }
        effects.push(']');
        let _ = write!(
            out,
            "{sep}\n    {{\"function\": {}, \"file\": {}, \"line\": {}, \
             \"hot\": {}, \"cold\": {}, \"effects\": {effects}}}",
            json_string(&f.function),
            json_string(&f.file.display().to_string()),
            f.line,
            f.hot,
            f.cold,
        );
    }
    if report.functions.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_has_stable_field_order() {
        let v = vec![Violation {
            file: PathBuf::from("crates/sim/src/x.rs"),
            line: 3,
            rule: "hash-collections",
            message: "a \"quoted\" message".to_string(),
        }];
        let json = violations_to_json(&v);
        let file_at = json.find("\"file\"").expect("file key");
        let line_at = json.find("\"line\"").expect("line key");
        let rule_at = json.find("\"rule\"").expect("rule key");
        let msg_at = json.find("\"message\"").expect("message key");
        assert!(file_at < line_at && line_at < rule_at && rule_at < msg_at);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"violation_count\": 1"));
    }

    #[test]
    fn empty_report_is_well_formed() {
        let json = violations_to_json(&[]);
        assert!(json.contains("\"violation_count\": 0"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn full_report_json_includes_warnings_and_functions() {
        let report = Report {
            violations: vec![],
            warnings: vec![Warning {
                file: PathBuf::from("crates/sim/src/x.rs"),
                line: 7,
                message: "unused allow".to_string(),
            }],
            functions: vec![FnEffects {
                function: "core::ConZone::write_range".to_string(),
                file: PathBuf::from("crates/core/src/write.rs"),
                line: 35,
                hot: true,
                cold: false,
                effects: vec!["bounds"],
            }],
        };
        let json = report_to_json(&report);
        let warn_at = json.find("\"warnings\"").expect("warnings key");
        let fns_at = json.find("\"functions\"").expect("functions key");
        assert!(warn_at < fns_at);
        assert!(json.contains("\"warning_count\": 1"));
        assert!(json.contains("\"hot\": true"));
        assert!(json.contains("\"effects\": [\"bounds\"]"));
        assert!(json.contains("core::ConZone::write_range"));
    }
}
