//! The determinism-hygiene lint pass behind `cargo xtask lint`.
//!
//! ConZone's value as an emulator rests on bit-identical seeded reruns
//! and (for fleet mode) on device state that can shard across worker
//! threads, so this pass makes both *statically enforced* properties
//! instead of test-observed ones. Ten rules:
//!
//! * [`hash-collections`] — no `std::collections::HashMap`/`HashSet` in
//!   crates that hold sim-visible state. Their iteration order is
//!   randomized per process (SipHash with random keys), so any iteration
//!   that feeds simulator behaviour breaks seeded reruns. Use `BTreeMap`/
//!   `BTreeSet` or an insertion-ordered structure, or annotate a keyed-only
//!   use with `// xtask-lint: allow(hash-collections) — <reason>`.
//! * [`wall-clock`] — no `Instant::now`, `SystemTime`, `thread_rng` or
//!   `rand::random` outside `crates/bench` and test code. Simulated time
//!   comes from `SimTime`; randomness from explicitly seeded generators.
//! * [`unwrap-expect`] — no `.unwrap()` / `.expect(…)` in non-test library
//!   code of `core`/`ftl`/`flash`/`sim`; return typed errors instead, or
//!   annotate a genuine data-structure invariant with an allow comment.
//! * [`counter-coverage`] — every public field of `Counters` must appear
//!   in the `named_fields!`/`since` exporter lists, so a newly added
//!   counter can never silently vanish from the JSON/metrics exports.
//! * [`event-coverage`] — every `DeviceEvent` variant must be handled by
//!   `kind_name`, `kind_index` and the `event_args` exporter mapping.
//! * [`span-coverage`] — every `SpanKind` variant must be handled by
//!   `name`, `index` and `breakdown_category`, so a newly added span kind
//!   can never silently miss the exporters or the breakdown
//!   reconciliation.
//! * [`fleet-readiness`] — no `Rc`/`RefCell`/`Cell`/`UnsafeCell`,
//!   `thread_local!` or `static mut` in sim-visible crates: device state
//!   must be `Send` so the fleet runner can shard devices across worker
//!   threads without silent per-thread divergence.
//! * [`float-determinism`] — no `f32`/`f64` in sim-visible type positions
//!   (struct/enum fields, const/static types, fn parameters); float
//!   rounding varies with platform and optimization level. The stats/
//!   export/json boundary files in `crates/sim` are exempt.
//! * [`truncating-cast`] — no narrowing `as` casts (`u8`/`u16`/`u32`/
//!   `i8`/`i16`/`i32` targets) on runtime values: sim times, counters and
//!   addresses are `u64` and silent wraps skew results without failing.
//! * [`wildcard-match`] — no `_ =>` arms on matches over `DeviceEvent`,
//!   `SpanKind`, `InvariantKind` or `FaultKind`; a wildcard defeats the
//!   coverage rules by silently absorbing newly added variants.
//!
//! # Engine
//!
//! Since engine v2 the pass parses every file with the vendored `syn`
//! stand-in (the build is fully offline; `vendor/` is the only
//! dependency source) and runs the rules as AST/token passes over a
//! per-file context: parsed items, a flattened token view with exact
//! spans, and `#[cfg(test)]` extents derived from item attributes. A
//! `"HashMap"` inside a string or doc comment can never trip a rule —
//! the lexer never produces a token for it.
//!
//! # Allowlist syntax
//!
//! A violation on line *N* is suppressed by a comment on line *N*, in
//! the contiguous comment block immediately above it, or above any
//! enclosing item (fn, mod, impl, …), of the form:
//!
//! ```text
//! // xtask-lint: allow(hash-collections) — keyed lookups only, never iterated
//! // xtask-lint: allow(fleet-readiness, wall-clock) — profiler scratch state
//! ```
//!
//! The reason after the dash is mandatory; a bare `allow(...)` does not
//! suppress anything (the diagnostic says so). The coverage rules
//! ignore the allowlist entirely: an exporter gap is only fixable.

mod engine;

use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in diagnostics and allow directives.
pub const RULES: [&str; 10] = [
    "hash-collections",
    "wall-clock",
    "unwrap-expect",
    "counter-coverage",
    "event-coverage",
    "span-coverage",
    "fleet-readiness",
    "float-determinism",
    "truncating-cast",
    "wildcard-match",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Runs every rule over the workspace at `root`, returning the sorted
/// violations.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    engine::lint_workspace(root)
}

/// Renders violations as a JSON report with a stable field order
/// (`rules`, `violation_count`, then `violations`, each with `file`,
/// `line`, `rule`, `message`), so snapshots and CI consumers can diff
/// the output textually.
pub fn violations_to_json(violations: &[Violation]) -> String {
    let mut out = String::from("{\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}{}", json_string(r));
    }
    let _ = write!(
        out,
        "],\n  \"violation_count\": {},\n  \"violations\": [",
        violations.len()
    );
    for (i, v) in violations.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&v.file.display().to_string()),
            v.line,
            json_string(v.rule),
            json_string(&v.message)
        );
    }
    if violations.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_has_stable_field_order() {
        let v = vec![Violation {
            file: PathBuf::from("crates/sim/src/x.rs"),
            line: 3,
            rule: "hash-collections",
            message: "a \"quoted\" message".to_string(),
        }];
        let json = violations_to_json(&v);
        let file_at = json.find("\"file\"").expect("file key");
        let line_at = json.find("\"line\"").expect("line key");
        let rule_at = json.find("\"rule\"").expect("rule key");
        let msg_at = json.find("\"message\"").expect("message key");
        assert!(file_at < line_at && line_at < rule_at && rule_at < msg_at);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"violation_count\": 1"));
    }

    #[test]
    fn empty_report_is_well_formed() {
        let json = violations_to_json(&[]);
        assert!(json.contains("\"violation_count\": 0"));
        assert!(json.trim_end().ends_with('}'));
    }
}
