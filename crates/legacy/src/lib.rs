//! Legacy consumer flash storage baseline (paper §IV-A "Legacy").
//!
//! The paper compares ConZone against a traditional consumer flash device
//! implemented "based on descriptions from" ZMS \[ATC'24]: the host may
//! write any 4 KiB sector in place, the device maps pages out-of-place into
//! an append stream, reclaims dead space with device-side garbage
//! collection, and caches L2P entries on demand — with *sequential
//! prefetch* of a whole chunk's worth of entries per miss (the paper's
//! Fig. 6(a) run uses a 1023-entry prefetch window).
//!
//! The contrast with ConZone's hybrid mapping is capacity: Legacy's
//! prefetched chunk occupies 1024 cache slots where ConZone's aggregated
//! chunk entry occupies one.
//!
//! ```
//! use conzone_legacy::LegacyDevice;
//! use conzone_types::{DeviceConfig, IoRequest, SimTime, StorageDevice};
//!
//! let mut dev = LegacyDevice::new(DeviceConfig::tiny_for_tests());
//! let c = dev.submit(SimTime::ZERO, &IoRequest::write(0, 64 * 1024))?;
//! // Legacy allows in-place updates: rewrite the same sectors.
//! dev.submit(c.finished, &IoRequest::write(0, 64 * 1024))?;
//! # Ok::<(), conzone_types::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;

use bytes::Bytes;
use conzone_flash::{FlashArray, FlashError};
use conzone_ftl::{LruCache, MappingTable};
use conzone_types::{
    ChipId, Completion, Counters, DeviceConfig, DeviceError, DeviceEvent, FaultConfig, FlushKind,
    IoKind, IoRequest, L2pOutcome, Lpn, LpnRange, PowerCycle, Ppa, Probe, RecoveryReport, SimTime,
    StorageDevice, SuperblockId, ZoneId, SLICE_BYTES,
};

/// Fraction of normal superblocks held back as GC over-provisioning.
const OVERPROVISION_DIVISOR: usize = 16; // ~6 %

// xtask-effect: cold — error conversion: only reached when a flash op already failed
fn internal(e: FlashError) -> DeviceError {
    DeviceError::Unsupported(format!("internal flash error: {e}"))
}

/// A buffered, not-yet-flushed host write of one slice.
#[derive(Debug, Clone)]
struct PendingSlice {
    lpn: Lpn,
    data: Option<Vec<u8>>,
}

/// The Legacy page-mapping device.
#[derive(Debug)]
pub struct LegacyDevice {
    cfg: DeviceConfig,
    flash: FlashArray,
    table: MappingTable,
    /// Page-granularity L2P cache (key = lpn).
    cache: LruCache<u64, ()>,
    /// Entries (the missed one plus the rest of its window) fetched per
    /// L2P miss. 1024 = the paper's 1023-entry prefetch window plus the
    /// missed entry, covering one 4 MiB chunk.
    prefetch_window: u64,
    /// Aggregation buffer for incoming writes (one superpage).
    pending: VecDeque<PendingSlice>,
    /// Append point: the open superblock and its next programming unit.
    open_sb: Option<SuperblockId>,
    next_unit: usize,
    free: VecDeque<SuperblockId>,
    used: Vec<SuperblockId>,
    /// Reverse map ppa → lpn for GC migration (dense vector over slices).
    owner: std::collections::BTreeMap<u64, Lpn>,
    counters: Counters,
    next_mapping_chip: u64,
    logical_slices: u64,
    /// Guards against recursive GC while GC's own flushes allocate space.
    in_gc: bool,
    probe: Probe,
}

impl LegacyDevice {
    /// Builds a Legacy device from the same configuration vocabulary as
    /// ConZone. `write_buffers`, zone padding and SLC settings are ignored
    /// (Legacy has a single append stream and no zones); the geometry's SLC
    /// blocks are simply unused spare area.
    pub fn new(cfg: DeviceConfig) -> LegacyDevice {
        let mut cfg = cfg;
        // The Legacy baseline does not reproduce the fault plane.
        cfg.fault = FaultConfig::default();
        let g = cfg.geometry;
        let normal: Vec<SuperblockId> = (g.slc_blocks_per_chip as u64..g.blocks_per_chip as u64)
            .map(SuperblockId)
            .collect();
        // At least three spare superblocks: one GC destination, one in
        // flight as the open block, one slack — so the append stream never
        // deadlocks even when every victim is still fully valid.
        let reserve = (normal.len() / OVERPROVISION_DIVISOR).max(3);
        let logical_sbs = normal.len() - reserve;
        let logical_slices = logical_sbs as u64 * g.slices_per_superblock();
        let prefetch_window = cfg.chunk_slices();
        LegacyDevice {
            flash: FlashArray::new(&cfg),
            table: MappingTable::new(logical_slices, cfg.chunk_slices(), cfg.zone_size_slices()),
            cache: LruCache::new(cfg.l2p_cache_entries()),
            prefetch_window,
            pending: VecDeque::new(),
            open_sb: None,
            next_unit: 0,
            free: normal.into_iter().collect(),
            used: Vec::new(),
            owner: std::collections::BTreeMap::new(),
            counters: Counters::new(),
            next_mapping_chip: 0,
            logical_slices,
            in_gc: false,
            probe: Probe::disabled(),
            cfg,
        }
    }

    /// Attaches a trace probe; flushes, GC passes, L2P lookups and media
    /// operations are emitted to it from now on. Legacy has no zones, so
    /// zone-tagged events use zone 0.
    pub fn set_probe(&mut self, probe: Probe) {
        self.flash.set_probe(probe.clone());
        self.probe = probe;
    }

    /// Logical capacity in slices (physical minus over-provisioning).
    pub fn logical_slices(&self) -> u64 {
        self.logical_slices
    }

    /// Discards (trims) a 4 KiB-aligned byte range: mappings are dropped
    /// and the physical slices invalidated immediately, so GC never moves
    /// them. This is exactly the signal whose *absence* creates the
    /// paper's §I "time gap"; see the `lifespan` bench for the effect.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Unaligned`] or [`DeviceError::OutOfRange`] for a bad
    /// range. Trimming unwritten sectors is a no-op.
    pub fn trim(&mut self, now: SimTime, offset: u64, len: u64) -> Result<Completion, DeviceError> {
        if len == 0 || !offset.is_multiple_of(SLICE_BYTES) || !len.is_multiple_of(SLICE_BYTES) {
            return Err(DeviceError::Unaligned { offset, len });
        }
        if offset + len > self.capacity_bytes() {
            return Err(DeviceError::OutOfRange {
                offset,
                capacity: self.capacity_bytes(),
            });
        }
        let range = LpnRange::covering_bytes(offset, len).expect("non-empty");
        for lpn in range.iter() {
            // Pending (still-buffered) copies stay queued; they will map
            // and then be superseded only if rewritten — acceptable for a
            // trim model. Mapped copies die right away.
            if let Some(entry) = self.table.get(lpn) {
                self.flash.invalidate(entry.ppa).map_err(internal)?;
                self.owner.remove(&entry.ppa.raw());
                self.table.unmap(lpn);
                self.cache.remove(&lpn.raw());
            }
        }
        Ok(Completion {
            submitted: now,
            finished: now + self.cfg.host_overhead,
            data: None,
            assigned_offset: None,
        })
    }

    /// Wear and lifespan report (the paper's §I trim-gap argument shows
    /// up here as extra erases from GC moving dead data).
    pub fn wear_report(&self) -> conzone_flash::WearReport {
        let mut report = self.flash.wear_report();
        report.host_bytes_written = self.counters.host_write_bytes;
        report
    }

    fn unit_slices(&self) -> usize {
        self.cfg.geometry.slices_per_unit()
    }

    fn units_per_superblock(&self) -> usize {
        self.cfg.geometry.units_per_block() * self.cfg.geometry.nchips()
    }

    fn mapping_chip(&mut self) -> ChipId {
        let chip = self.next_mapping_chip % self.cfg.geometry.nchips() as u64;
        self.next_mapping_chip += 1;
        ChipId(chip)
    }

    /// Ensures an open superblock with a free unit, running GC if the free
    /// list is exhausted. Re-checks the open block after every GC pass:
    /// GC's own flushes may have opened (or filled) one.
    fn ensure_append_point(
        &mut self,
        now: SimTime,
    ) -> Result<(SimTime, SuperblockId), DeviceError> {
        let mut t = now;
        let mut passes = 0;
        loop {
            if let Some(sb) = self.open_sb {
                if self.next_unit < self.units_per_superblock() {
                    return Ok((t, sb));
                }
                self.used.push(sb);
                self.open_sb = None;
            }
            // The host may never consume the last free superblock — GC
            // needs a destination. Collect until two are free (each pass
            // on a nearly all-valid device nets only a sliver, so this
            // may take several).
            if self.free.len() < 2 && !self.in_gc && passes < 64 {
                t = self.run_gc(t)?;
                passes += 1;
                continue; // GC may have opened a fresh superblock
            }
            let min_free = if self.in_gc { 1 } else { 2 };
            if self.free.len() < min_free {
                return Err(DeviceError::NoFreeSpace {
                    at: t,
                    what: "no free superblock in the legacy append stream".to_string(),
                });
            }
            let sb = self.free.pop_front().expect("checked above");
            self.open_sb = Some(sb);
            self.next_unit = 0;
            return Ok((t, sb));
        }
    }

    /// Programs one full unit of pending slices at the append point.
    fn flush_unit(&mut self, now: SimTime) -> Result<SimTime, DeviceError> {
        let unit = self.unit_slices();
        debug_assert!(self.pending.len() >= unit);
        let (mut t, sb) = self.ensure_append_point(now)?;
        // ensure_append_point may have run GC, whose own flushes drain the
        // shared pending queue — including the slices this call was about
        // to program. Nothing left to do in that case.
        if self.pending.len() < unit {
            return Ok(t);
        }
        let g = self.cfg.geometry;
        let chip = ChipId((self.next_unit % g.nchips()) as u64);
        self.next_unit += 1;

        let slices: Vec<PendingSlice> = self.pending.drain(..unit).collect();
        let payload: Option<Vec<u8>> = if self.cfg.data_backing {
            let mut v = Vec::with_capacity(unit * SLICE_BYTES as usize);
            for s in &slices {
                match &s.data {
                    Some(d) => v.extend_from_slice(d),
                    None => v.resize(v.len() + SLICE_BYTES as usize, 0),
                }
            }
            Some(v)
        } else {
            None
        };
        let out = self
            .flash
            .program_unit(t, chip, sb.raw() as usize, payload.as_deref())
            .map_err(internal)?;
        // Buffer frees after the transfer; tPROG runs in the background.
        t = out.buffer_free;
        self.counters.full_flushes += 1;
        self.probe.emit(
            t,
            DeviceEvent::BufferFlush {
                zone: ZoneId(0),
                kind: FlushKind::Full,
                slices: unit as u64,
            },
        );
        for (i, s) in slices.iter().enumerate() {
            let ppa = out.first.offset(i as u64);
            if s.lpn == Lpn(u64::MAX) {
                // Flush padding: dead on arrival, or GC would later try to
                // migrate an ownerless slice.
                self.flash.invalidate(ppa).map_err(internal)?;
                continue;
            }
            self.remap(s.lpn, ppa)?;
        }
        Ok(t)
    }

    /// Points `lpn` at `ppa`, invalidating any previous location.
    fn remap(&mut self, lpn: Lpn, ppa: Ppa) -> Result<(), DeviceError> {
        if let Some(old) = self.table.get(lpn) {
            self.flash.invalidate(old.ppa).map_err(internal)?;
            self.owner.remove(&old.ppa.raw());
        }
        self.table.set(lpn, ppa, false);
        self.owner.insert(ppa.raw(), lpn);
        Ok(())
    }

    /// Device-side greedy garbage collection: move the valid pages of the
    /// emptiest used superblock to the append point, then erase it.
    fn run_gc(&mut self, now: SimTime) -> Result<SimTime, DeviceError> {
        let victim = self
            .used
            .iter()
            .copied()
            .min_by_key(|&sb| self.flash.superblock_valid_slices(sb))
            .ok_or_else(|| DeviceError::NoFreeSpace {
                at: now,
                what: "no used superblock eligible for legacy GC".to_string(),
            })?;
        self.counters.gc_runs += 1;
        self.in_gc = true;
        let ppas = self.flash.superblock_valid_ppas(victim);
        self.probe.emit(
            now,
            DeviceEvent::GcBegin {
                valid_slices: ppas.len() as u64,
            },
        );
        let mut t = now;
        if !ppas.is_empty() {
            let out = self.flash.read_slices(t, &ppas).map_err(internal)?;
            t = out.finish;
            // Re-queue valid slices through the pending buffer and flush
            // them in units; they land on the (different) open superblock.
            // Their old mappings are dropped immediately — the victim is
            // about to be erased, and until the flush remaps them the
            // pending queue is the authoritative copy.
            for (i, &ppa) in ppas.iter().enumerate() {
                let lpn = *self
                    .owner
                    .get(&ppa.raw())
                    .expect("valid legacy slice has an owner");
                let data = out
                    .data
                    .as_ref()
                    .map(|d| d[i * SLICE_BYTES as usize..(i + 1) * SLICE_BYTES as usize].to_vec());
                self.pending.push_back(PendingSlice { lpn, data });
                self.table.unmap(lpn);
                self.owner.remove(&ppa.raw());
                self.cache.remove(&lpn.raw());
            }
            self.counters.gc_migrated_slices += ppas.len() as u64;
            while self.pending.len() >= self.unit_slices() {
                t = self.flush_unit(t)?;
            }
            // A sub-unit GC tail is padded out (programmed as a short unit
            // worth of real slices on the next host flush); keep it pending.
        }
        t = self.flash.erase_superblock(t, victim);
        self.used.retain(|&s| s != victim);
        self.free.push_back(victim);
        self.in_gc = false;
        self.probe.emit(
            t,
            DeviceEvent::GcEnd {
                migrated_slices: ppas.len() as u64,
            },
        );
        Ok(t)
    }

    fn write_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
        payload: Option<&[u8]>,
    ) -> Result<SimTime, DeviceError> {
        let mut t = now;
        for (i, lpn) in range.iter().enumerate() {
            let data = payload
                .map(|p| p[i * SLICE_BYTES as usize..(i + 1) * SLICE_BYTES as usize].to_vec());
            self.pending.push_back(PendingSlice { lpn, data });
            // Invalidate the cache entry of an in-place update; the fresh
            // mapping is installed at flush time.
            self.cache.remove(&lpn.raw());
            if self.pending.len() >= self.unit_slices() {
                t = self.flush_unit(t)?;
            }
        }
        Ok(t + self.cfg.host_overhead)
    }

    fn read_range(
        &mut self,
        now: SimTime,
        range: LpnRange,
    ) -> Result<(SimTime, Option<Vec<u8>>), DeviceError> {
        #[derive(Clone, Copy)]
        enum Slot {
            Pending(usize),
            Flash(usize),
        }
        let mut t_map = now;
        let mut ppas: Vec<Ppa> = Vec::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(range.count as usize);
        for lpn in range.iter() {
            // Data still aggregating in the buffer is served from RAM.
            if let Some(pos) = self.pending.iter().rposition(|p| p.lpn == lpn) {
                slots.push(Slot::Pending(pos));
                continue;
            }
            let entry = self
                .table
                .get(lpn)
                .ok_or(DeviceError::UnwrittenRead { lpn })?;
            if self.cache.get(&lpn.raw()).is_some() {
                self.counters.l2p_hits_page += 1;
                self.probe.emit(
                    t_map,
                    DeviceEvent::L2pLookup {
                        outcome: L2pOutcome::HitPage,
                    },
                );
            } else {
                self.counters.l2p_misses += 1;
                self.counters.flash_mapping_reads += 1;
                self.probe.emit(
                    t_map,
                    DeviceEvent::L2pLookup {
                        outcome: L2pOutcome::Miss,
                    },
                );
                let chip = self.mapping_chip();
                let r = self.flash.timed_page_read(
                    t_map,
                    chip,
                    self.cfg.mapping_media,
                    self.cfg.geometry.page_bytes as u64,
                );
                t_map = r.end;
                // Sequential prefetch: pull the whole window of entries
                // from the same mapping page into the cache.
                let window_start = lpn.raw() / self.prefetch_window * self.prefetch_window;
                for w in
                    window_start..(window_start + self.prefetch_window).min(self.logical_slices)
                {
                    if self.table.get(Lpn(w)).is_some() {
                        self.cache.insert(w, (), false);
                    }
                }
            }
            slots.push(Slot::Flash(ppas.len()));
            ppas.push(entry.ppa);
        }
        let mut finish = t_map;
        let mut flash_data: Option<Vec<u8>> = None;
        if !ppas.is_empty() {
            let out = self.flash.read_slices(t_map, &ppas).map_err(internal)?;
            finish = out.finish;
            flash_data = out.data;
        }
        let data = if self.cfg.data_backing {
            let mut v = Vec::with_capacity((range.count * SLICE_BYTES) as usize);
            for slot in &slots {
                match *slot {
                    Slot::Pending(pos) => match &self.pending[pos].data {
                        Some(d) => v.extend_from_slice(d),
                        None => v.resize(v.len() + SLICE_BYTES as usize, 0),
                    },
                    Slot::Flash(i) => {
                        let d = flash_data.as_ref().expect("backed flash read");
                        v.extend_from_slice(
                            &d[i * SLICE_BYTES as usize..(i + 1) * SLICE_BYTES as usize],
                        );
                    }
                }
            }
            Some(v)
        } else {
            None
        };
        Ok((finish + self.cfg.host_overhead, data))
    }
}

impl StorageDevice for LegacyDevice {
    fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    fn capacity_bytes(&self) -> u64 {
        self.logical_slices * SLICE_BYTES
    }

    fn submit(&mut self, now: SimTime, request: &IoRequest) -> Result<Completion, DeviceError> {
        request.validate()?;
        if request.offset + request.len > self.capacity_bytes() {
            return Err(DeviceError::OutOfRange {
                offset: request.offset,
                capacity: self.capacity_bytes(),
            });
        }
        let range = LpnRange::covering_bytes(request.offset, request.len)
            .expect("validated request is non-empty");
        match request.kind {
            IoKind::Append => Err(DeviceError::Unsupported(
                "legacy devices have no zones to append to".to_string(),
            )),
            IoKind::Write => {
                self.counters.host_write_ops += 1;
                self.counters.host_write_bytes += request.len;
                let finished = self.write_range(now, range, request.data.as_deref())?;
                Ok(Completion {
                    submitted: now,
                    finished,
                    data: None,
                    assigned_offset: None,
                })
            }
            IoKind::Read => {
                self.counters.host_read_ops += 1;
                self.counters.host_read_bytes += request.len;
                let (finished, data) = self.read_range(now, range)?;
                Ok(Completion {
                    submitted: now,
                    finished,
                    data: data.map(Bytes::from),
                    assigned_offset: None,
                })
            }
        }
    }

    fn flush(&mut self, now: SimTime) -> Result<Completion, DeviceError> {
        let mut t = now;
        while self.pending.len() >= self.unit_slices() {
            t = self.flush_unit(t)?;
        }
        if !self.pending.is_empty() {
            let real = self.pending.len() as u64;
            // No SLC secondary buffer: pad the remainder out to a whole
            // programming unit (the §II-A cost Legacy pays for sync I/O).
            while self.pending.len() < self.unit_slices() {
                self.pending.push_back(PendingSlice {
                    lpn: Lpn(u64::MAX),
                    data: None,
                });
            }
            self.counters.premature_flushes += 1;
            self.probe.emit(
                t,
                DeviceEvent::BufferFlush {
                    zone: ZoneId(0),
                    kind: FlushKind::Premature,
                    slices: real,
                },
            );
            t = self.flush_unit(t)?;
        }
        Ok(Completion {
            submitted: now,
            finished: t + self.cfg.host_overhead,
            data: None,
            assigned_offset: None,
        })
    }

    fn counters(&self) -> Counters {
        let mut c = self.counters;
        let stats = self.flash.stats();
        c.flash_program_bytes_slc = stats.program_bytes_slc;
        c.flash_program_bytes_tlc = stats.program_bytes_tlc;
        c.flash_program_bytes_qlc = stats.program_bytes_qlc;
        c.flash_data_reads = stats.page_reads;
        c.erases_slc = stats.erases_slc;
        c.erases_normal = stats.erases_normal;
        c.l2p_evictions = self.cache.evictions();
        c
    }

    fn model_name(&self) -> &'static str {
        "legacy"
    }
}

impl PowerCycle for LegacyDevice {
    fn power_cut(&mut self, _now: SimTime) -> Result<u64, DeviceError> {
        Err(DeviceError::Unsupported(
            "legacy baseline does not model power loss".to_string(),
        ))
    }

    fn remount(&mut self, _now: SimTime) -> Result<RecoveryReport, DeviceError> {
        Err(DeviceError::Unsupported(
            "legacy baseline does not model power loss".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> LegacyDevice {
        LegacyDevice::new(DeviceConfig::tiny_for_tests())
    }

    fn patt(len: usize, seed: u8) -> Bytes {
        Bytes::from(
            (0..len)
                .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
                .collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = dev();
        let data = patt(256 * 1024, 1);
        let c = d
            .submit(SimTime::ZERO, &IoRequest::write_data(0, data.clone()))
            .unwrap();
        let r = d
            .submit(c.finished, &IoRequest::read(0, 256 * 1024))
            .unwrap();
        assert_eq!(r.data.unwrap(), data);
    }

    #[test]
    fn in_place_update_supported() {
        let mut d = dev();
        let mut t = SimTime::ZERO;
        t = d
            .submit(t, &IoRequest::write_data(0, patt(64 * 1024, 1)))
            .unwrap()
            .finished;
        t = d
            .submit(t, &IoRequest::write_data(0, patt(64 * 1024, 2)))
            .unwrap()
            .finished;
        let r = d.submit(t, &IoRequest::read(0, 64 * 1024)).unwrap();
        assert_eq!(r.data.unwrap(), patt(64 * 1024, 2));
        // Out-of-place: the old unit is now invalid, host wrote 128 KiB
        // and flash holds 128 KiB programmed.
        let c = d.counters();
        assert_eq!(c.host_write_bytes, 128 * 1024);
        assert_eq!(c.flash_program_bytes(), 128 * 1024);
    }

    #[test]
    fn prefetch_window_fills_cache() {
        let mut d = dev();
        let mut t = SimTime::ZERO;
        // Write two chunks' worth (chunk = 64 slices in the tiny config).
        t = d
            .submit(t, &IoRequest::write_data(0, patt(512 * 1024, 3)))
            .unwrap()
            .finished;
        // First read of chunk 0 misses and prefetches the window.
        t = d.submit(t, &IoRequest::read(0, 4096)).unwrap().finished;
        assert_eq!(d.counters().l2p_misses, 1);
        // Subsequent reads inside the window hit.
        for i in 1..10u64 {
            t = d
                .submit(t, &IoRequest::read(i * 4096, 4096))
                .unwrap()
                .finished;
        }
        let c = d.counters();
        assert_eq!(c.l2p_misses, 1);
        assert_eq!(c.l2p_hits_page, 9);
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let mut d = dev();
        let mut t = SimTime::ZERO;
        // Overwrite a 2 MiB region enough times to exceed physical free
        // space and force GC (logical capacity is 14 superblocks of 1 MiB).
        for round in 0..12u8 {
            for off in (0..2 * 1024 * 1024u64).step_by(256 * 1024) {
                t = d
                    .submit(t, &IoRequest::write_data(off, patt(256 * 1024, round)))
                    .unwrap()
                    .finished;
            }
        }
        let c = d.counters();
        assert!(c.gc_runs > 0, "GC ran: {c:?}");
        assert!(c.erases_normal > 0);
        // Integrity: last round's data survives GC.
        let r = d.submit(t, &IoRequest::read(0, 256 * 1024)).unwrap();
        assert_eq!(r.data.unwrap(), patt(256 * 1024, 11));
    }

    #[test]
    fn capacity_excludes_overprovisioning() {
        let d = dev();
        let physical =
            d.cfg.geometry.normal_superblocks() as u64 * d.cfg.geometry.superblock_bytes();
        assert!(d.capacity_bytes() < physical);
        let mut d = dev();
        let cap = d.capacity_bytes();
        assert!(matches!(
            d.submit(SimTime::ZERO, &IoRequest::write(cap, 4096)),
            Err(DeviceError::OutOfRange { .. })
        ));
    }

    #[test]
    fn unwritten_read_fails() {
        let mut d = dev();
        assert!(matches!(
            d.submit(SimTime::ZERO, &IoRequest::read(0, 4096)),
            Err(DeviceError::UnwrittenRead { .. })
        ));
    }

    #[test]
    fn buffered_tail_readable() {
        let mut d = dev();
        // 8 KiB pending (unit is 64 KiB): served from the buffer.
        let c = d
            .submit(SimTime::ZERO, &IoRequest::write_data(0, patt(8192, 9)))
            .unwrap();
        assert_eq!(d.counters().flash_program_bytes(), 0);
        let r = d.submit(c.finished, &IoRequest::read(0, 8192)).unwrap();
        assert_eq!(r.data.unwrap(), patt(8192, 9));
    }
}

#[cfg(test)]
mod trim_tests {
    use super::*;

    #[test]
    fn trim_unmaps_and_invalidates() {
        let mut d = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let data = bytes::Bytes::from(vec![5u8; 128 * 1024]);
        let c = d
            .submit(SimTime::ZERO, &IoRequest::write_data(0, data))
            .unwrap();
        let t = d.trim(c.finished, 0, 64 * 1024).unwrap().finished;
        // Trimmed sectors read as unwritten; the rest survives.
        assert!(matches!(
            d.submit(t, &IoRequest::read(0, 4096)),
            Err(DeviceError::UnwrittenRead { .. })
        ));
        let r = d.submit(t, &IoRequest::read(64 * 1024, 4096)).unwrap();
        assert_eq!(r.data.unwrap()[0], 5);
        // Bad ranges rejected.
        assert!(d.trim(t, 3, 4096).is_err());
        let cap = d.capacity_bytes();
        assert!(d.trim(t, cap, 4096).is_err());
        // Re-trimming is a no-op.
        d.trim(t, 0, 64 * 1024).unwrap();
    }

    #[test]
    fn trim_lets_gc_skip_dead_data() {
        // Fill, trim half, then overwrite: GC migrates far less than the
        // no-trim equivalent.
        let run = |do_trim: bool| {
            let mut d = LegacyDevice::new(DeviceConfig::tiny_for_tests());
            let cap = d.capacity_bytes();
            let mut t = SimTime::ZERO;
            for round in 0..3u64 {
                for off in (0..cap).step_by(256 * 1024) {
                    t = d
                        .submit(t, &IoRequest::write(off, 256 * 1024))
                        .unwrap()
                        .finished;
                    let _ = round;
                }
                if do_trim {
                    // The host deletes everything before rewriting.
                    t = d.trim(t, 0, cap).unwrap().finished;
                }
            }
            d.counters().gc_migrated_slices
        };
        let with_trim = run(true);
        let without = run(false);
        assert!(
            with_trim <= without,
            "trim reduces GC migration: {with_trim} vs {without}"
        );
    }
}

#[cfg(test)]
mod prefetch_edge_tests {
    use super::*;

    #[test]
    fn prefetch_stops_at_capacity_edge() {
        // A miss in the last (partial) window must not reach past the
        // logical capacity.
        let mut d = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let cap = d.capacity_bytes();
        let window_bytes = d.cfg.chunk_bytes;
        let tail_start = cap - window_bytes / 2; // inside the final window
        let mut t = SimTime::ZERO;
        t = d
            .submit(t, &IoRequest::write(tail_start, window_bytes / 2))
            .unwrap()
            .finished;
        t = d.flush(t).unwrap().finished;
        let r = d.submit(t, &IoRequest::read(tail_start, 4096)).unwrap();
        assert!(r.finished > t);
        assert_eq!(d.counters().l2p_misses, 1);
        // Neighbours in the same window now hit.
        d.submit(r.finished, &IoRequest::read(tail_start + 4096, 4096))
            .unwrap();
        assert_eq!(d.counters().l2p_misses, 1);
        assert_eq!(d.counters().l2p_hits_page, 1);
    }

    #[test]
    fn prefetch_skips_unwritten_entries() {
        // Sparse data: only every other window slot written; the prefetch
        // inserts only mapped entries so cache capacity is not wasted.
        let mut d = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let mut t = SimTime::ZERO;
        for i in 0..8u64 {
            t = d
                .submit(t, &IoRequest::write(i * 128 * 1024, 4096))
                .unwrap()
                .finished;
        }
        t = d.flush(t).unwrap().finished;
        let before = d.counters();
        t = d.submit(t, &IoRequest::read(0, 4096)).unwrap().finished;
        // Second sparse slot hits via the same window prefetch (all eight
        // live in the first 1 MiB window = chunk 0 of the tiny config’s
        // 256 KiB chunks? chunk = 64 slices = 256 KiB → only slots 0,1
        // share window 0; slot 2 is window 2).
        let _ = t;
        let after = d.counters();
        assert_eq!(after.l2p_misses - before.l2p_misses, 1);
    }

    #[test]
    fn capacity_boundary_writes_rejected_cleanly() {
        let mut d = LegacyDevice::new(DeviceConfig::tiny_for_tests());
        let cap = d.capacity_bytes();
        assert!(matches!(
            d.submit(SimTime::ZERO, &IoRequest::write(cap - 4096, 8192)),
            Err(DeviceError::OutOfRange { .. })
        ));
        d.submit(SimTime::ZERO, &IoRequest::write(cap - 4096, 4096))
            .unwrap();
    }
}
