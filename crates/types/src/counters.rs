//! Device statistics counters.
//!
//! [`Counters`] is a passive, public-field statistics record exposed by all
//! device models; the host harness derives write amplification and cache
//! hit rates from it.

use serde::{Deserialize, Serialize};

/// Cumulative event counters of a device model.
///
/// All byte counts are raw bytes; all op counts are events. The struct is a
/// plain data record (public fields) so harnesses can snapshot and diff it.
///
/// ```
/// use conzone_types::Counters;
///
/// let mut c = Counters::default();
/// c.host_write_bytes = 4096;
/// c.flash_program_bytes_tlc = 8192;
/// assert_eq!(c.write_amplification(), 2.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Bytes the host read.
    pub host_read_bytes: u64,
    /// Bytes the host wrote.
    pub host_write_bytes: u64,
    /// Host read requests.
    pub host_read_ops: u64,
    /// Host write requests.
    pub host_write_ops: u64,

    /// Bytes programmed into SLC flash.
    pub flash_program_bytes_slc: u64,
    /// Bytes programmed into TLC flash.
    pub flash_program_bytes_tlc: u64,
    /// Bytes programmed into QLC flash.
    pub flash_program_bytes_qlc: u64,
    /// Flash page reads for host data.
    pub flash_data_reads: u64,
    /// Flash page reads for mapping-table fetches.
    pub flash_mapping_reads: u64,
    /// Flash block erases in the SLC region.
    pub erases_slc: u64,
    /// Flash block erases in the normal region.
    pub erases_normal: u64,

    /// L2P cache hits at zone granularity.
    pub l2p_hits_zone: u64,
    /// L2P cache hits at chunk granularity.
    pub l2p_hits_chunk: u64,
    /// L2P cache hits at page granularity.
    pub l2p_hits_page: u64,
    /// L2P cache misses (mapping fetched from flash).
    pub l2p_misses: u64,
    /// Cache entries evicted by LRU replacement.
    pub l2p_evictions: u64,

    /// Write-buffer flushes triggered before a full programming unit
    /// accumulated (paper Fig. 1 (b) W.2).
    pub premature_flushes: u64,
    /// Write-buffer flushes of complete programming units.
    pub full_flushes: u64,
    /// Times an incoming write found its buffer owned by a different zone
    /// (the Fig. 6 (b) conflict event).
    pub buffer_conflicts: u64,
    /// SLC fragments combined with buffered data and rewritten to the
    /// normal region (paper §III-B path ③).
    pub slc_combines: u64,
    /// Slices written to SLC as zone-tail alignment patches (§III-E).
    pub patch_slices: u64,

    /// L2P persistence-log flushes to flash (paper §III-E).
    pub l2p_log_flushes: u64,
    /// In-place conventional-zone slice updates.
    pub conventional_updates: u64,
    /// SLC garbage-collection runs.
    pub gc_runs: u64,
    /// Valid 4 KiB slices migrated by SLC GC.
    pub gc_migrated_slices: u64,
    /// Zone resets handled.
    pub zone_resets: u64,

    /// Data-page reads that needed read-retry (sum of retry steps).
    pub read_retries: u64,
    /// Program operations that failed and were re-issued elsewhere.
    pub program_failures: u64,
    /// Blocks permanently retired (failed erases and grown bad blocks).
    pub blocks_retired: u64,
    /// Slices whose mapping was rebuilt from non-volatile SLC by the
    /// remount replay after a power cut.
    pub recovered_slices: u64,
    /// Acknowledged-but-unflushed slices lost from volatile write buffers
    /// at a power cut.
    pub lost_slices: u64,
}

impl Counters {
    /// Creates an all-zero counter set (same as `Default`).
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Total bytes programmed into flash, all media.
    #[inline]
    pub fn flash_program_bytes(&self) -> u64 {
        self.flash_program_bytes_slc + self.flash_program_bytes_tlc + self.flash_program_bytes_qlc
    }

    /// Write amplification factor: flash bytes programmed per host byte
    /// written. Returns 0.0 for a truly idle interval (nothing written,
    /// nothing programmed) and `f64::INFINITY` when flash was programmed
    /// without any host write — a GC-, patch- or recovery-only interval,
    /// which a plain 0.0 would misreport as "no amplification".
    pub fn write_amplification(&self) -> f64 {
        if self.host_write_bytes == 0 {
            if self.flash_program_bytes() > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.flash_program_bytes() as f64 / self.host_write_bytes as f64
        }
    }

    /// Total L2P cache hits at any granularity.
    #[inline]
    pub fn l2p_hits(&self) -> u64 {
        self.l2p_hits_zone + self.l2p_hits_chunk + self.l2p_hits_page
    }

    /// L2P cache miss ratio in `[0, 1]`. Returns 0.0 with no lookups.
    pub fn l2p_miss_rate(&self) -> f64 {
        let total = self.l2p_hits() + self.l2p_misses;
        if total == 0 {
            0.0
        } else {
            self.l2p_misses as f64 / total as f64
        }
    }

    /// Every counter as a `(field_name, value)` pair, in declaration
    /// order. This is the canonical field list used by the metrics and
    /// stats exporters, so names stay stable across output formats.
    pub fn named_fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! fields {
            ($($f:ident),* $(,)?) => {
                vec![$((stringify!($f), self.$f)),*]
            };
        }
        fields!(
            host_read_bytes,
            host_write_bytes,
            host_read_ops,
            host_write_ops,
            flash_program_bytes_slc,
            flash_program_bytes_tlc,
            flash_program_bytes_qlc,
            flash_data_reads,
            flash_mapping_reads,
            erases_slc,
            erases_normal,
            l2p_hits_zone,
            l2p_hits_chunk,
            l2p_hits_page,
            l2p_misses,
            l2p_evictions,
            premature_flushes,
            full_flushes,
            buffer_conflicts,
            slc_combines,
            patch_slices,
            l2p_log_flushes,
            conventional_updates,
            gc_runs,
            gc_migrated_slices,
            zone_resets,
            read_retries,
            program_failures,
            blocks_retired,
            recovered_slices,
            lost_slices,
        )
    }

    /// Adds `delta` into `self`, field by field — the accumulation dual of
    /// [`since`](Self::since), used by the queue-pair host model to fold
    /// per-command device deltas into per-tenant totals. The exhaustive
    /// struct literal (no `..` rest) makes a missed field a compile error.
    pub fn merge(&mut self, delta: &Counters) {
        macro_rules! acc {
            ($($f:ident),* $(,)?) => {
                *self = Counters { $($f: self.$f + delta.$f),* };
            };
        }
        acc!(
            host_read_bytes,
            host_write_bytes,
            host_read_ops,
            host_write_ops,
            flash_program_bytes_slc,
            flash_program_bytes_tlc,
            flash_program_bytes_qlc,
            flash_data_reads,
            flash_mapping_reads,
            erases_slc,
            erases_normal,
            l2p_hits_zone,
            l2p_hits_chunk,
            l2p_hits_page,
            l2p_misses,
            l2p_evictions,
            premature_flushes,
            full_flushes,
            buffer_conflicts,
            slc_combines,
            patch_slices,
            l2p_log_flushes,
            conventional_updates,
            gc_runs,
            gc_migrated_slices,
            zone_resets,
            read_retries,
            program_failures,
            blocks_retired,
            recovered_slices,
            lost_slices,
        );
    }

    /// Difference `self - earlier`, for interval statistics.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds `self`.
    pub fn since(&self, earlier: &Counters) -> Counters {
        macro_rules! diff {
            ($($f:ident),* $(,)?) => {
                Counters { $($f: self.$f - earlier.$f),* }
            };
        }
        diff!(
            host_read_bytes,
            host_write_bytes,
            host_read_ops,
            host_write_ops,
            flash_program_bytes_slc,
            flash_program_bytes_tlc,
            flash_program_bytes_qlc,
            flash_data_reads,
            flash_mapping_reads,
            erases_slc,
            erases_normal,
            l2p_hits_zone,
            l2p_hits_chunk,
            l2p_hits_page,
            l2p_misses,
            l2p_evictions,
            premature_flushes,
            full_flushes,
            buffer_conflicts,
            slc_combines,
            patch_slices,
            l2p_log_flushes,
            conventional_updates,
            gc_runs,
            gc_migrated_slices,
            zone_resets,
            read_retries,
            program_failures,
            blocks_retired,
            recovered_slices,
            lost_slices,
        )
    }
}

impl core::fmt::Display for Counters {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let waf = self.write_amplification();
        let waf = if waf.is_finite() {
            format!("{waf:.3}")
        } else {
            "inf".to_string()
        };
        write!(
            f,
            "host {}r/{}w MiB | flash {} MiB programmed (waf {}) | \
             l2p {:.1}% miss | {} conflicts, {} premature, {} combines | \
             {} gc, {} resets",
            self.host_read_bytes >> 20,
            self.host_write_bytes >> 20,
            self.flash_program_bytes() >> 20,
            waf,
            self.l2p_miss_rate() * 100.0,
            self.buffer_conflicts,
            self.premature_flushes,
            self.slc_combines,
            self.gc_runs,
            self.zone_resets,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waf_counts_all_media() {
        let mut c = Counters::new();
        c.host_write_bytes = 100;
        c.flash_program_bytes_slc = 50;
        c.flash_program_bytes_tlc = 100;
        assert_eq!(c.write_amplification(), 1.5);
    }

    #[test]
    fn waf_zero_when_idle() {
        // Truly idle: nothing written, nothing programmed.
        assert_eq!(Counters::new().write_amplification(), 0.0);
        assert_eq!(Counters::new().l2p_miss_rate(), 0.0);
    }

    #[test]
    fn waf_infinite_when_flash_programmed_without_host_writes() {
        // A GC- or recovery-only interval programs flash while the host is
        // idle; that is infinite amplification, not zero.
        let mut c = Counters::new();
        c.flash_program_bytes_slc = 4096;
        assert!(c.write_amplification().is_infinite());
        let s = c.to_string();
        assert!(s.contains("waf inf"), "{s}");
    }

    #[test]
    fn miss_rate() {
        let mut c = Counters::new();
        c.l2p_hits_page = 2;
        c.l2p_hits_chunk = 1;
        c.l2p_misses = 1;
        assert_eq!(c.l2p_hits(), 3);
        assert_eq!(c.l2p_miss_rate(), 0.25);
    }

    #[test]
    fn display_summarises() {
        let mut c = Counters::new();
        c.host_write_bytes = 4 << 20;
        c.flash_program_bytes_tlc = 6 << 20;
        c.buffer_conflicts = 3;
        let s = c.to_string();
        assert!(s.contains("4w MiB"), "{s}");
        assert!(s.contains("waf 1.500"), "{s}");
        assert!(s.contains("3 conflicts"), "{s}");
    }

    #[test]
    fn display_has_no_double_spaces() {
        let s = Counters::new().to_string();
        assert!(
            !s.contains("  "),
            "Display output embeds literal whitespace runs: {s:?}"
        );
    }

    #[test]
    fn named_fields_cover_the_struct() {
        let mut c = Counters::new();
        c.host_write_bytes = 7;
        c.zone_resets = 3;
        let fields = c.named_fields();
        // One entry per field, no duplicates, values match.
        let mut names = std::collections::HashSet::new();
        for (name, _) in &fields {
            assert!(names.insert(*name), "duplicate field name {name}");
        }
        assert_eq!(
            fields.iter().find(|(n, _)| *n == "host_write_bytes"),
            Some(&("host_write_bytes", 7))
        );
        assert_eq!(
            fields.iter().find(|(n, _)| *n == "zone_resets"),
            Some(&("zone_resets", 3))
        );
        // Summing a `since` delta through named_fields equals the diff.
        let d = c.since(&Counters::new());
        let total: u64 = d.named_fields().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn merge_is_the_inverse_of_since() {
        let mut early = Counters::new();
        early.host_write_bytes = 10;
        early.gc_runs = 1;
        let mut late = early;
        late.host_write_bytes = 25;
        late.gc_runs = 3;
        late.zone_resets = 2;
        // early + (late - early) == late, field for field.
        let mut acc = early;
        acc.merge(&late.since(&early));
        assert_eq!(acc, late);
        // Merging a delta into zero reproduces the delta.
        let mut zero = Counters::new();
        zero.merge(&late);
        assert_eq!(zero, late);
    }

    #[test]
    fn since_diffs_every_field() {
        let mut early = Counters::new();
        early.host_write_bytes = 10;
        early.gc_runs = 1;
        let mut late = early;
        late.host_write_bytes = 25;
        late.gc_runs = 3;
        late.zone_resets = 2;
        let d = late.since(&early);
        assert_eq!(d.host_write_bytes, 15);
        assert_eq!(d.gc_runs, 2);
        assert_eq!(d.zone_resets, 2);
        assert_eq!(d.host_read_bytes, 0);
    }
}
