//! Logical and physical address newtypes.
//!
//! The emulator manages space at a 4 KiB *slice* granularity — the host
//! sector unit, the SLC partial-programming unit, and the mapping-table
//! granularity all coincide at 4 KiB (paper §II-A/§III-C):
//!
//! * [`Lpn`] — logical page number, a 4 KiB logical slice index.
//! * [`Ppa`] — physical page address, a 4 KiB physical slice index
//!   (decode it with [`Geometry`](crate::Geometry)).
//! * [`ZoneId`], [`ChunkId`] — coarser logical units used by hybrid mapping:
//!   the LZA / LCA of the paper's read path.
//! * [`SuperblockId`], [`ChipId`], [`ChannelId`] — physical grouping units.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Bytes in one slice: the logical sector, mapping granule and SLC
/// programming unit (4 KiB).
pub const SLICE_BYTES: u64 = 4096;

macro_rules! index_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            #[inline]
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(v: $name) -> u64 {
                v.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

index_newtype!(
    /// Logical page number: index of a 4 KiB slice in the logical address
    /// space (the LPA of the paper's read path).
    Lpn
);

index_newtype!(
    /// Physical page address: linear index of a 4 KiB slice in the flash
    /// array. Decode into (chip, block, page, slice) with
    /// [`Geometry::decode_ppa`](crate::Geometry::decode_ppa).
    Ppa
);

index_newtype!(
    /// Zone index (the LZA of the paper's read path). One zone maps onto one
    /// superblock of reserved normal flash blocks.
    ZoneId
);

index_newtype!(
    /// Logical chunk index (the LCA of the paper's read path). A chunk is a
    /// fixed-size run of logical pages — 4 MiB (1024 slices) by default.
    ChunkId
);

index_newtype!(
    /// Superblock index: flash blocks at the same per-chip offset across all
    /// chips form one superblock (paper §II-A).
    SuperblockId
);

index_newtype!(
    /// Flash chip (die) index across all channels.
    ChipId
);

index_newtype!(
    /// Flash channel index.
    ChannelId
);

impl Lpn {
    /// First byte covered by this logical page.
    #[inline]
    pub const fn byte_offset(self) -> u64 {
        self.0 * SLICE_BYTES
    }

    /// Logical page containing `byte` (which need not be aligned).
    #[inline]
    pub const fn containing(byte: u64) -> Lpn {
        Lpn(byte / SLICE_BYTES)
    }

    /// The `n`-th page after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Lpn {
        Lpn(self.0 + n)
    }
}

impl Ppa {
    /// The `n`-th physical slice after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Ppa {
        Ppa(self.0 + n)
    }
}

/// A contiguous run of logical pages `[start, start + count)`.
///
/// ```
/// use conzone_types::{Lpn, LpnRange};
///
/// let r = LpnRange::new(Lpn(4), 3);
/// assert!(r.contains(Lpn(6)));
/// assert_eq!(r.iter().count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LpnRange {
    /// First logical page in the run.
    pub start: Lpn,
    /// Number of logical pages in the run.
    pub count: u64,
}

impl LpnRange {
    /// Creates a range of `count` pages starting at `start`.
    #[inline]
    pub const fn new(start: Lpn, count: u64) -> Self {
        LpnRange { start, count }
    }

    /// Builds the smallest aligned range covering `[offset, offset + len)`
    /// in bytes. Returns `None` when `len` is zero.
    pub fn covering_bytes(offset: u64, len: u64) -> Option<Self> {
        if len == 0 {
            return None;
        }
        let first = offset / SLICE_BYTES;
        let last = (offset + len - 1) / SLICE_BYTES;
        Some(LpnRange::new(Lpn(first), last - first + 1))
    }

    /// One past the last page in the range.
    #[inline]
    pub const fn end(self) -> Lpn {
        Lpn(self.start.0 + self.count)
    }

    /// Bytes covered by the range.
    #[inline]
    pub const fn bytes(self) -> u64 {
        self.count * SLICE_BYTES
    }

    /// Whether the range is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.count == 0
    }

    /// Whether `lpn` lies inside the range.
    #[inline]
    pub const fn contains(self, lpn: Lpn) -> bool {
        lpn.0 >= self.start.0 && lpn.0 < self.start.0 + self.count
    }

    /// Iterates over each page in the range.
    pub fn iter(self) -> impl Iterator<Item = Lpn> {
        (self.start.0..self.start.0 + self.count).map(Lpn)
    }
}

impl fmt::Display for LpnRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start.0, self.start.0 + self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpn_byte_conversions() {
        assert_eq!(Lpn(3).byte_offset(), 3 * 4096);
        assert_eq!(Lpn::containing(4095), Lpn(0));
        assert_eq!(Lpn::containing(4096), Lpn(1));
    }

    #[test]
    fn range_covering_bytes() {
        // 1 byte straddling nothing: one slice.
        assert_eq!(
            LpnRange::covering_bytes(0, 1),
            Some(LpnRange::new(Lpn(0), 1))
        );
        // Exactly one slice.
        assert_eq!(
            LpnRange::covering_bytes(4096, 4096),
            Some(LpnRange::new(Lpn(1), 1))
        );
        // Unaligned span crossing a boundary.
        assert_eq!(
            LpnRange::covering_bytes(4000, 200),
            Some(LpnRange::new(Lpn(0), 2))
        );
        assert_eq!(LpnRange::covering_bytes(123, 0), None);
    }

    #[test]
    fn range_iteration_and_contains() {
        let r = LpnRange::new(Lpn(10), 4);
        let pages: Vec<_> = r.iter().collect();
        assert_eq!(pages, vec![Lpn(10), Lpn(11), Lpn(12), Lpn(13)]);
        assert!(r.contains(Lpn(10)));
        assert!(r.contains(Lpn(13)));
        assert!(!r.contains(Lpn(14)));
        assert_eq!(r.end(), Lpn(14));
        assert_eq!(r.bytes(), 4 * 4096);
    }

    #[test]
    fn newtype_conversions() {
        let z: ZoneId = 7u64.into();
        assert_eq!(u64::from(z), 7);
        assert_eq!(z.raw(), 7);
        assert_eq!(z.to_string(), "ZoneId(7)");
    }

    #[test]
    fn ppa_offset() {
        assert_eq!(Ppa(5).offset(3), Ppa(8));
    }
}
